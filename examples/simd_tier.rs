//! Prints the detected SIMD tier and per-kernel throughput on a
//! clustered instance — a quick way to see what the `mincut-ds::simd`
//! micro-kernel layer buys on this machine, and what `SMC_SIMD=scalar`
//! would cost.
//!
//! For every tier available on this CPU (scalar is always there; SSE2
//! and AVX2 join when detected at runtime) the example times the three
//! vectorized kernels on data shaped exactly like the solver hot loops
//! — weighted-degree sums over CSR weight slices, label gathers over
//! the arc stream, and the 16-bit radix histogram of packed contraction
//! triples — then runs one end-to-end solve and shows the tier the
//! session actually reported in `SolverStats::simd_tier`.
//!
//! Run with: `cargo run --release --example simd_tier`
//! (set SIMD_TIER_N to scale the instance; default ~2000 vertices)

use std::time::Instant;

use sm_mincut::ds::simd::{
    active_tier, detected_tier, force_tier, gather_u32, radix_histogram16, sum_u64, SimdTier,
    RADIX16,
};
use sm_mincut::graph::generators::known;
use sm_mincut::{CsrGraph, Session, SolveOptions};

/// Median-of-reps wall time for one closure, in seconds.
fn time_it(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let unit: usize = std::env::var("SIMD_TIER_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(4, |n: usize| (n / 500).max(1));
    let (g, lambda) = known::two_communities(120 * unit, 130 * unit, 2, 3, 1);
    println!("instance: two_communities  n={}  m={}", g.n(), g.m());
    println!("detected SIMD tier: {}", detected_tier().name());
    println!("active   SIMD tier: {} (SMC_SIMD)\n", active_tier().name());

    // Hot-loop shaped inputs: every vertex's weight slice (sum), the
    // whole arc stream as gather indices into a label table, and the
    // packed (key, weight) pairs a contraction round radix-sorts.
    let n = g.n();
    let labels: Vec<u32> = (0..n as u32).rev().collect();
    let arcs: Vec<u32> = (0..n as u32)
        .flat_map(|v| g.arc_slices(v).0.iter().copied())
        .collect();
    let pairs: Vec<(u64, u64)> = arcs
        .iter()
        .enumerate()
        .map(|(i, &a)| (((a as u64) << 32) | i as u64, 1))
        .collect();
    let mut gathered = vec![0u32; arcs.len()];
    let mut hist = vec![0u32; RADIX16];

    let tiers: Vec<SimdTier> = SimdTier::ALL
        .iter()
        .copied()
        .filter(|&t| t <= detected_tier())
        .collect();
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "tier", "sum_u64 Melem/s", "gather Melem/s", "hist16 Melem/s"
    );
    let reps = 9;
    for &tier in &tiers {
        force_tier(Some(tier));
        let mut sink = 0u64;
        let t_sum = time_it(reps, || {
            for v in 0..n as u32 {
                sink = sink.wrapping_add(sum_u64(g.arc_slices(v).1));
            }
        });
        let t_gather = time_it(reps, || gather_u32(&labels, &arcs, &mut gathered));
        let t_hist = time_it(reps, || {
            hist.iter_mut().for_each(|h| *h = 0);
            radix_histogram16(&pairs, 16, &mut hist);
        });
        let rate = |elems: usize, s: f64| elems as f64 / s.max(1e-12) / 1e6;
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>16.1}",
            tier.name(),
            rate(arcs.len(), t_sum),
            rate(arcs.len(), t_gather),
            rate(pairs.len(), t_hist),
        );
        std::hint::black_box((&sink, &gathered, &hist));
    }
    force_tier(None);

    // End to end: the session records which tier served the solve.
    let out = Session::new(&g)
        .options(SolveOptions::new().seed(42))
        .run("noi-viecut")
        .expect("solve");
    assert_eq!(out.cut.value, lambda, "planted cut");
    println!(
        "\nnoi-viecut: λ = {} in {:.2} ms (SolverStats::simd_tier = {})",
        out.cut.value,
        out.stats.total_seconds * 1e3,
        out.stats.simd_tier
    );

    // The tiers must agree bit-for-bit — same sums, gathers and counts.
    let reference: CsrGraph = g.clone();
    force_tier(Some(SimdTier::Scalar));
    let scalar = Session::new(&reference)
        .options(SolveOptions::new().seed(42))
        .run("noi-viecut")
        .expect("scalar solve");
    force_tier(None);
    assert_eq!(scalar.cut.value, out.cut.value);
    assert_eq!(scalar.cut.side, out.cut.side);
    println!("scalar tier re-solve: identical λ and witness ✓");
}
