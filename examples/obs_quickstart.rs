//! Observability quickstart: enable span tracing, run a solve, export a
//! Chrome trace file (open it in Perfetto or chrome://tracing), read a
//! metrics snapshot, and peek at the flight recorder.
//!
//! Run with: `cargo run --release --example obs_quickstart`
//!
//! The same data is reachable from the CLI without writing any code:
//! `mincut --trace-out trace.json --metrics-out metrics.prom <GRAPH>`,
//! or set `SMC_TRACE=on` to collect spans without exporting.

use sm_mincut::graph::generators::known;
use sm_mincut::{obs, Session, SolveOptions};

fn main() {
    // 1. Spans are off by default: a disabled span is one relaxed
    //    atomic load, so the hot paths carry them unconditionally.
    //    Turn collection on for this process.
    obs::set_tracing(true);

    let (g, _) = known::two_communities(60, 60, 2, 2, 1);
    let outcome = Session::new(&g)
        .options(SolveOptions::new().seed(42))
        .run("noi-viecut")
        .expect("solve");
    println!("lambda = {}", outcome.cut.value);

    // 2. Your own spans nest with the solver's on the same track.
    {
        let mut span = obs::span("example/postprocess");
        span.arg("lambda", outcome.cut.value);
        span.arg_display("algorithm", &outcome.stats.algorithm);
    } // recorded when the guard drops

    // 3. Export everything recorded so far as Chrome trace-event JSON.
    let path = std::env::temp_dir().join("obs_quickstart_trace.json");
    let events = obs::export_chrome_trace(&path).expect("write trace");
    println!("wrote {events} trace event(s) to {}", path.display());
    println!("  -> open in https://ui.perfetto.dev or chrome://tracing");

    // 4. Metrics: named counters / gauges / log2 histograms, shared
    //    process-wide. The service layer feeds cache and batch metrics
    //    into the same registry.
    let m = obs::metrics();
    m.counter("example.solves").inc();
    m.histogram("example.solve_micros")
        .record((outcome.stats.total_seconds * 1e6) as u64);
    println!("\nPrometheus exposition:\n{}", m.snapshot().to_prometheus());

    // 5. The flight recorder keeps the last 128 structured events and
    //    is always on; error paths dump it so the context survives.
    obs::flight().record("example", format!("finished, λ = {}", outcome.cut.value));
    println!(
        "flight recorder holds {} event(s) total",
        obs::flight().total()
    );
}
