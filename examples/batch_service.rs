//! Batch serving with `MinCutService`: a k-core connectivity sweep.
//!
//! The paper prepares its real-world instances as k-cores of one large
//! graph (Appendix A.2) and solves each core — a *family* of related
//! jobs. This example submits the whole sweep as one batch:
//!
//! * cores are solved concurrently by the service's worker pool;
//! * each core is queried under two solver configurations in the same
//!   `"social-sweep"` bound family: the first finished cut of a graph
//!   seeds λ̂ for the other configuration of the *same* graph (bounds
//!   transfer whenever the donated witness side fits the receiving
//!   graph and is re-costed there, so exactness is never lost; cores of
//!   different sizes simply don't exchange bounds);
//! * a second submission of the same sweep is served entirely from the
//!   fingerprint-keyed cut cache — no solver runs at all.
//!
//! Run with: `cargo run --release --example batch_service`

use std::sync::Arc;

use sm_mincut::graph::generators::{barabasi_albert, gnm};
use sm_mincut::graph::kcore::k_core_lcc;
use sm_mincut::{BatchJob, GraphBuilder, MinCutService, ServiceConfig, SolveOptions};

/// Social-network-like graph with weakly-attached dense satellites (the
/// structure behind λ ≪ δ cores; see the kcore_pipeline example).
fn social_graph(n: usize, seed: u64) -> sm_mincut::CsrGraph {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let ba = barabasi_albert(n, 4, &mut rng);
    let overlay = gnm(n, 4 * n, &mut rng);
    let satellites: &[(u32, u32)] = &[(8, 2), (10, 3), (12, 4), (16, 5)];
    let extra: u32 = satellites.iter().map(|&(s, _)| s).sum();
    let mut seen = std::collections::HashSet::new();
    let mut b = GraphBuilder::with_capacity(n + extra as usize, ba.m() + overlay.m() + 256);
    for (u, v, _) in ba.edges().chain(overlay.edges()) {
        if seen.insert((u, v)) {
            b.add_edge(u, v, 1);
        }
    }
    let mut base = n as u32;
    for &(s, attach) in satellites {
        for i in 0..s {
            for j in i + 1..s {
                b.add_edge(base + i, base + j, 1);
            }
        }
        for a in 0..attach {
            b.add_edge(base + a, a, 1);
        }
        base += s;
    }
    b.build()
}

fn main() {
    let g = social_graph(1 << 12, 2019);
    println!("input graph: n = {}, m = {}", g.n(), g.m());

    // Two solver configurations per k-core, one bound-sharing family.
    // The whole first pass is submitted before the second, so by the
    // time a `noi-bstack` job starts, the `noi-viecut` cut of the same
    // core is usually already published as its initial λ̂ bound.
    let mut cores = Vec::new();
    for k in [4, 5, 6, 7, 8] {
        let (core, _) = k_core_lcc(&g, k);
        if core.n() < 8 {
            continue;
        }
        println!("  core k={k}: n = {}, m = {}", core.n(), core.m());
        cores.push((k, Arc::new(core)));
    }
    let mut jobs = Vec::new();
    for solver in ["noi-viecut", "noi-bstack"] {
        for (k, core) in &cores {
            jobs.push(
                BatchJob::new(core.clone(), solver)
                    .options(SolveOptions::new().seed(1))
                    .family("social-sweep")
                    .label(format!("k{k} {solver}")),
            );
        }
    }

    let service = MinCutService::new(ServiceConfig::new().concurrency(4));
    let report = service.run_batch(&jobs);
    println!(
        "\n{:<12} {:>8} {:>9} {:>7}  status",
        "job", "lambda", "seconds", "cached"
    );
    for row in &report.jobs {
        match row.status.outcome() {
            Some(o) => println!(
                "{:<12} {:>8} {:>9.4} {:>7}  ok ({})",
                row.label,
                o.cut.value,
                row.seconds,
                row.status.from_cache(),
                row.solver
            ),
            None => println!(
                "{:<12} {:>8} {:>9.4} {:>7}  {:?}",
                row.label, "-", row.seconds, "-", row.status
            ),
        }
    }
    println!("\nfirst pass:  {}", report.stats.to_json());

    // The same sweep again: served from the cut cache, zero solves.
    let report = service.run_batch(&jobs);
    println!("resubmitted: {}", report.stats.to_json());
    assert_eq!(report.stats.cache_hits, jobs.len());
    println!("cache: {:?}", service.cache_stats());
}
