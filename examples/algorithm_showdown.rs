//! Runs every algorithm in the library — the paper's optimised variants,
//! its comparators and the inexact heuristics — on one instance and
//! prints a ranking table, a miniature of the paper's Figure 4.
//!
//! Run with: `cargo run --release --example algorithm_showdown`
//! (set SHOWDOWN_N to change the instance size; default 2^12 vertices)

use sm_mincut::graph::generators::{barabasi_albert, random_hyperbolic_graph, RhgParams};
use sm_mincut::graph::kcore::k_core_lcc;
use sm_mincut::{minimum_cut, Algorithm, CsrGraph, PqKind};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn instances() -> Vec<(&'static str, CsrGraph)> {
    let n: usize = std::env::var("SHOWDOWN_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 12);
    let mut rng = SmallRng::seed_from_u64(5);
    let rhg = random_hyperbolic_graph(&RhgParams::paper(n, 16.0), &mut rng);
    let ba = barabasi_albert(n, 8, &mut rng);
    // BA with attach 8 has degeneracy 8; the 8-core is the deepest
    // non-empty core (the whole hub-heavy graph).
    let (core, _) = k_core_lcc(&ba, 8);
    assert!(core.n() > 2, "showdown instance must be non-trivial");
    vec![("rhg(power-law-5)", rhg), ("social-k-core", core)]
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get());
    let algos: Vec<(Algorithm, &str)> = vec![
        (Algorithm::NoiBoundedVieCut { pq: PqKind::Heap }, "exact"),
        (Algorithm::NoiBounded { pq: PqKind::Heap }, "exact"),
        (Algorithm::NoiBounded { pq: PqKind::BStack }, "exact"),
        (Algorithm::NoiBounded { pq: PqKind::BQueue }, "exact"),
        (Algorithm::NoiHnss, "exact"),
        (Algorithm::ParCut { pq: PqKind::BQueue, threads }, "exact"),
        (Algorithm::StoerWagner, "exact"),
        (Algorithm::HaoOrlin, "exact"),
        (Algorithm::KargerStein { repetitions: 5 }, "monte-carlo"),
        (Algorithm::VieCut, "heuristic"),
        (Algorithm::Matula { epsilon: 0.5 }, "(2+ε)-approx"),
    ];

    for (name, g) in instances() {
        println!("\n=== {name}: n = {}, m = {} ===", g.n(), g.m());
        let mut rows: Vec<(String, &str, u64, f64)> = Vec::new();
        let mut exact_value = None;
        for (algo, kind) in &algos {
            let t0 = Instant::now();
            let r = minimum_cut(&g, algo.clone());
            let secs = t0.elapsed().as_secs_f64();
            assert!(r.verify(&g), "{algo} returned a bad witness");
            if *kind == "exact" {
                match exact_value {
                    None => exact_value = Some(r.value),
                    Some(v) => assert_eq!(v, r.value, "{algo} disagrees"),
                }
            }
            rows.push((algo.to_string(), kind, r.value, secs));
        }
        let best = rows
            .iter()
            .filter(|r| r.1 == "exact")
            .map(|r| r.3)
            .fold(f64::INFINITY, f64::min);
        rows.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap());
        println!(
            "{:<30} {:>12} {:>8} {:>10} {:>8}",
            "algorithm", "kind", "λ", "time(ms)", "vs best"
        );
        for (name, kind, value, secs) in rows {
            println!(
                "{name:<30} {kind:>12} {value:>8} {:>10.2} {:>7.1}x",
                secs * 1e3,
                secs / best
            );
        }
        println!("exact minimum cut λ = {}", exact_value.unwrap());
    }
}
