//! Runs every registered solver — the paper's optimised variants, its
//! comparators and the inexact heuristics — on one instance and prints a
//! ranking table, a miniature of the paper's Figure 4.
//!
//! The solver list is *enumerated from the registry*, so a newly
//! registered algorithm shows up here with no code change.
//!
//! Run with: `cargo run --release --example algorithm_showdown`
//! (set SHOWDOWN_N to change the instance size; default 2^12 vertices;
//! set SHOWDOWN_ALL=1 to include the very slow comparators)

use sm_mincut::graph::generators::{barabasi_albert, random_hyperbolic_graph, RhgParams};
use sm_mincut::graph::kcore::k_core_lcc;
use sm_mincut::{CsrGraph, Guarantee, Session, SolveOptions, SolverRegistry};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn instances() -> Vec<(&'static str, CsrGraph)> {
    let n: usize = std::env::var("SHOWDOWN_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 12);
    let mut rng = SmallRng::seed_from_u64(5);
    let rhg = random_hyperbolic_graph(&RhgParams::paper(n, 16.0), &mut rng);
    let ba = barabasi_albert(n, 8, &mut rng);
    // BA with attach 8 has degeneracy 8; the 8-core is the deepest
    // non-empty core (the whole hub-heavy graph).
    let (core, _) = k_core_lcc(&ba, 8);
    assert!(core.n() > 2, "showdown instance must be non-trivial");
    vec![("rhg(power-law-5)", rhg), ("social-k-core", core)]
}

fn kind(g: Guarantee) -> &'static str {
    match g {
        Guarantee::Exact => "exact",
        Guarantee::MonteCarlo => "monte-carlo",
        Guarantee::UpperBound => "heuristic",
        Guarantee::TwoPlusEpsilon => "(2+ε)-approx",
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get());
    // Gomory-Hu builds n-1 max-flow trees — orders of magnitude slower
    // on the default 2^12-vertex instances (which is the paper's point
    // about flow-based methods). Opt in with SHOWDOWN_ALL=1.
    let skip_slow = std::env::var("SHOWDOWN_ALL").is_err();
    let opts = SolveOptions::new().seed(9).threads(threads).repetitions(5);

    for (name, g) in instances() {
        println!("\n=== {name}: n = {}, m = {} ===", g.n(), g.m());
        let session = Session::new(&g).options(opts.clone());
        let mut rows: Vec<(String, &'static str, u64, f64)> = Vec::new();
        let mut exact_value = None;
        for entry in SolverRegistry::global().entries() {
            if skip_slow && entry.canonical == "GomoryHu" {
                continue;
            }
            let outcome = session
                .run(entry.canonical)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.canonical));
            assert!(
                outcome.cut.verify(&g),
                "{} returned a bad witness",
                entry.canonical
            );
            if entry.caps.guarantee.is_exact() {
                match exact_value {
                    None => exact_value = Some(outcome.cut.value),
                    Some(v) => assert_eq!(v, outcome.cut.value, "{} disagrees", entry.canonical),
                }
            }
            rows.push((
                outcome.stats.algorithm.clone(),
                kind(entry.caps.guarantee),
                outcome.cut.value,
                outcome.stats.total_seconds,
            ));
        }
        let best = rows
            .iter()
            .filter(|r| r.1 == "exact")
            .map(|r| r.3)
            .fold(f64::INFINITY, f64::min);
        rows.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap());
        println!(
            "{:<30} {:>12} {:>8} {:>10} {:>8}",
            "algorithm", "kind", "λ", "time(ms)", "vs best"
        );
        for (name, kind, value, secs) in rows {
            println!(
                "{name:<30} {kind:>12} {value:>8} {:>10.2} {:>7.1}x",
                secs * 1e3,
                secs / best
            );
        }
        println!("exact minimum cut λ = {}", exact_value.unwrap());
    }
}
