//! Network reliability (the paper's first motivating application, §1):
//! "assuming equal failure probability edges, the smallest edge cut in
//! the network has the highest chance to disconnect the network".
//!
//! We model a backbone network as a random hyperbolic graph (power-law
//! degrees, small diameter — like real internet topologies), find its
//! exact minimum cut in parallel, and report the critical edge set whose
//! simultaneous failure partitions the network.
//!
//! Run with: `cargo run --release --example network_reliability`

use sm_mincut::graph::generators::{random_hyperbolic_graph, RhgParams};
use sm_mincut::{minimum_cut, Algorithm, PqKind};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A 4096-router topology with average degree 16, power-law exponent 5
    // (the paper's RHG configuration, which avoids trivial cuts).
    let mut rng = SmallRng::seed_from_u64(2019);
    let network = random_hyperbolic_graph(&RhgParams::paper(1 << 12, 16.0), &mut rng);
    println!(
        "backbone: {} routers, {} links, avg degree {:.1}",
        network.n(),
        network.m(),
        network.avg_degree()
    );

    let t0 = std::time::Instant::now();
    let cut = minimum_cut(
        &network,
        Algorithm::ParCut {
            pq: PqKind::BQueue,
            threads: std::thread::available_parallelism().map_or(2, |p| p.get()),
        },
    );
    println!(
        "minimum cut λ = {} (found in {:.1} ms)",
        cut.value,
        t0.elapsed().as_secs_f64() * 1e3
    );
    assert!(cut.verify(&network));

    // The critical links: every edge crossing the optimal bipartition.
    let side = cut.side.as_ref().unwrap();
    let critical: Vec<(u32, u32, u64)> = network
        .edges()
        .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
        .collect();
    let small = side
        .iter()
        .filter(|&&s| s)
        .count()
        .min(network.n() - side.iter().filter(|&&s| s).count());
    println!(
        "{} simultaneous link failures disconnect {} routers from the rest:",
        critical.len(),
        small
    );
    for (u, v, _) in critical.iter().take(16) {
        println!("  link {u} -- {v}");
    }
    if critical.len() > 16 {
        println!("  ... and {} more", critical.len() - 16);
    }
    assert_eq!(critical.iter().map(|e| e.2).sum::<u64>(), cut.value);

    // Sanity: the trivial bound (weakest single router) is usually NOT
    // the answer for this family — the interesting case for reliability.
    let min_deg = network.min_weighted_degree().unwrap().1;
    println!("minimum degree δ = {min_deg} (trivial upper bound; λ ≤ δ always)");
}
