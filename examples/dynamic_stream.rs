//! A maintained minimum cut over a mutating graph.
//!
//! A link-monitoring scenario: a network of two dense districts joined
//! by a couple of trunk links, whose capacity λ (the minimum cut) must
//! be known after every topology change. Instead of re-solving from
//! scratch per change, a [`DynamicMinCut`] maintains `(λ, witness)`
//! across the updates:
//!
//! * changes that don't cross the current witness are absorbed in O(Δ);
//! * a deleted crossing link lowers λ exactly, **without** a solver run;
//! * only crossing insertions / witness-preserving deletions re-solve —
//!   and then seeded with the old cut as the `initial_bound`, through
//!   the same kernelization pipeline and solver registry as any static
//!   query.
//!
//! The same trace is then replayed through the `MinCutService` dynamic
//! API to show the `(fingerprint, epoch)`-keyed cache and its
//! invalidation counters — what `mincut --stream <trace>` does end to
//! end.
//!
//! Run with: `cargo run --release --example dynamic_stream`

use sm_mincut::graph::generators::known;
use sm_mincut::{DynamicMinCut, MinCutService, ServiceConfig, SolveOptions, TraceOp};

fn main() {
    // Two 12-vertex districts (intra weight 2) joined by two unit trunks:
    // bridge edges (0,12) and (1,13), λ = 2.
    let (g, lambda) = known::two_communities(12, 12, 2, 2, 1);
    println!("base: n = {}, m = {}, λ = {lambda}", g.n(), g.m());

    // The day's topology changes.
    let trace = [
        TraceOp::Insert { u: 3, v: 5, w: 2 }, // intra-district reinforcement
        TraceOp::Insert { u: 2, v: 14, w: 1 }, // third trunk goes live
        TraceOp::Query,
        TraceOp::Delete { u: 0, v: 12 }, // trunk maintenance window
        TraceOp::Delete { u: 1, v: 13 }, // second trunk down
        TraceOp::Query,
        TraceOp::Insert { u: 0, v: 12, w: 3 }, // maintenance done, upgraded
        TraceOp::Query,
    ];

    println!("\n-- DynamicMinCut, update by update --");
    let mut dyn_cut =
        DynamicMinCut::new(g.clone(), "noi-viecut", SolveOptions::new().seed(42)).unwrap();
    println!("initial λ = {}", dyn_cut.lambda());
    for op in &trace {
        let r = dyn_cut.apply(op).unwrap();
        println!(
            "{op:?}: λ = {} ({})",
            r.lambda,
            if r.resolved {
                "bound-seeded re-solve"
            } else {
                "absorbed in O(Δ)"
            }
        );
    }
    let s = dyn_cut.stats();
    println!(
        "maintainer: {} updates, {} absorbed incrementally, {} re-solves",
        s.insertions + s.deletions,
        s.incremental,
        s.resolves
    );

    println!("\n-- the same trace through the service's dynamic API --");
    let service = MinCutService::new(ServiceConfig::new());
    let h = service
        .register_dynamic(g, "noi-viecut", SolveOptions::new().seed(42))
        .unwrap();
    for op in &trace {
        let r = service.dynamic_update(h, op).unwrap();
        println!("epoch {}: λ = {}", r.epoch, r.lambda);
    }
    let (lambda, cached) = service.dynamic_lambda(h).unwrap();
    let cs = service.cache_stats();
    println!(
        "served λ = {lambda} (from cache: {cached}); cache: {} entries, \
         {} invalidated by mutations",
        cs.entries, cs.invalidations
    );
}
