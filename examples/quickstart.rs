//! Quickstart: build a small weighted graph, compute its exact minimum
//! cut with the paper's fastest sequential configuration through the
//! solver session API, and inspect the witness partition and the
//! telemetry report.
//!
//! Run with: `cargo run --release --example quickstart`

use sm_mincut::{CsrGraph, Session, SolveOptions};

fn main() {
    // Two triangles joined by a single light edge — the minimum cut is
    // obviously that bridge.
    //
    //   0 --- 1        4 --- 5
    //    \   /   (1)    \   /
    //     \ /  2 ---- 3  \ /
    //      X  /        \  X
    //      |_/          \_|
    let g = CsrGraph::from_edges(
        6,
        &[
            (0, 1, 5),
            (1, 2, 5),
            (0, 2, 5), // left triangle
            (2, 3, 1), // the bridge
            (3, 4, 5),
            (4, 5, 5),
            (3, 5, 5), // right triangle
        ],
    );

    println!(
        "graph: n = {}, m = {}, total weight = {}",
        g.n(),
        g.m(),
        g.total_edge_weight()
    );

    // A session fixes the graph and options; solvers are resolved by
    // name through the registry. "noi-viecut" is the CLI spelling of the
    // paper's recommended sequential solver, NOIλ̂-Heap-VieCut.
    let session = Session::new(&g).options(SolveOptions::new().seed(42));
    let outcome = session.run("noi-viecut").expect("valid input");
    println!("minimum cut value λ(G) = {}", outcome.cut.value);
    assert_eq!(outcome.cut.value, 1);

    // The witness: one side of an optimal bipartition.
    let side = outcome.cut.side.as_ref().expect("witness tracking is on");
    let left: Vec<usize> = (0..g.n()).filter(|&v| side[v]).collect();
    let right: Vec<usize> = (0..g.n()).filter(|&v| !side[v]).collect();
    println!("one side: {left:?}");
    println!("other side: {right:?}");

    // Always verifiable against the graph.
    assert!(outcome.cut.verify(&g));

    // Every run carries a telemetry report: the λ̂ trajectory, how much
    // the scans contracted, priority-queue operation totals, timings.
    let stats = &outcome.stats;
    println!(
        "telemetry: λ̂ trajectory {:?}, {} rounds, {} vertices contracted, {} PQ ops",
        stats.lambda_trajectory,
        stats.rounds,
        stats.contracted_vertices,
        stats.pq_ops.total()
    );

    // Every algorithm of the paper is a name away — the registry is the
    // single source of solver names (try `mincut --list` on the CLI).
    for name in [
        "noi-hnss",
        "noi-bqueue",
        "parcut",
        "stoer-wagner",
        "hao-orlin",
    ] {
        let r = session.run(name).expect("valid input");
        println!("{:<28} -> λ = {}", r.stats.algorithm, r.cut.value);
        assert_eq!(r.cut.value, 1);
    }
    println!("all exact algorithms agree ✓");
}
