//! Quickstart: build a small weighted graph, compute its exact minimum
//! cut with the paper's fastest sequential configuration, and inspect the
//! witness partition.
//!
//! Run with: `cargo run --release --example quickstart`

use sm_mincut::{minimum_cut, Algorithm, CsrGraph, PqKind};

fn main() {
    // Two triangles joined by a single light edge — the minimum cut is
    // obviously that bridge.
    //
    //   0 --- 1        4 --- 5
    //    \   /   (1)    \   /
    //     \ /  2 ---- 3  \ /
    //      X  /        \  X
    //      |_/          \_|
    let g = CsrGraph::from_edges(
        6,
        &[
            (0, 1, 5),
            (1, 2, 5),
            (0, 2, 5), // left triangle
            (2, 3, 1), // the bridge
            (3, 4, 5),
            (4, 5, 5),
            (3, 5, 5), // right triangle
        ],
    );

    println!("graph: n = {}, m = {}, total weight = {}", g.n(), g.m(), g.total_edge_weight());

    // The paper's recommended sequential solver: NOIλ̂-Heap-VieCut.
    let result = minimum_cut(&g, Algorithm::default());
    println!("minimum cut value λ(G) = {}", result.value);
    assert_eq!(result.value, 1);

    // The witness: one side of an optimal bipartition.
    let side = result.side.as_ref().expect("witness tracking is on");
    let left: Vec<usize> = (0..g.n()).filter(|&v| side[v]).collect();
    let right: Vec<usize> = (0..g.n()).filter(|&v| !side[v]).collect();
    println!("one side: {left:?}");
    println!("other side: {right:?}");

    // Always verifiable against the graph.
    assert!(result.verify(&g));

    // Every algorithm of the paper is a one-liner away:
    for algo in [
        Algorithm::NoiHnss,
        Algorithm::NoiBounded { pq: PqKind::BQueue },
        Algorithm::ParCut { pq: PqKind::BQueue, threads: 2 },
        Algorithm::StoerWagner,
        Algorithm::HaoOrlin,
    ] {
        let r = minimum_cut(&g, algo.clone());
        println!("{algo:<28} -> λ = {}", r.value);
        assert_eq!(r.value, 1);
    }
    println!("all exact algorithms agree ✓");
}
