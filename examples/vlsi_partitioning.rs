//! VLSI partitioning (the paper's second motivating application, §1):
//! "a minimum cut can be used to minimize the number of connections
//! between microprocessor blocks".
//!
//! We synthesise a netlist whose modules are dense clusters of cells with
//! a few inter-module wires, then split it into two blocks with the exact
//! minimum number of crossing wires, comparing several of the paper's
//! algorithm variants along the way.
//!
//! Run with: `cargo run --release --example vlsi_partitioning`

use sm_mincut::graph::GraphBuilder;
use sm_mincut::{minimum_cut, Algorithm, CsrGraph, PqKind};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A chip with `modules` functional blocks of `cells` cells each: cells
/// inside a block are densely wired; consecutive blocks share a handful
/// of signal wires; one pair of blocks shares only two.
fn synthesise_netlist(modules: usize, cells: usize, rng: &mut SmallRng) -> CsrGraph {
    let n = modules * cells;
    let mut b = GraphBuilder::new(n);
    let id = |m: usize, c: usize| (m * cells + c) as u32;
    for m in 0..modules {
        // Intra-module wiring: each cell wired to ~6 random peers.
        for c in 0..cells {
            for _ in 0..3 {
                let d = rng.gen_range(0..cells);
                if c != d {
                    b.add_edge(id(m, c), id(m, d), 1);
                }
            }
            // A local bus keeps every module connected.
            b.add_edge(id(m, c), id(m, (c + 1) % cells), 1);
        }
    }
    for m in 0..modules - 1 {
        // Inter-module buses: 6 wires... except one narrow interface.
        let wires = if m == modules / 2 { 2 } else { 6 };
        for w in 0..wires {
            b.add_edge(id(m, w), id(m + 1, w), 1);
        }
    }
    b.build()
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let netlist = synthesise_netlist(8, 256, &mut rng);
    println!("netlist: {} cells, {} wires", netlist.n(), netlist.m());

    // The optimal bipartition cuts the narrow 2-wire interface.
    let result = minimum_cut(&netlist, Algorithm::default());
    println!("minimum number of crossing wires: {}", result.value);
    assert_eq!(result.value, 2);
    assert!(result.verify(&netlist));

    let side = result.side.as_ref().unwrap();
    let block_a = side.iter().filter(|&&s| s).count();
    println!(
        "block A: {} cells, block B: {} cells",
        block_a,
        netlist.n() - block_a
    );

    // The paper's variants all find the same optimum; timings differ.
    for algo in [
        Algorithm::NoiHnss,
        Algorithm::NoiBounded { pq: PqKind::BStack },
        Algorithm::NoiBounded { pq: PqKind::Heap },
        Algorithm::NoiBoundedVieCut { pq: PqKind::Heap },
        Algorithm::ParCut {
            pq: PqKind::BQueue,
            threads: 4,
        },
    ] {
        let t0 = std::time::Instant::now();
        let r = minimum_cut(&netlist, algo.clone());
        println!(
            "{:<28} λ = {}  ({:.2} ms)",
            algo.to_string(),
            r.value,
            t0.elapsed().as_secs_f64() * 1e3
        );
        assert_eq!(r.value, 2);
    }
}
