//! The paper's instance-preparation pipeline (Appendix A.2), end to end:
//! take a large skewed graph, extract k-cores for increasing k, keep the
//! largest connected component, and compute λ and δ for each — the exact
//! procedure that generated the paper's Table 1, including the selection
//! rule "cores where the minimum cut is not equal to the minimum degree"
//! (non-trivial cuts are the interesting benchmark cases).
//!
//! Each core is solved through the default kernelization pipeline
//! (`SolveOptions::reductions`), and the table shows how small the
//! kernel the solver actually saw was — on these satellite-clique cores
//! the reductions usually collapse the graph outright.
//!
//! Run with: `cargo run --release --example kcore_pipeline`

use sm_mincut::graph::generators::{barabasi_albert, gnm};
use sm_mincut::graph::kcore::{core_numbers, k_core_lcc};
use sm_mincut::{GraphBuilder, NodeId, Session, SolveOptions};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A social-network-like graph with a non-trivial core hierarchy:
/// preferential attachment (power-law hubs) overlaid with a uniform
/// random layer (degree variance), plus weakly-attached dense satellite
/// cliques — the structure that gives real web/social cores their
/// λ ≪ δ minimum cuts (see DESIGN.md and the bench-harness proxies).
fn social_graph(n: usize, seed: u64) -> sm_mincut::CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ba = barabasi_albert(n, 4, &mut rng);
    let overlay = gnm(n, 4 * n, &mut rng);
    // (clique size, attachment edges): size-s cliques survive k ≤ s−1.
    let satellites: &[(u32, u32)] = &[(8, 2), (10, 3), (12, 4), (16, 5)];
    let extra: u32 = satellites.iter().map(|&(s, _)| s).sum();
    let mut seen = std::collections::HashSet::new();
    let mut b = GraphBuilder::with_capacity(n + extra as usize, ba.m() + overlay.m() + 256);
    for (u, v, _) in ba.edges().chain(overlay.edges()) {
        if seen.insert((u, v)) {
            b.add_edge(u, v, 1);
        }
    }
    let mut base = n as u32;
    for &(s, attach) in satellites {
        for i in 0..s {
            for j in i + 1..s {
                b.add_edge(base + i, base + j, 1);
            }
        }
        for a in 0..attach {
            b.add_edge(base + a, a, 1);
        }
        base += s;
    }
    b.build()
}

fn main() {
    let g = social_graph(1 << 13, 2018);
    println!(
        "input graph: n = {}, m = {}, degeneracy = {}",
        g.n(),
        g.m(),
        core_numbers(&g).iter().max().unwrap()
    );
    println!(
        "\n{:>4} {:>8} {:>9} {:>6} {:>6} {:>9}  note",
        "k", "core n", "core m", "λ", "δ", "kernel n"
    );

    for k in [5u32, 6, 7, 8, 9, 10] {
        let (core, _orig_ids) = k_core_lcc(&g, k);
        if core.n() < 4 {
            println!("{k:>4} (core empty or trivial)");
            continue;
        }
        let delta = (0..core.n() as NodeId)
            .map(|v| core.weighted_degree(v))
            .min()
            .unwrap();
        // The default options run the kernelization pipeline first; the
        // stats report says how much of the core it dissolved.
        let outcome = Session::new(&core)
            .options(SolveOptions::new().seed(2018))
            .run("noi-viecut")
            .expect("core is connected with n >= 2");
        let cut = &outcome.cut;
        assert!(cut.verify(&core));
        // Every k-core has min degree >= k by definition.
        assert!(core.min_degree().unwrap() >= k as usize);
        let note = if cut.value == delta {
            "trivial (λ = δ): paper would skip this core"
        } else {
            "NON-TRIVIAL: paper-style benchmark instance"
        };
        println!(
            "{k:>4} {:>8} {:>9} {:>6} {:>6} {:>9}  {note}",
            core.n(),
            core.m(),
            cut.value,
            delta,
            outcome.stats.kernel_n,
        );
    }
}
