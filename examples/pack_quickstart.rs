//! Zero-copy graph packs: write once, mmap forever.
//!
//! Text formats (METIS, edge lists) pay a full tokenise-validate-build
//! pass on *every* load. A `.smcpack` pays it once — `write_pack_file`
//! serialises the finished CSR sections verbatim — and every later
//! `load_pack` just maps the file and borrows the sections in place:
//! O(1) validation, no parsing, no per-element allocation, and the
//! stored fingerprint replays without hashing (so `MinCutService`
//! cut-cache keys cost nothing to recompute). This example:
//!
//! * builds a clustered graph and packs it next to a METIS rendering;
//! * loads it back zero-copy and shows the solvers, the contraction
//!   engine and the dynamic overlay running *unchanged* on the
//!   mmap-backed storage;
//! * times both load paths, which is the whole point.
//!
//! The CLI spells the same thing `mincut pack <GRAPH> [-o FILE]`, and
//! every mode (`--batch`, `--stream`, `--cactus`, plain solves) accepts
//! `.smcpack` paths transparently.
//!
//! Run with: `cargo run --release --example pack_quickstart`

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use sm_mincut::graph::generators::known::two_communities;
use sm_mincut::graph::io::{read_metis, write_metis};
use sm_mincut::{load_pack, write_pack_file, DynamicMinCut, Session, SolveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("smc-pack-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let metis_path = dir.join("communities.metis");
    let pack_path = dir.join("communities.smcpack");

    // A graph worth re-loading: two dense communities, λ = the 3-edge
    // bridge between them.
    let (g, lambda) = two_communities(600, 660, 3, 2, 1);
    write_metis(&g, BufWriter::new(File::create(&metis_path)?))?;
    write_pack_file(&g, &pack_path)?;
    println!(
        "wrote {} ({} KiB text) and {} ({} KiB pack)",
        metis_path.display(),
        std::fs::metadata(&metis_path)?.len() / 1024,
        pack_path.display(),
        std::fs::metadata(&pack_path)?.len() / 1024,
    );

    // Load path A: parse the text (tokenise, validate, build CSR).
    let t0 = Instant::now();
    let parsed = read_metis(BufReader::new(File::open(&metis_path)?))?;
    let parse_time = t0.elapsed();

    // Load path B: map the pack (O(1) header/section checks, sections
    // borrowed straight from the page cache).
    let t0 = Instant::now();
    let mapped = load_pack(&pack_path)?;
    let map_time = t0.elapsed();
    println!(
        "text parse: {parse_time:?}   pack mmap: {map_time:?}   (mmap-backed: {})",
        mapped.is_mmap_backed()
    );

    // Identical graph, identical fingerprint — the pack stores the hash,
    // so cache keys come for free on reload.
    assert_eq!(mapped, parsed);
    assert_eq!(mapped.fingerprint(), parsed.fingerprint());

    // Everything downstream runs unchanged on the borrowed storage.
    let out = Session::new(&mapped)
        .options(SolveOptions::new().seed(42))
        .run("noi-viecut")?;
    assert_eq!(out.cut.value, lambda);
    println!(
        "λ = {} on the mmap-backed graph (witness verified: {})",
        out.cut.value,
        out.cut.verify(&mapped)
    );

    // Dynamic updates too: the overlay copies a section only when an
    // update actually touches it (copy-on-write via the storage enum).
    let mut dm = DynamicMinCut::new(mapped, "noi-viecut", SolveOptions::new().seed(42))?;
    let report = dm.insert_edge(0, 700, 5)?;
    println!(
        "after inserting a 5-weight bridge edge: λ = {}",
        report.lambda
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
