//! Subtour-elimination separation for the TSP (the paper's third
//! motivating application, §1: minimum cut "is further used as a
//! subproblem in the branch-and-cut algorithm for solving the Traveling
//! Salesman Problem").
//!
//! In branch-and-cut, the LP relaxation assigns fractional values x_e to
//! edges; a subtour-elimination constraint Σ_{e ∈ δ(S)} x_e ≥ 2 is
//! violated iff the *global minimum cut* of the support graph weighted by
//! x_e is below 2. We simulate a fractional LP solution with a known
//! violated subtour, scale it to integers, and let the solver find the
//! violated set S.
//!
//! Run with: `cargo run --release --example tsp_separation`

use sm_mincut::graph::GraphBuilder;
use sm_mincut::{minimum_cut, Algorithm, CsrGraph};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed-point scale: LP values x_e ∈ [0, 1] become integers x_e * SCALE.
const SCALE: u64 = 1000;

/// Simulates a fractional TSP LP solution on `n` cities: mostly a tour
/// with x_e = 1, but cities [0, k) form a near-closed subtour connected
/// to the rest by edges totalling only x = 1.2 < 2.
fn fractional_lp_solution(n: usize, k: usize, rng: &mut SmallRng) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    let frac = |x: f64| (x * SCALE as f64).round() as u64;
    // Subtour over the first k cities (x = 1 on its cycle edges).
    for c in 0..k {
        b.add_edge(c as u32, ((c + 1) % k) as u32, frac(1.0));
    }
    // Tour over the remaining cities.
    for c in k..n {
        let next = if c + 1 < n { c + 1 } else { k };
        b.add_edge(c as u32, next as u32, frac(1.0));
    }
    // Weak fractional coupling between subtour and main tour: 0.7 + 0.5.
    b.add_edge(0, (k + 1) as u32, frac(0.7));
    b.add_edge((k / 2) as u32, (n - 1) as u32, frac(0.5));
    // Fractional noise inside the main tour (keeps it well above 2).
    for _ in 0..n {
        let u = rng.gen_range(k..n) as u32;
        let v = rng.gen_range(k..n) as u32;
        if u != v {
            b.add_edge(u, v, frac(0.3));
        }
    }
    b.build()
}

fn main() {
    let (n, k) = (3000, 40);
    let mut rng = SmallRng::seed_from_u64(1991);
    let support = fractional_lp_solution(n, k, &mut rng);
    println!(
        "LP support graph: {} cities, {} fractional edges",
        support.n(),
        support.m()
    );

    let t0 = std::time::Instant::now();
    let cut = minimum_cut(&support, Algorithm::default());
    let x_value = cut.value as f64 / SCALE as f64;
    println!(
        "global minimum cut: Σ x_e over δ(S) = {x_value:.2} ({:.1} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    if x_value < 2.0 {
        let side = cut.side.as_ref().unwrap();
        let s_size = side
            .iter()
            .filter(|&&s| s)
            .count()
            .min(n - side.iter().filter(|&&s| s).count());
        println!("VIOLATED subtour-elimination constraint found!");
        println!("  |S| = {s_size} cities; add the cutting plane Σ_(e∈δ(S)) x_e ≥ 2");
        // The planted subtour is the violated set (x(δ(S)) = 1.2).
        assert!(
            (x_value - 1.2).abs() < 1e-9,
            "the planted violation is the minimum"
        );
        assert_eq!(s_size, k);
        assert!(cut.verify(&support));
    } else {
        println!("no violated subtour constraint (all cuts ≥ 2): LP is subtour-feasible");
        unreachable!("this instance plants a violation");
    }
}
