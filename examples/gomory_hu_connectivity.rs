//! All-pairs connectivity with a Gomory–Hu cut tree — the classical
//! flow-based view of minimum cuts (§2.2 of the paper) that the
//! contraction-based solvers replaced for the *global* problem, but which
//! remains the right tool when every pairwise connectivity is needed
//! (e.g. network design: which router pairs survive k link failures?).
//!
//! Run with: `cargo run --release --example gomory_hu_connectivity`

use sm_mincut::flow::GomoryHuTree;
use sm_mincut::graph::generators::planted_partition;
use sm_mincut::{minimum_cut, Algorithm, NodeId};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A clustered network: 4 communities of 40 nodes.
    let mut rng = SmallRng::seed_from_u64(99);
    let g = planted_partition(4, 40, 0.4, 0.01, &mut rng);
    println!("network: n = {}, m = {}", g.n(), g.m());

    let t0 = std::time::Instant::now();
    let tree = GomoryHuTree::build(&g);
    println!(
        "Gomory–Hu tree built with {} max-flows in {:.1} ms",
        g.n() - 1,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // The tree answers any pairwise query in O(n) (tree path minimum).
    let same_block = tree.min_cut_between(0, 1);
    let cross_block = tree.min_cut_between(0, 41);
    println!("connectivity within community 0:  λ(0, 1)  = {same_block}");
    println!("connectivity across communities:  λ(0, 41) = {cross_block}");
    assert!(
        same_block >= cross_block,
        "intra-community pairs are at least as connected"
    );

    // Its lightest edge is the global minimum cut — cross-check against
    // the paper's solver.
    let (tree_min, _) = tree.global_min_cut();
    let exact = minimum_cut(&g, Algorithm::default());
    assert_eq!(tree_min, exact.value);
    println!("global minimum cut (tree lightest edge) = {tree_min} ✓ matches NOIλ̂-Heap-VieCut");

    // Connectivity histogram over the tree edges: communities show up as
    // a bimodal distribution (heavy internal, light boundary edges).
    let mut weights: Vec<u64> = tree.edges().map(|(_, _, w)| w).collect();
    weights.sort_unstable();
    println!(
        "tree edge connectivities: min {}, median {}, max {}",
        weights[0],
        weights[weights.len() / 2],
        weights[weights.len() - 1]
    );

    // Survivability report: how many of the first community's members
    // would survive the failure of `f` arbitrary links?
    for f in [tree_min, weights[weights.len() / 2]] {
        let safe = (1..g.n() as NodeId)
            .filter(|&v| tree.min_cut_between(0, v) > f)
            .count();
        println!(
            "pairs (0, v) surviving any {f} link failures: {safe}/{}",
            g.n() - 1
        );
    }
}
