//! `mincut` — command-line exact minimum cut solver.
//!
//! The `-a` flag resolves through [`SolverRegistry`], the single source
//! of algorithm names: run `mincut --list` to see every registered
//! solver with its aliases and guarantees. `--stats` prints the run's
//! [`SolverStats`] telemetry as one JSON object on stdout.
//!
//! `--batch <MANIFEST>` switches to batch serving mode: the manifest
//! lists one graph file per line (optionally followed by a solver name),
//! the whole batch runs through [`MinCutService`] — concurrent workers,
//! fingerprint result cache, shared λ̂ bounds — and one JSON object per
//! job is emitted on stdout (JSON-lines), with the aggregate
//! [`BatchStats`] report on stderr.
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, parse, solver error,
//! failed verification, any failed batch job), 2 usage error.
//! Diagnostics go to stderr; only results (`lambda …`, `side …`,
//! `cutedge …`, the `--stats` JSON, batch JSON-lines) go to stdout.

use std::io::BufRead;
use std::process::exit;
use std::sync::Arc;

use sm_mincut::algorithms::json_string as json_str;
use sm_mincut::algorithms::{ReductionPipeline, Reductions};
use sm_mincut::graph::io::{read_edge_list, read_metis, GraphIoError};
use sm_mincut::{
    parse_trace, BatchJob, Cactus, CactusBuilder, CsrGraph, ErrorPolicy, JobStatus, MinCutError,
    MinCutService, ServiceConfig, Session, SolveOptions, SolverRegistry, TraceOp,
};

struct Options {
    path: String,
    batch: Option<String>,
    stream: Option<String>,
    algorithm: String,
    opts: SolveOptions,
    /// Whether -t/--threads was given (batch mode re-splits the default).
    threads_set: bool,
    jobs: usize,
    fail_fast: bool,
    cactus: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    print_side: bool,
    print_edges: bool,
    print_stats: bool,
}

fn usage() -> ! {
    eprint!("{}", help_text());
    exit(2)
}

fn help_text() -> String {
    let mut names = String::new();
    for e in SolverRegistry::global().entries() {
        names.push_str(&format!(
            "    {:<18} {:<34} {}\n",
            e.aliases.first().copied().unwrap_or(e.canonical),
            e.canonical,
            e.summary
        ));
    }
    format!(
        "\
mincut - exact minimum cut solver (Henzinger-Noe-Schulz, IPDPS 2019)

USAGE: mincut [OPTIONS] <GRAPH>
       mincut [OPTIONS] --batch <MANIFEST>
       mincut [OPTIONS] --stream <TRACE> <GRAPH>
       mincut pack <GRAPH> [-o FILE]

ARGS:
  <GRAPH>  METIS file (*.graph, *.metis), binary pack (*.smcpack), or
           edge list; '-' = stdin edge list. Packs load zero-copy via
           mmap — write one with `mincut pack` (defaults to the input
           path with an .smcpack extension); every mode (--batch
           manifests, --stream, --cactus) accepts them transparently

OPTIONS:
  -a, --algorithm <NAME>  solver name: CLI spelling, paper name, or a
                          queue-pinned spelling like noi-bstack-viecut
                          (default noi-viecut)
  -q, --queue <KIND>      bstack | bqueue | heap (default heap)
  -t, --threads <N>       worker threads for parcut (default: all cores)
  -s, --seed <N>          RNG seed (default 42)
      --budget-ms <N>     fail if a solve exceeds N milliseconds
                          (in batch mode: wall-clock budget of the batch)
      --no-reduce         skip the kernelization pipeline (reductions are
                          on by default and never change exact results)
      --reductions <LIST> comma-separated kernelization passes to run,
                          in order; known: {passes}
      --stats             print the SolverStats report as JSON on stdout
                          (with per-pass kernelization lines on stderr)
      --cactus            build the cactus of ALL minimum cuts and print
                          its JSON summary (lambda, min-cut count, node /
                          cycle / bridge structure) instead of one cut;
                          with --stream, maintain it across the trace and
                          answer qc/qs queries (not available in --batch)
      --trace-out <FILE>  record spans across the run and write a Chrome
                          trace-event JSON file (open in Perfetto or
                          chrome://tracing); implies tracing on — without
                          this flag, SMC_TRACE=on records to memory only
      --metrics-out <FILE> write the metrics-registry snapshot on exit:
                          Prometheus text if FILE ends in .prom or .txt,
                          JSON otherwise
      --side              print one side of the optimal cut
      --edges             print the cut edge set
      --list              list registered solvers and exit
  -h, --help              show this help

BATCH MODE:
      --batch <MANIFEST>  run every graph listed in MANIFEST through the
                          MinCutService (one `path [solver]` per line,
                          `#`/`%` comments); emits one JSON object per
                          job on stdout and the BatchStats on stderr
                          (--stats adds per-job telemetry to each row;
                          --side/--edges are single-graph only; unless
                          -t is given, cores are split between workers)
  -j, --jobs <N>          batch worker threads (default: all cores)
      --fail-fast         skip remaining batch jobs after a failure

STREAM MODE:
      --stream <TRACE>    maintain the minimum cut of <GRAPH> across the
                          edge updates in TRACE — one op per line:
                          `i u v w` insert, `d u v` delete, `q` query,
                          and with --cactus also `qc` (count all minimum
                          cuts) and `qs u v` (a minimum cut separating u
                          from v; consecutive `qs` lines are answered as
                          one batch from a single cached cactus)
                          (0-based vertices, `#`/`%` comments) —
                          through the service's dynamic API; emits one
                          JSON object per op on stdout with the
                          maintained lambda, and the DynamicStats on
                          stderr (--side/--edges are single-graph only)

SOLVERS (cli name, paper name, description):
{names}",
        passes = ReductionPipeline::pass_names().join(", ")
    )
}

fn parse_args() -> Options {
    let mut opts = Options {
        path: String::new(),
        batch: None,
        stream: None,
        algorithm: "noi-viecut".into(),
        opts: SolveOptions::new().seed(42),
        threads_set: false,
        jobs: 0,
        fail_fast: false,
        cactus: false,
        trace_out: None,
        metrics_out: None,
        print_side: false,
        print_edges: false,
        print_stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                exit(2)
            })
        };
        match a.as_str() {
            "-h" | "--help" => {
                print!("{}", help_text());
                exit(0)
            }
            "--list" => {
                for e in SolverRegistry::global().entries() {
                    println!(
                        "{:<22} aliases: {:<28} guarantee: {:?}",
                        e.canonical,
                        e.aliases.join(", "),
                        e.caps.guarantee
                    );
                }
                exit(0)
            }
            "-a" | "--algorithm" => opts.algorithm = value("--algorithm"),
            "-q" | "--queue" => {
                let v = value("--queue");
                match v.parse() {
                    Ok(pq) => opts.opts.pq = pq,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2)
                    }
                }
            }
            "-t" | "--threads" => match value("--threads").parse() {
                Ok(t) if t >= 1 => {
                    opts.opts.threads = t;
                    opts.threads_set = true;
                }
                _ => {
                    eprintln!("error: --threads needs a positive integer");
                    exit(2)
                }
            },
            "-s" | "--seed" => match value("--seed").parse() {
                Ok(s) => opts.opts.seed = s,
                Err(_) => {
                    eprintln!("error: --seed needs an integer");
                    exit(2)
                }
            },
            "--budget-ms" => match value("--budget-ms").parse::<u64>() {
                Ok(ms) => opts.opts.time_budget = Some(std::time::Duration::from_millis(ms)),
                Err(_) => {
                    eprintln!("error: --budget-ms needs a non-negative integer");
                    exit(2)
                }
            },
            "--no-reduce" => opts.opts.reductions = Reductions::None,
            _ if a == "--reductions" || a.starts_with("--reductions=") => {
                let list = match a.strip_prefix("--reductions=") {
                    Some(v) => v.to_string(),
                    None => value("--reductions"),
                };
                let passes: Vec<String> = list
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect();
                let selection = Reductions::Only(passes);
                if let Err(e) = selection.validate() {
                    eprintln!("error: {e}");
                    exit(2)
                }
                opts.opts.reductions = selection;
            }
            "--batch" => opts.batch = Some(value("--batch")),
            "--stream" => opts.stream = Some(value("--stream")),
            "-j" | "--jobs" => match value("--jobs").parse() {
                Ok(j) => opts.jobs = j,
                Err(_) => {
                    eprintln!("error: --jobs needs a non-negative integer");
                    exit(2)
                }
            },
            "--fail-fast" => opts.fail_fast = true,
            "--cactus" => opts.cactus = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--stats" => opts.print_stats = true,
            "--side" => opts.print_side = true,
            "--edges" => opts.print_edges = true,
            _ if a.starts_with('-') && a != "-" => {
                eprintln!("error: unknown option {a}");
                usage()
            }
            _ => {
                if !opts.path.is_empty() {
                    eprintln!("error: multiple graph arguments");
                    usage()
                }
                opts.path = a;
            }
        }
    }
    if opts.batch.is_some() && !opts.path.is_empty() {
        eprintln!("error: --batch and a <GRAPH> argument are mutually exclusive");
        usage()
    }
    if opts.batch.is_some() && opts.stream.is_some() {
        eprintln!("error: --batch and --stream are mutually exclusive");
        usage()
    }
    if (opts.batch.is_some() || opts.stream.is_some()) && (opts.print_side || opts.print_edges) {
        eprintln!(
            "error: --side/--edges are only available in single-graph mode (use --stats for telemetry)"
        );
        usage()
    }
    if opts.batch.is_none() && (opts.jobs != 0 || opts.fail_fast) {
        eprintln!("error: --jobs/--fail-fast only apply to --batch mode");
        usage()
    }
    if opts.cactus && opts.batch.is_some() {
        eprintln!("error: --cactus is not available in --batch mode");
        usage()
    }
    if opts.cactus && (opts.print_side || opts.print_edges) {
        eprintln!("error: --cactus replaces the single-cut output; drop --side/--edges");
        usage()
    }
    if opts.stream.is_some() && opts.path.is_empty() {
        eprintln!("error: --stream needs a <GRAPH> argument to start from");
        usage()
    }
    if opts.batch.is_none() && opts.path.is_empty() {
        eprintln!("error: missing graph argument");
        usage()
    }
    opts
}

/// Writes the observability artifacts (`--trace-out`, `--metrics-out`)
/// and exits. Every post-argument-parsing exit funnels through here so
/// traces and metrics survive failures too — that is when they matter.
fn finish(cli: &Options, code: i32) -> ! {
    if let Some(path) = &cli.trace_out {
        match sm_mincut::obs::export_chrome_trace(path) {
            Ok(n) => eprintln!("trace: wrote {n} event(s) to {path}"),
            Err(e) => {
                eprintln!("error: cannot write trace to {path}: {e}");
                exit(1)
            }
        }
    }
    if let Some(path) = &cli.metrics_out {
        let snap = sm_mincut::obs::metrics().snapshot();
        let text = if path.ends_with(".prom") || path.ends_with(".txt") {
            snap.to_prometheus()
        } else {
            snap.to_json() + "\n"
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            exit(1)
        }
        eprintln!("metrics: wrote snapshot to {path}");
    }
    exit(code)
}

fn try_load_graph(path: &str) -> Result<CsrGraph, String> {
    // `.smcpack` files are accepted everywhere a graph file is: the
    // zero-copy mmap loader replaces the text parse entirely.
    if path != "-" && sm_mincut::is_pack_path(std::path::Path::new(path)) {
        return sm_mincut::load_pack(std::path::Path::new(path))
            .map_err(|e| format!("failed to load pack {path}: {e}"));
    }
    let parsed: Result<CsrGraph, GraphIoError> = if path == "-" {
        let stdin = std::io::stdin();
        read_edge_list(stdin.lock(), None)
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let reader = std::io::BufReader::new(file);
        if path.ends_with(".graph") || path.ends_with(".metis") {
            read_metis(reader)
        } else {
            read_edge_list(reader, None)
        }
    };
    parsed.map_err(|e| format!("failed to parse {path}: {e}"))
}

fn load_graph(path: &str) -> CsrGraph {
    try_load_graph(path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    })
}

/// `mincut pack <GRAPH> [-o FILE]`: convert any accepted graph input
/// into a zero-copy `.smcpack`. Exit codes match the main tool: 0 ok,
/// 1 runtime failure, 2 usage error. Never returns.
fn run_pack_mode(args: &[String]) -> ! {
    let mut input: Option<&str> = None;
    let mut output: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: mincut pack <GRAPH> [-o FILE]\n\
                     writes GRAPH (METIS, edge list, or pack) as a binary .smcpack\n\
                     (default output: the input path with an .smcpack extension)"
                );
                exit(0)
            }
            "-o" | "--output" => match it.next() {
                Some(v) => output = Some(v.clone()),
                None => {
                    eprintln!("error: -o needs a value");
                    exit(2)
                }
            },
            flag if flag.starts_with('-') && flag != "-" => {
                eprintln!("error: unknown pack option {flag}");
                exit(2)
            }
            positional => {
                if input.is_some() {
                    eprintln!("error: pack takes exactly one input graph");
                    exit(2)
                }
                input = Some(positional);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("error: pack needs an input graph\nusage: mincut pack <GRAPH> [-o FILE]");
        exit(2)
    };
    let output = output.unwrap_or_else(|| {
        std::path::Path::new(input)
            .with_extension(sm_mincut::PACK_EXTENSION)
            .to_string_lossy()
            .into_owned()
    });
    if output == input {
        // Repacking in place would truncate the file the loaded graph's
        // mmap sections still borrow.
        eprintln!("error: output {output} is the input file; pick another path with -o");
        exit(2)
    }
    let g = match try_load_graph(input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1)
        }
    };
    if let Err(e) = sm_mincut::write_pack_file(&g, std::path::Path::new(&output)) {
        eprintln!("error: cannot write pack {output}: {e}");
        exit(1)
    }
    let bytes = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    eprintln!("pack: {input} -> {output}");
    println!(
        "packed n={} m={} fingerprint={:016x} bytes={bytes}",
        g.n(),
        g.m(),
        g.fingerprint()
    );
    exit(0)
}

/// One manifest entry: a graph that loaded into a batch job, a load
/// failure reported in place, or an entry skipped by `--fail-fast`.
enum Entry {
    Job { file: String, job_index: usize },
    Unreadable { file: String, error: String },
    NotLoaded { file: String },
}

/// Batch serving mode: parse the manifest, run everything through
/// [`MinCutService`], emit JSON-lines. Never returns.
fn run_batch_mode(cli: &Options, manifest_path: &str) -> ! {
    let manifest = std::fs::File::open(manifest_path).unwrap_or_else(|e| {
        eprintln!("error: cannot open manifest {manifest_path}: {e}");
        exit(1)
    });
    let mut job_opts = cli.opts.clone();
    // Batch output only reports λ — --side/--edges are rejected up
    // front — so skip the per-round witness tracking every solver would
    // otherwise pay for (bounds still share sideless between same-graph
    // jobs).
    job_opts.witness = false;
    let mut entries: Vec<Entry> = Vec::new();
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut poisoned = false;
    for (no, line) in std::io::BufReader::new(manifest).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: reading manifest {manifest_path}: {e}");
            exit(1)
        });
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut tok = t.split_whitespace();
        let file = tok.next().expect("non-empty line").to_string();
        let solver = tok.next().unwrap_or(cli.algorithm.as_str()).to_string();
        if let Some(extra) = tok.next() {
            eprintln!(
                "error: manifest line {}: unexpected token {extra:?}",
                no + 1
            );
            exit(2)
        }
        // Under --fail-fast an earlier unreadable entry poisons the
        // rest of the manifest, mirroring the service's job policy.
        if poisoned {
            entries.push(Entry::NotLoaded { file });
            continue;
        }
        match try_load_graph(&file) {
            Ok(g) => {
                let job = BatchJob::new(Arc::new(g), solver)
                    .options(job_opts.clone())
                    .label(file.clone());
                entries.push(Entry::Job {
                    file,
                    job_index: jobs.len(),
                });
                jobs.push(job);
            }
            Err(error) => {
                poisoned = cli.fail_fast;
                entries.push(Entry::Unreadable { file, error });
            }
        }
    }

    // Unless -t was given, split the cores between the *effective*
    // batch workers (the service caps them at the job count) so
    // parallel solver phases inside concurrent jobs don't oversubscribe
    // the machine workers × cores threads deep — and a short manifest
    // still uses the whole machine per job.
    if !cli.threads_set {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = (if cli.jobs == 0 { cores } else { cli.jobs }).min(jobs.len().max(1));
        let threads = (cores / workers).max(1);
        for job in &mut jobs {
            job.opts.threads = threads;
        }
    }

    let mut config = ServiceConfig::new()
        .concurrency(cli.jobs)
        .error_policy(if cli.fail_fast {
            ErrorPolicy::FailFast
        } else {
            ErrorPolicy::Continue
        });
    // In batch mode --budget-ms bounds the whole batch, not one job.
    if let Some(budget) = cli.opts.time_budget {
        config = config.batch_budget(budget);
    }
    let service = MinCutService::new(config);
    let report = service.run_batch(&jobs);

    let mut any_failed = false;
    for (row, entry) in entries.iter().enumerate() {
        match entry {
            Entry::Unreadable { file, error } => {
                any_failed = true;
                println!(
                    "{{\"index\":{row},\"file\":{},\"status\":\"error\",\"error\":{}}}",
                    json_str(file),
                    json_str(error)
                );
            }
            Entry::NotLoaded { file } => {
                any_failed = true;
                println!(
                    "{{\"index\":{row},\"file\":{},\"status\":\"skipped\",\
                     \"reason\":\"fail-fast: an earlier manifest entry was unreadable\"}}",
                    json_str(file)
                );
            }
            Entry::Job { file, job_index } => {
                let job = &report.jobs[*job_index];
                match &job.status {
                    JobStatus::Solved(o) | JobStatus::Cached(o) => {
                        let stats = if cli.print_stats {
                            format!(",\"stats\":{}", o.stats.to_json())
                        } else {
                            String::new()
                        };
                        println!(
                            "{{\"index\":{row},\"file\":{},\"solver\":{},\"status\":\"ok\",\
                             \"lambda\":{},\"cached\":{},\"seconds\":{:.6}{stats}}}",
                            json_str(file),
                            json_str(&job.solver),
                            o.cut.value,
                            job.status.from_cache(),
                            job.seconds
                        )
                    }
                    JobStatus::Failed(e) => {
                        any_failed = true;
                        println!(
                            "{{\"index\":{row},\"file\":{},\"solver\":{},\"status\":\"error\",\
                             \"error\":{}}}",
                            json_str(file),
                            json_str(&job.solver),
                            json_str(&e.to_string())
                        );
                    }
                    JobStatus::Skipped { reason } => {
                        any_failed = true;
                        println!(
                            "{{\"index\":{row},\"file\":{},\"status\":\"skipped\",\"reason\":{}}}",
                            json_str(file),
                            json_str(reason)
                        );
                    }
                }
            }
        }
    }
    eprintln!("batch: {}", report.stats.to_json());
    finish(cli, if any_failed { 1 } else { 0 })
}

/// Dynamic stream mode: replay an edge-update trace against the graph
/// through the service's dynamic API, one JSON line of maintained λ per
/// operation. Never returns.
fn run_stream_mode(cli: &Options, trace_path: &str) -> ! {
    let g = load_graph(&cli.path);
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    let trace = std::fs::File::open(trace_path).unwrap_or_else(|e| {
        eprintln!("error: cannot open trace {trace_path}: {e}");
        exit(1)
    });
    let ops = match parse_trace(std::io::BufReader::new(trace), g.n()) {
        Ok(ops) => ops,
        Err(e) => {
            sm_mincut::obs::flight().record("cli", format!("trace {trace_path} rejected: {e}"));
            sm_mincut::obs::flight().dump_to_stderr("trace parse rejection");
            eprintln!("error: failed to parse {trace_path}: {e}");
            finish(cli, 1)
        }
    };

    let service = MinCutService::new(ServiceConfig::new());
    let registered = if cli.cactus {
        service.register_dynamic_with_cactus(g, &cli.algorithm, cli.opts.clone())
    } else {
        service.register_dynamic(g, &cli.algorithm, cli.opts.clone())
    };
    let handle = match registered {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: initial solve failed: {e}");
            exit(1)
        }
    };

    let fail = |index: usize, e: MinCutError| -> ! {
        println!(
            "{{\"index\":{index},\"status\":\"error\",\"error\":{}}}",
            json_str(&e.to_string())
        );
        eprintln!("error: update {index} failed: {e}");
        sm_mincut::obs::flight().dump_to_stderr("dynamic update failure");
        finish(cli, 1)
    };
    let mut index = 0;
    while index < ops.len() {
        // A run of consecutive `qs` ops is a fan-out over one epoch:
        // answer the whole run from a single cached cactus fetch
        // (min_cuts_separating_many) instead of one fetch per op.
        if matches!(ops[index], TraceOp::QuerySeparating { .. }) {
            let start = index;
            let mut pairs = Vec::new();
            while let Some(&TraceOp::QuerySeparating { u, v }) = ops.get(index) {
                pairs.push((u, v));
                index += 1;
            }
            let mut reports = Vec::with_capacity(pairs.len());
            for (k, op) in ops[start..index].iter().enumerate() {
                match service.dynamic_update(handle, op) {
                    Ok(r) => reports.push(r),
                    Err(e) => fail(start + k, e),
                }
            }
            let cuts = service
                .min_cuts_separating_many(handle, &pairs)
                .unwrap_or_else(|e| fail(start, e));
            for (k, (&(u, v), report)) in pairs.iter().zip(&reports).enumerate() {
                let cut = match &cuts[k] {
                    Some(side) => Cactus::side_to_json(side),
                    None => "null".into(),
                };
                println!(
                    "{{\"index\":{},\"op\":\"qs\",\"u\":{u},\"v\":{v},\"cut\":{cut},\
                     \"epoch\":{},\"lambda\":{},\"resolved\":{}}}",
                    start + k,
                    report.epoch,
                    report.lambda,
                    report.resolved
                );
            }
            continue;
        }

        let op = &ops[index];
        let report = match service.dynamic_update(handle, op) {
            Ok(r) => r,
            Err(e) => fail(index, e),
        };
        let op_fields = match *op {
            TraceOp::Insert { u, v, w } => format!("\"op\":\"i\",\"u\":{u},\"v\":{v},\"w\":{w}"),
            TraceOp::Delete { u, v } => format!("\"op\":\"d\",\"u\":{u},\"v\":{v}"),
            TraceOp::Query => "\"op\":\"q\"".into(),
            // The count query carries its answer in the JSON row;
            // without --cactus, dynamic_update already failed above.
            TraceOp::QueryCount => {
                let (cactus, _) = service
                    .dynamic_cactus(handle)
                    .unwrap_or_else(|e| fail(index, e));
                format!("\"op\":\"qc\",\"count\":{}", cactus.count_min_cuts())
            }
            TraceOp::QuerySeparating { .. } => unreachable!("handled by the batched run above"),
        };
        println!(
            "{{\"index\":{index},{op_fields},\"epoch\":{},\"lambda\":{},\"resolved\":{}}}",
            report.epoch, report.lambda, report.resolved
        );
        index += 1;
    }

    let stats = service
        .dynamic_stats(handle)
        .expect("handle registered above");
    eprintln!("stream: {}", stats.to_json());
    finish(cli, 0)
}

/// Single-graph cactus mode: build the cactus of all minimum cuts
/// (solving λ through the chosen solver first) and print its JSON
/// summary on stdout. Never returns.
fn run_cactus_mode(cli: &Options, g: &CsrGraph) -> ! {
    let builder = CactusBuilder::new()
        .solver(&cli.algorithm)
        .options(cli.opts.clone());
    let cactus = match builder.build(g) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cactus construction failed: {e}");
            sm_mincut::obs::flight().dump_to_stderr("cactus construction failure");
            finish(cli, 1)
        }
    };
    let s = cactus.stats();
    eprintln!(
        "cactus: {} min cuts, {} nodes, {} cycles, {} bridges \
         (solve {:.3} s, enumerate {:.3} s, build {:.3} s)",
        cactus.count_min_cuts(),
        cactus.num_nodes(),
        cactus.num_cycles(),
        cactus.num_bridges(),
        s.solve_seconds,
        s.enumerate_seconds,
        s.build_seconds
    );
    println!("{}", cactus.to_json());
    finish(cli, 0)
}

fn main() {
    // The `pack` subcommand has its own tiny argument grammar; dispatch
    // before the flag parser sees the positional.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("pack") {
        run_pack_mode(&raw[1..]);
    }

    let cli = parse_args();

    // --trace-out forces span collection on; otherwise the SMC_TRACE
    // knob decides (events stay in memory unless a later mode exports).
    if cli.trace_out.is_some() {
        sm_mincut::obs::set_tracing(true);
    } else {
        sm_mincut::obs::init_from_env();
    }

    // Resolve the solver before the (possibly large) graph load so name
    // typos fail fast, as a usage error.
    if let Err(e) = SolverRegistry::global().resolve(&cli.algorithm) {
        eprintln!("error: {e}");
        eprintln!("hint: run `mincut --list` for all registered solvers");
        exit(2)
    }

    if let Some(manifest) = &cli.batch {
        run_batch_mode(&cli, manifest);
    }
    if let Some(trace) = &cli.stream {
        run_stream_mode(&cli, trace);
    }

    let g = load_graph(&cli.path);
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());

    if cli.cactus {
        run_cactus_mode(&cli, &g);
    }

    let session = Session::new(&g).options(cli.opts.clone());
    let outcome = match session.run(&cli.algorithm) {
        Ok(o) => o,
        Err(e @ MinCutError::TooFewVertices { .. }) => {
            eprintln!("error: {e}");
            finish(&cli, 1)
        }
        Err(e) => {
            eprintln!("error: solver failed: {e}");
            sm_mincut::obs::flight().dump_to_stderr("solver failure");
            finish(&cli, 1)
        }
    };

    eprintln!(
        "algorithm: {} ({:.3} s)",
        outcome.stats.algorithm, outcome.stats.total_seconds
    );
    println!("lambda {}", outcome.cut.value);
    if !outcome.cut.verify(&g) {
        eprintln!("internal error: witness failed verification");
        finish(&cli, 1)
    }
    if cli.print_stats {
        // Per-pass kernelization lines (diagnostics → stderr; the JSON on
        // stdout carries the same numbers machine-readably).
        for p in &outcome.stats.reductions {
            eprintln!(
                "reduce[{}]: -{} vertices, -{} edges in {} round(s) ({:.6} s)",
                p.name, p.vertices_removed, p.edges_removed, p.rounds, p.seconds
            );
        }
        if !outcome.stats.reductions.is_empty() {
            eprintln!(
                "kernel: n = {}, m = {} (from n = {}, m = {})",
                outcome.stats.kernel_n,
                outcome.stats.kernel_m,
                g.n(),
                g.m()
            );
        }
        println!("{}", outcome.stats.to_json());
    }
    let side = outcome.cut.side.expect("verified witness present");
    if cli.print_side {
        let members: Vec<String> = (0..g.n())
            .filter(|&v| side[v])
            .map(|v| v.to_string())
            .collect();
        println!("side {}", members.join(" "));
    }
    if cli.print_edges {
        for (u, v, w) in g.edges() {
            if side[u as usize] != side[v as usize] {
                println!("cutedge {u} {v} {w}");
            }
        }
    }
    finish(&cli, 0)
}
