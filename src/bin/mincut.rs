//! `mincut` — command-line exact minimum cut solver.
//!
//! ```text
//! mincut [OPTIONS] <GRAPH>
//!
//! ARGS:
//!   <GRAPH>    METIS file (*.graph, *.metis) or edge list (anything else;
//!              lines "u v [w]", 0-based, # comments). "-" reads stdin as
//!              an edge list.
//!
//! OPTIONS:
//!   -a, --algorithm <NAME>   noi-viecut (default) | noi | noi-hnss |
//!                            parcut | stoer-wagner | hao-orlin |
//!                            karger-stein | viecut | matula
//!   -q, --queue <KIND>       bstack | bqueue | heap (default heap)
//!   -t, --threads <N>        worker threads for parcut (default: all)
//!   -s, --seed <N>           RNG seed (default 42)
//!       --side               print one side of the optimal cut
//!       --edges              print the cut edge set
//!   -h, --help
//! ```

use std::process::exit;

use sm_mincut::graph::io::{read_edge_list, read_metis};
use sm_mincut::{minimum_cut_seeded, Algorithm, CsrGraph, PqKind};

struct Options {
    path: String,
    algorithm: String,
    queue: PqKind,
    threads: usize,
    seed: u64,
    print_side: bool,
    print_edges: bool,
}

fn usage() -> ! {
    eprint!("{}", HELP);
    exit(2)
}

const HELP: &str = "\
mincut - exact minimum cut solver (Henzinger-Noe-Schulz, IPDPS 2019)

USAGE: mincut [OPTIONS] <GRAPH>

ARGS:
  <GRAPH>  METIS file (*.graph, *.metis) or edge list; '-' = stdin edge list

OPTIONS:
  -a, --algorithm <NAME>  noi-viecut (default) | noi | noi-hnss | parcut |
                          stoer-wagner | hao-orlin | karger-stein | viecut |
                          matula
  -q, --queue <KIND>      bstack | bqueue | heap (default heap)
  -t, --threads <N>       worker threads for parcut (default: all cores)
  -s, --seed <N>          RNG seed (default 42)
      --side              print one side of the optimal cut
      --edges             print the cut edge set
  -h, --help              show this help
";

fn parse_args() -> Options {
    let mut opts = Options {
        path: String::new(),
        algorithm: "noi-viecut".into(),
        queue: PqKind::Heap,
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        seed: 42,
        print_side: false,
        print_edges: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                exit(2)
            })
        };
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                exit(0)
            }
            "-a" | "--algorithm" => opts.algorithm = value("--algorithm"),
            "-q" | "--queue" => {
                let v = value("--queue");
                opts.queue = v.parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(2)
                });
            }
            "-t" | "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads needs a positive integer");
                    exit(2)
                });
            }
            "-s" | "--seed" => {
                opts.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed needs an integer");
                    exit(2)
                });
            }
            "--side" => opts.print_side = true,
            "--edges" => opts.print_edges = true,
            _ if a.starts_with('-') && a != "-" => {
                eprintln!("error: unknown option {a}");
                usage()
            }
            _ => {
                if !opts.path.is_empty() {
                    eprintln!("error: multiple graph arguments");
                    usage()
                }
                opts.path = a;
            }
        }
    }
    if opts.path.is_empty() {
        eprintln!("error: missing graph argument");
        usage()
    }
    opts
}

fn load_graph(path: &str) -> CsrGraph {
    let result = if path == "-" {
        let stdin = std::io::stdin();
        read_edge_list(stdin.lock(), None)
    } else {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            exit(1)
        });
        let reader = std::io::BufReader::new(file);
        if path.ends_with(".graph") || path.ends_with(".metis") {
            read_metis(reader)
        } else {
            read_edge_list(reader, None)
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: failed to parse {path}: {e}");
        exit(1)
    })
}

fn resolve_algorithm(opts: &Options) -> Algorithm {
    match opts.algorithm.as_str() {
        "noi-viecut" => Algorithm::NoiBoundedVieCut { pq: opts.queue },
        "noi" => Algorithm::NoiBounded { pq: opts.queue },
        "noi-hnss" => Algorithm::NoiHnss,
        "parcut" => Algorithm::ParCut {
            pq: opts.queue,
            threads: opts.threads,
        },
        "stoer-wagner" => Algorithm::StoerWagner,
        "hao-orlin" => Algorithm::HaoOrlin,
        "karger-stein" => Algorithm::KargerStein { repetitions: 16 },
        "viecut" => Algorithm::VieCut,
        "matula" => Algorithm::Matula { epsilon: 0.5 },
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            usage()
        }
    }
}

fn main() {
    let opts = parse_args();
    let algo = resolve_algorithm(&opts);
    let g = load_graph(&opts.path);
    if g.n() < 2 {
        eprintln!("error: the graph has fewer than two vertices");
        exit(1);
    }
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    let t0 = std::time::Instant::now();
    let result = minimum_cut_seeded(&g, algo.clone(), opts.seed);
    let elapsed = t0.elapsed().as_secs_f64();
    eprintln!("algorithm: {algo} ({elapsed:.3} s)");
    println!("lambda {}", result.value);
    if !result.verify(&g) {
        eprintln!("internal error: witness failed verification");
        exit(1);
    }
    let side = result.side.expect("verified witness present");
    if opts.print_side {
        let members: Vec<String> = (0..g.n())
            .filter(|&v| side[v])
            .map(|v| v.to_string())
            .collect();
        println!("side {}", members.join(" "));
    }
    if opts.print_edges {
        for (u, v, w) in g.edges() {
            if side[u as usize] != side[v as usize] {
                println!("cutedge {u} {v} {w}");
            }
        }
    }
}
