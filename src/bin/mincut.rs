//! `mincut` — command-line exact minimum cut solver.
//!
//! The `-a` flag resolves through [`SolverRegistry`], the single source
//! of algorithm names: run `mincut --list` to see every registered
//! solver with its aliases and guarantees. `--stats` prints the run's
//! [`SolverStats`] telemetry as one JSON object on stdout.
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, parse, solver error,
//! failed verification), 2 usage error. Diagnostics go to stderr; only
//! results (`lambda …`, `side …`, `cutedge …`, the `--stats` JSON) go to
//! stdout.

use std::process::exit;

use sm_mincut::graph::io::{read_edge_list, read_metis};
use sm_mincut::{CsrGraph, MinCutError, Session, SolveOptions, SolverRegistry};

struct Options {
    path: String,
    algorithm: String,
    opts: SolveOptions,
    print_side: bool,
    print_edges: bool,
    print_stats: bool,
}

fn usage() -> ! {
    eprint!("{}", help_text());
    exit(2)
}

fn help_text() -> String {
    let mut names = String::new();
    for e in SolverRegistry::global().entries() {
        names.push_str(&format!(
            "    {:<18} {:<34} {}\n",
            e.aliases.first().copied().unwrap_or(e.canonical),
            e.canonical,
            e.summary
        ));
    }
    format!(
        "\
mincut - exact minimum cut solver (Henzinger-Noe-Schulz, IPDPS 2019)

USAGE: mincut [OPTIONS] <GRAPH>

ARGS:
  <GRAPH>  METIS file (*.graph, *.metis) or edge list; '-' = stdin edge list

OPTIONS:
  -a, --algorithm <NAME>  solver name: CLI spelling, paper name, or a
                          queue-pinned spelling like noi-bstack-viecut
                          (default noi-viecut)
  -q, --queue <KIND>      bstack | bqueue | heap (default heap)
  -t, --threads <N>       worker threads for parcut (default: all cores)
  -s, --seed <N>          RNG seed (default 42)
      --budget-ms <N>     fail if the solve exceeds N milliseconds
      --stats             print the SolverStats report as JSON on stdout
      --side              print one side of the optimal cut
      --edges             print the cut edge set
      --list              list registered solvers and exit
  -h, --help              show this help

SOLVERS (cli name, paper name, description):
{names}"
    )
}

fn parse_args() -> Options {
    let mut opts = Options {
        path: String::new(),
        algorithm: "noi-viecut".into(),
        opts: SolveOptions::new().seed(42),
        print_side: false,
        print_edges: false,
        print_stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                exit(2)
            })
        };
        match a.as_str() {
            "-h" | "--help" => {
                print!("{}", help_text());
                exit(0)
            }
            "--list" => {
                for e in SolverRegistry::global().entries() {
                    println!(
                        "{:<22} aliases: {:<28} guarantee: {:?}",
                        e.canonical,
                        e.aliases.join(", "),
                        e.caps.guarantee
                    );
                }
                exit(0)
            }
            "-a" | "--algorithm" => opts.algorithm = value("--algorithm"),
            "-q" | "--queue" => {
                let v = value("--queue");
                match v.parse() {
                    Ok(pq) => opts.opts.pq = pq,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2)
                    }
                }
            }
            "-t" | "--threads" => match value("--threads").parse() {
                Ok(t) if t >= 1 => opts.opts.threads = t,
                _ => {
                    eprintln!("error: --threads needs a positive integer");
                    exit(2)
                }
            },
            "-s" | "--seed" => match value("--seed").parse() {
                Ok(s) => opts.opts.seed = s,
                Err(_) => {
                    eprintln!("error: --seed needs an integer");
                    exit(2)
                }
            },
            "--budget-ms" => match value("--budget-ms").parse::<u64>() {
                Ok(ms) => opts.opts.time_budget = Some(std::time::Duration::from_millis(ms)),
                Err(_) => {
                    eprintln!("error: --budget-ms needs a non-negative integer");
                    exit(2)
                }
            },
            "--stats" => opts.print_stats = true,
            "--side" => opts.print_side = true,
            "--edges" => opts.print_edges = true,
            _ if a.starts_with('-') && a != "-" => {
                eprintln!("error: unknown option {a}");
                usage()
            }
            _ => {
                if !opts.path.is_empty() {
                    eprintln!("error: multiple graph arguments");
                    usage()
                }
                opts.path = a;
            }
        }
    }
    if opts.path.is_empty() {
        eprintln!("error: missing graph argument");
        usage()
    }
    opts
}

fn load_graph(path: &str) -> CsrGraph {
    let result = if path == "-" {
        let stdin = std::io::stdin();
        read_edge_list(stdin.lock(), None)
    } else {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            exit(1)
        });
        let reader = std::io::BufReader::new(file);
        if path.ends_with(".graph") || path.ends_with(".metis") {
            read_metis(reader)
        } else {
            read_edge_list(reader, None)
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: failed to parse {path}: {e}");
        exit(1)
    })
}

fn main() {
    let cli = parse_args();

    // Resolve the solver before the (possibly large) graph load so name
    // typos fail fast, as a usage error.
    if let Err(e) = SolverRegistry::global().resolve(&cli.algorithm) {
        eprintln!("error: {e}");
        eprintln!("hint: run `mincut --list` for all registered solvers");
        exit(2)
    }

    let g = load_graph(&cli.path);
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());

    let session = Session::new(&g).options(cli.opts.clone());
    let outcome = match session.run(&cli.algorithm) {
        Ok(o) => o,
        Err(e @ MinCutError::TooFewVertices { .. }) => {
            eprintln!("error: {e}");
            exit(1)
        }
        Err(e) => {
            eprintln!("error: solver failed: {e}");
            exit(1)
        }
    };

    eprintln!(
        "algorithm: {} ({:.3} s)",
        outcome.stats.algorithm, outcome.stats.total_seconds
    );
    println!("lambda {}", outcome.cut.value);
    if !outcome.cut.verify(&g) {
        eprintln!("internal error: witness failed verification");
        exit(1);
    }
    if cli.print_stats {
        println!("{}", outcome.stats.to_json());
    }
    let side = outcome.cut.side.expect("verified witness present");
    if cli.print_side {
        let members: Vec<String> = (0..g.n())
            .filter(|&v| side[v])
            .map(|v| v.to_string())
            .collect();
        println!("side {}", members.join(" "));
    }
    if cli.print_edges {
        for (u, v, w) in g.edges() {
            if side[u as usize] != side[v as usize] {
                println!("cutedge {u} {v} {w}");
            }
        }
    }
}
