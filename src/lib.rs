//! # sm-mincut — shared-memory exact minimum cuts
//!
//! Facade crate: re-exports the whole workspace under one roof. This is
//! the crate downstream users depend on; the examples in `examples/` and
//! the integration tests in `tests/` are written against it.
//!
//! * [`graph`] — CSR graphs, builders, generators, k-cores, components, IO
//!   (`mincut-graph`);
//! * [`algorithms`] — every minimum-cut algorithm of the paper behind the
//!   [`Solver`] registry and [`Session`] API (`mincut-core`);
//! * [`flow`] — push-relabel max-flow and Hao–Orlin (`mincut-flow`);
//! * [`ds`] — the priority queues and concurrent structures
//!   (`mincut-ds`), exposed for users building their own drivers.
//!
//! ## Quick start
//!
//! Solvers are resolved by name through the [`SolverRegistry`] — the
//! paper's §4.1 names (`NOIλ̂-VieCut`, `ParCutλ̂`) or their CLI spellings
//! (`noi-viecut`, `parcut`) — and every run returns the cut together
//! with a [`SolverStats`] telemetry report:
//!
//! ```
//! use sm_mincut::{CsrGraph, Session, SolveOptions};
//!
//! let g = CsrGraph::from_edges(5, &[
//!     (0, 1, 3), (1, 2, 3), (0, 2, 3), // a triangle...
//!     (2, 3, 1),                        // ...weakly attached to...
//!     (3, 4, 3),                        // ...a heavy pair.
//! ]);
//! let outcome = Session::new(&g)
//!     .options(SolveOptions::new().seed(42))
//!     .run("noi-viecut")
//!     .unwrap();
//! assert_eq!(outcome.cut.value, 1);
//! assert!(outcome.cut.verify(&g));
//! assert_eq!(*outcome.stats.lambda_trajectory.last().unwrap(), 1);
//! ```
//!
//! ## Batch serving
//!
//! For many queries at once — sweeps, repeated instances, families of
//! related graphs — use [`MinCutService`]: batches run concurrently,
//! results memoise in a [`CsrGraph::fingerprint`]-keyed cut cache, and
//! jobs sharing a graph or family seed each other's λ̂ bound (the
//! `mincut --batch <manifest>` CLI mode and the `batch_service` example
//! drive it end to end):
//!
//! ```
//! use std::sync::Arc;
//! use sm_mincut::{BatchJob, CsrGraph, MinCutService, ServiceConfig};
//!
//! let g = Arc::new(CsrGraph::from_edges(3, &[(0, 1, 2), (1, 2, 1), (2, 0, 1)]));
//! let service = MinCutService::new(ServiceConfig::new().concurrency(1));
//! let report = service.run_batch(&[
//!     BatchJob::new(g.clone(), "noi-viecut"),
//!     BatchJob::new(g.clone(), "noi-viecut"), // cache hit
//! ]);
//! assert!(report.all_ok());
//! assert_eq!(report.stats.cache_hits, 1);
//! ```
//!
//! ## Dynamic updates
//!
//! When the graph itself mutates, [`DynamicMinCut`] maintains
//! `(λ, witness)` exactly across edge insertions and deletions over a
//! [`DeltaGraph`] overlay, re-solving (bound-seeded) only when an update
//! crosses the witness in a way that can change the answer; the
//! `mincut --stream <trace>` CLI mode and the `dynamic_stream` example
//! drive it end to end, and [`MinCutService::register_dynamic`] serves
//! it with `(fingerprint, epoch)` cache keys:
//!
//! ```
//! use sm_mincut::{CsrGraph, DynamicMinCut, SolveOptions};
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
//! let mut dyn_cut = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new()).unwrap();
//! assert_eq!(dyn_cut.lambda(), 2);
//! assert_eq!(dyn_cut.delete_edge(1, 2).unwrap().lambda, 1);
//! assert_eq!(dyn_cut.insert_edge(1, 2, 3).unwrap().lambda, 2);
//! ```
//!
//! The enum front door of earlier releases still works as a shim:
//!
//! ```
//! use sm_mincut::{minimum_cut, Algorithm, CsrGraph};
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1, 2), (1, 2, 1), (2, 0, 1)]);
//! let cut = minimum_cut(&g, Algorithm::default());
//! assert_eq!(cut.value, 2);
//! ```

pub use mincut_core as algorithms;
pub use mincut_ds as ds;
pub use mincut_flow as flow;
pub use mincut_graph as graph;
pub use mincut_obs as obs;

// The names a typical user needs, flattened.
pub use mincut_core::{
    materialize, minimum_cut, minimum_cut_seeded, parse_trace, parse_trace_op, Algorithm, BatchJob,
    BatchReport, BatchStats, CacheStats, Cactus, CactusBuilder, CactusStats, Capabilities,
    DynamicHandle, DynamicMinCut, DynamicStats, ErrorPolicy, Guarantee, JobReport, JobStatus,
    Membership, MinCutError, MinCutResult, MinCutService, PqKind, ReduceOutcome,
    ReductionPassStats, ReductionPipeline, Reductions, ServiceConfig, Session, SolveOptions,
    SolveOutcome, Solver, SolverRegistry, SolverStats, TraceOp, UpdateReport,
};
pub use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, GraphBuilder, NodeId};

// Zero-copy `.smcpack` graph packs (write once, mmap forever); the CLI
// `mincut pack` subcommand and the `pack_quickstart` example sit on
// exactly this surface.
pub use mincut_graph::pack::{
    is_pack_path, load_pack, read_pack, write_pack, write_pack_file, PackError, PACK_EXTENSION,
};
