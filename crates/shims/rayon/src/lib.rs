//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no crates.io access, so this vendored shim
//! covers exactly the data-parallel surface the workspace uses:
//!
//! * `(range).into_par_iter().for_each(f)` — index parallelism;
//! * `slice.par_chunks(size).for_each(f)` — chunk parallelism;
//! * `slice.par_sort_unstable_by_key(f)` — sequential fallback.
//!
//! `for_each` is genuinely parallel: the index space is split evenly
//! across `std::thread::available_parallelism()` scoped threads (capped
//! by `RAYON_NUM_THREADS`, like real rayon's global pool). There is
//! no work stealing — the workloads here (graph contraction, label
//! propagation) are pre-chunked evenly by their callers, which is exactly
//! the shape static splitting handles well.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

use std::ops::Range;

fn worker_count(items: usize) -> usize {
    // Like real rayon, RAYON_NUM_THREADS caps the pool — the CI test
    // matrix uses it to force both single- and multi-worker schedules
    // through the same binaries. Read once (real rayon also fixes its
    // global pool size at initialisation): the shim sits on hot solver
    // paths that would otherwise take the env lock every round.
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let cap = *CAP.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(hw)
    });
    cap.min(items.max(1))
}

/// Number of workers the shim will spread work across (hardware
/// parallelism capped by `RAYON_NUM_THREADS`) — API-compatible with
/// `rayon::current_num_threads`. Hot paths use it to route between
/// sequential and parallel variants without spawning first.
pub fn current_num_threads() -> usize {
    worker_count(usize::MAX)
}

/// `into_par_iter()` for integer ranges.
pub trait IntoParallelIterator {
    type ParIter;
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for Range<usize> {
    type ParIter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange(self)
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParRange(Range<usize>);

impl ParRange {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let Range { start, end } = self.0;
        let len = end.saturating_sub(start);
        if len == 0 {
            return;
        }
        let workers = worker_count(len);
        if workers == 1 {
            (start..end).for_each(f);
            return;
        }
        let per = len.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let lo = start + w * per;
                let hi = (lo + per).min(end);
                if lo < hi {
                    scope.spawn(move || (lo..hi).for_each(f));
                }
            }
        });
    }

    pub fn map<F, T>(self, f: F) -> std::iter::Map<Range<usize>, F>
    where
        F: FnMut(usize) -> T,
    {
        self.0.map(f)
    }
}

/// `par_chunks` for shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks with zero chunk size");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// A parallel iterator over slice chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Send + Sync,
    {
        let chunks: Vec<&[T]> = self.slice.chunks(self.chunk_size).collect();
        if chunks.is_empty() {
            return;
        }
        let workers = worker_count(chunks.len());
        if workers == 1 {
            chunks.into_iter().for_each(f);
            return;
        }
        let per = chunks.len().div_ceil(workers);
        let f = &f;
        let chunks = &chunks;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let lo = w * per;
                let hi = (lo + per).min(chunks.len());
                if lo < hi {
                    scope.spawn(move || chunks[lo..hi].iter().for_each(|c| f(c)));
                }
            }
        });
    }
}

/// Mutable-slice parallel operations. The sort is a sequential fallback:
/// correct, cache-friendly, and not on the measured hot paths.
pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_range_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_covers_the_slice() {
        let data: Vec<usize> = (0..997).collect();
        let sum = AtomicUsize::new(0);
        data.par_chunks(64).for_each(|chunk| {
            sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 997 * 996 / 2);
    }

    #[test]
    fn par_sort_by_key_sorts() {
        let mut v: Vec<(u64, u64)> = (0..100).map(|i| ((997 * i) % 101, i)).collect();
        v.par_sort_unstable_by_key(|&(k, _)| k);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn empty_inputs_are_fine() {
        (0..0).into_par_iter().for_each(|_| panic!("must not run"));
        let empty: Vec<u8> = Vec::new();
        empty.par_chunks(8).for_each(|_| panic!("must not run"));
    }
}
