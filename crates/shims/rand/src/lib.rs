//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the surface the workspace uses: `SmallRng`
//! (xoshiro256++ seeded through SplitMix64, matching rand 0.8 on 64-bit
//! targets), `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen_range`, `gen`, `gen_bool`.
//!
//! Uniform range sampling uses Lemire-style widening multiplication
//! without a rejection loop; the bias is at most 2⁻⁶⁴·span, irrelevant
//! for randomized graph generation and tests.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, compatible with `rand::SeedableRng`'s
/// `seed_from_u64` (SplitMix64 expansion of the seed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..n)`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample from the "standard" distribution of `T` (uniform over all
    /// values for integers, `[0, 1)` for floats, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53 random mantissa bits, uniform in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

#[inline]
fn widening_mul_bound(rng_word: u64, span: u64) -> u64 {
    // Maps a uniform u64 into [0, span) by taking the high half of the
    // 128-bit product — Lemire's multiply-shift, sans rejection.
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + widening_mul_bound(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + widening_mul_bound(rng.next_u64(), span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = self.end - self.start;
        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        // Modulo bias is at most span/2^128 — negligible.
        self.start + word % span
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(widening_mul_bound(rng.next_u64(), span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..2);
            assert_eq!(y, 1);
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
    }
}
