//! Named RNGs. Only `SmallRng` is provided: the workspace's algorithms
//! seed every randomized component explicitly.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind `rand 0.8`'s `SmallRng` on 64-bit
/// platforms. Small state, excellent statistical quality, and fast.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    /// Expands the 64-bit seed through SplitMix64, as `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
