//! The [`Strategy`] trait and its combinators: value generation without
//! shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate (bounded retries;
    /// panics if the predicate is pathologically selective).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (integers and bool).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Weighted union over type-erased strategies (`prop_oneof!`).
pub fn union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! needs at least one positive weight");
    Union { arms, total }
}

pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}
