//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact `usize` or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy with empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Vectors of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
