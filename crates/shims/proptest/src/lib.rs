//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access; this vendored shim
//! implements the surface the workspace's property tests use — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], `Just`, `any`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for size:
//!
//! * **no shrinking** — a failing case reports its inputs via the assert
//!   message (tests here format the offending graph into the message);
//! * **`prop_assume!` skips the case** instead of re-drawing, so a test
//!   runs *up to* `cases` inputs;
//! * generation is deterministic per test name, so failures reproduce.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Rejection marker returned by `prop_assume!` failures.
#[derive(Debug)]
pub struct Rejected;

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    #[allow(clippy::redundant_closure_call)]
                    let __result = (|| -> ::core::result::Result<(), $crate::Rejected> {
                        let ($($pat,)+) = (
                            $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                        );
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    let _ = (__case, __result);
                }
            }
        )*
    };
}

/// Weighted or unweighted union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::union(vec![
            $( ( ($weight) as u32, $crate::strategy::Strategy::boxed($strat) ) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::union(vec![
            $( ( 1u32, $crate::strategy::Strategy::boxed($strat) ) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u64),
        Clear,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..10, w in 1u64..8, x in any::<u8>()) {
            prop_assert!((2..10).contains(&n));
            prop_assert!((1..8).contains(&w));
            let _ = x;
        }

        #[test]
        fn flat_map_and_vec_sizes(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0u32..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_and_map((n, doubled) in (1usize..50).prop_map(|n| (n, 2 * n))) {
            prop_assert_eq!(doubled, 2 * n);
        }

        #[test]
        fn oneof_produces_both_arms(ops in crate::collection::vec(
            prop_oneof![
                3 => (1u64..100).prop_map(Op::Add),
                1 => Just(Op::Clear),
            ],
            200,
        )) {
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Add(_))));
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Clear)));
        }

        #[test]
        fn assume_skips(n in 0usize..4) {
            prop_assume!(n != 0);
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn deterministic_generation_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
