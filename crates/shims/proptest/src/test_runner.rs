//! Test-runner configuration and the deterministic generation RNG.

/// Subset of proptest's configuration: the number of cases per test.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator seeded from the test's module path + name, so
/// every run of a given test sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
