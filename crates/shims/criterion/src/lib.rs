//! Offline, API-compatible subset of `criterion`.
//!
//! No statistics engine — each benchmark runs `sample_size` batches after
//! a warm-up batch and prints the per-iteration median and min/max to
//! stdout. Enough to compare implementations on one machine, which is
//! what the workspace's micro-benchmarks are for.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (configuration + reporting).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size_override: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = MeasureConfig {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        run_one(&id.0, cfg, &mut f);
        self
    }
}

struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size_override = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let cfg = MeasureConfig {
            sample_size: self
                .sample_size_override
                .unwrap_or(self.criterion.sample_size),
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
        };
        run_one(&label, cfg, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, cfg: MeasureConfig, f: &mut F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up + calibration: find an iteration count filling the warm-up
    // window, then scale to the per-sample budget.
    let t0 = Instant::now();
    let mut calibration_iters = 0u64;
    while t0.elapsed() < cfg.warm_up_time {
        b.iters = 1;
        f(&mut b);
        calibration_iters += 1;
    }
    let per_iter = t0.elapsed().as_secs_f64() / calibration_iters.max(1) as f64;
    let budget = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        b.iters = iters_per_sample;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{label:<50} median {:>12} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        cfg.sample_size,
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += t0.elapsed();
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(pub(crate) String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a benchmark group function; both criterion forms supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
