//! Offline, API-compatible subset of `parking_lot`, backed by
//! `std::sync`. The signature difference that matters to callers is that
//! `lock()` returns the guard directly (no `Result`); poisoning is
//! translated into a panic-through, which matches `parking_lot`'s
//! no-poisoning semantics for the non-panicking path.

use std::sync::TryLockError;

pub use std::sync::MutexGuard;
pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// A mutex whose `lock` never returns `Err` (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex"),
        }
    }
}

/// A reader-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
