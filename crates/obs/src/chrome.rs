//! Chrome trace-event JSON export.
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! the emitted file loads unmodified in Perfetto (`ui.perfetto.dev`)
//! and `chrome://tracing`. The exporter writes one JSON object with a
//! `traceEvents` array containing
//!
//! * one `M`/`thread_name` metadata event per recorded thread, so each
//!   worker gets a named track;
//! * one `X` (complete) event per span, with `ts`/`dur` in microseconds
//!   and the span's annotations under `args`;
//! * one `i` (instant) event per [`crate::instant`] emission.
//!
//! All events share `pid: 1` — the stack is a single process; tracks
//! are threads.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::path::Path;

use crate::json_escape;
use crate::span::{ArgValue, EventPhase, TraceEvent};

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_escape(k));
        s.push(':');
        match v {
            ArgValue::Str(x) => s.push_str(&json_escape(x)),
            ArgValue::U64(x) => s.push_str(&x.to_string()),
            ArgValue::I64(x) => s.push_str(&x.to_string()),
            ArgValue::F64(x) if x.is_finite() => s.push_str(&format!("{x}")),
            ArgValue::F64(_) => s.push_str("null"),
            ArgValue::Bool(x) => s.push_str(if *x { "true" } else { "false" }),
        }
    }
    s.push('}');
    s
}

/// Serialises drained events (see [`crate::take_events`]) as a Chrome
/// trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent], threads: &[(u64, String)]) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |item: String, first: &mut bool| {
        if !*first {
            s.push(',');
        }
        *first = false;
        s.push_str(&item);
    };
    push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"sm-mincut\"}}"
            .to_string(),
        &mut first,
    );
    for (tid, name) in threads {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_escape(name)
            ),
            &mut first,
        );
    }
    for e in events {
        let item = match e.phase {
            EventPhase::Complete => format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"smc\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{}}}",
                json_escape(e.name),
                e.tid,
                e.ts_us,
                e.dur_us,
                args_json(&e.args)
            ),
            EventPhase::Instant => format!(
                "{{\"ph\":\"i\",\"name\":{},\"cat\":\"smc\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"s\":\"t\",\"args\":{}}}",
                json_escape(e.name),
                e.tid,
                e.ts_us,
                args_json(&e.args)
            ),
        };
        push(item, &mut first);
    }
    s.push_str("]}");
    s
}

/// Drains the global sink and writes the Chrome trace to `path`.
/// Returns the number of events written.
pub fn export_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let (events, threads) = crate::take_events();
    let json = chrome_trace_json(&events, &threads);
    std::fs::write(path, json + "\n")?;
    Ok(events.len())
}

/// Structural sanity check over recorded events: on every track, the
/// complete (span) events must form a laminar family — two spans on one
/// thread either nest or are disjoint, never partially overlap. RAII
/// guards guarantee this by construction; the check exists so exporters
/// and tests can assert it end to end (CI validates the emitted JSON
/// with the same rule via the `trace_check` bin in `mincut-bench`).
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut spans: Vec<(u64, u64, &'static str)> = events
            .iter()
            .filter(|e| e.tid == tid && e.phase == EventPhase::Complete)
            .map(|e| (e.ts_us, e.ts_us + e.dur_us, e.name))
            .collect();
        // Parents before children: start ascending, end descending, so
        // a span sharing its start with its parent checks against it.
        spans.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, &'static str)> = Vec::new();
        for (start, end, name) in spans {
            while let Some(&(_, open_end, _)) = stack.last() {
                if open_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end, open_name)) = stack.last() {
                if end > open_end || start < open_start {
                    return Err(format!(
                        "tid {tid}: span {name:?} [{start}, {end}] partially overlaps \
                         {open_name:?} [{open_start}, {open_end}]"
                    ));
                }
            }
            stack.push((start, end, name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64, dur: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name,
            phase: EventPhase::Complete,
            ts_us: ts,
            dur_us: dur,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn exporter_emits_wellformed_structure() {
        let mut e = ev("solve", 10, 100, 0);
        e.args.push(("algorithm", ArgValue::Str("noi\"λ̂\"".into())));
        e.args.push(("n", ArgValue::U64(64)));
        e.args.push(("exact", ArgValue::Bool(true)));
        let mut i = ev("tick", 20, 0, 1);
        i.phase = EventPhase::Instant;
        let threads = vec![(0u64, "main".to_string()), (1, "worker-1".to_string())];
        let json = chrome_trace_json(&[e, i], &threads);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"n\":64"));
        assert!(json.contains("\"exact\":true"));
        // The quoted algorithm name is escaped, not emitted raw.
        assert!(json.contains("noi\\\"λ̂\\\""));
    }

    #[test]
    fn validator_accepts_nesting_and_rejects_overlap() {
        // Nested + disjoint on one track, anything on another: fine.
        let good = [
            ev("a", 0, 100, 0),
            ev("b", 10, 20, 0),
            ev("c", 50, 10, 0),
            ev("d", 5, 500, 1),
        ];
        assert!(validate_events(&good).is_ok());

        // Partial overlap on one track: rejected.
        let bad = [ev("a", 0, 50, 0), ev("b", 25, 50, 0)];
        let err = validate_events(&bad).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }
}
