//! # mincut-obs — observability for the minimum-cut stack
//!
//! The per-solve [`SolverStats`](../mincut_core/struct.SolverStats.html)
//! report answers "where did *this run's* work go" after the fact; this
//! crate answers the live questions a long-running serving layer asks —
//! what is every thread doing right now, how are the caches behaving
//! across thousands of jobs, and what were the last operations before a
//! failure. Three pillars, zero external dependencies:
//!
//! * **Spans** ([`span`], [`instant`]) — lightweight thread-aware spans
//!   with enter/exit timestamps and key/value annotations, collected in a
//!   process-wide sink and exported as **Chrome trace-event JSON**
//!   ([`chrome_trace_json`]) that loads directly in Perfetto or
//!   `chrome://tracing`, one track per worker thread. Collection sits
//!   behind a relaxed-atomic enabled flag: **the disabled path is a
//!   single branch with zero allocation** (proved by the counting-
//!   allocator test `crates/core/tests/scan_alloc.rs` — the CAPFOREST
//!   scan itself carries a span and still allocates nothing when tracing
//!   is off).
//! * **Metrics** ([`metrics`]) — a process-wide registry of named
//!   counters, gauges and log2-bucketed latency histograms, with
//!   [`MetricsRegistry::snapshot`] → JSON export and a Prometheus-style
//!   text exposition formatter for the future async server.
//! * **Flight recorder** ([`flight`]) — a fixed-size ring buffer of
//!   recent structured events, dumped on error paths (solver failure,
//!   trace-parse rejection, a poisoned `DynamicMinCut`) so post-mortems
//!   carry the last operations that led to the failure.
//!
//! ## Enabling
//!
//! Libraries never read the environment; drivers opt in:
//!
//! * programmatically — [`set_tracing`]`(true)`;
//! * `mincut --trace-out <file>` (any mode) force-enables collection and
//!   writes the Chrome trace on exit;
//! * `SMC_TRACE=on|off` (default `off`) via [`init_from_env`], which the
//!   CLI and bench bins call at startup — unrecognized values warn once
//!   per process through the shared `mincut_ds::env_knob` contract.
//!
//! ## Quickstart
//!
//! ```
//! use mincut_obs as obs;
//!
//! obs::set_tracing(true);
//! {
//!     let mut sp = obs::span("demo/work");
//!     sp.arg("items", 3u64);
//!     obs::instant("demo/tick").arg("i", 1u64);
//! }
//! obs::metrics().counter("demo.iterations").inc();
//! obs::metrics().histogram("demo.latency_us").record(180);
//!
//! let (events, threads) = obs::take_events();
//! assert!(events.iter().any(|e| e.name == "demo/work"));
//! let json = obs::chrome_trace_json(&events, &threads);
//! assert!(json.contains("\"traceEvents\""));
//! let snap = obs::metrics().snapshot();
//! assert!(snap.to_prometheus().contains("demo_iterations"));
//! obs::set_tracing(false);
//! ```
//!
//! (The repo-level `examples/obs_quickstart.rs` drives the same flow
//! through a real solve.)

mod chrome;
mod flight;
mod metrics;
mod span;

pub use chrome::{chrome_trace_json, export_chrome_trace, validate_events};
pub use flight::{flight, FlightEvent, FlightRecorder};
pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{
    current_tid, init_from_env, instant, named_track, set_tracing, span, take_events,
    tracing_enabled, ArgValue, EventBuilder, EventPhase, SpanGuard, TraceEvent,
};

/// Escapes `s` as a JSON string literal, quotes included. Local copy so
/// the crate stays at the bottom of the dependency graph (`mincut-core`
/// has its own `json_string`; this crate cannot depend on it).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
