//! The flight recorder: a fixed-size ring of recent structured events
//! for post-mortems.
//!
//! Error reports from a long-lived process ("solver failed", "maintainer
//! poisoned") are useless without the operations that led up to them.
//! The flight recorder keeps the last [`CAPACITY`] coarse events —
//! dynamic updates, batch jobs, resolves — in a fixed-size ring and
//! error paths dump it to stderr ([`FlightRecorder::dump_to_stderr`]).
//!
//! Unlike spans it is always on: recording happens only at coarse call
//! sites (per update / per job, never inside scan loops), costs one
//! short critical section, and memory is bounded by the ring.

use std::sync::{Mutex, OnceLock};

/// Ring capacity: enough context to reconstruct how a maintainer or a
/// batch got into a bad state, small enough to never matter.
pub const CAPACITY: usize = 128;

/// One recorded event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Monotone per-process sequence number (total events ever
    /// recorded when this one was, starting at 1).
    pub seq: u64,
    /// Coarse subsystem tag (`"dynamic"`, `"service"`, `"solver"`, …).
    pub category: &'static str,
    pub message: String,
}

struct Ring {
    buf: Vec<FlightEvent>,
    /// Next write position once the ring is full.
    next: usize,
    /// Total events ever recorded.
    total: u64,
}

/// The process-wide recorder (see [`flight`]).
pub struct FlightRecorder {
    inner: Mutex<Ring>,
}

/// The process-wide [`FlightRecorder`].
pub fn flight() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder {
        inner: Mutex::new(Ring {
            buf: Vec::with_capacity(CAPACITY),
            next: 0,
            total: 0,
        }),
    })
}

impl FlightRecorder {
    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&self, category: &'static str, message: impl Into<String>) {
        let mut r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        r.total += 1;
        let ev = FlightEvent {
            seq: r.total,
            category,
            message: message.into(),
        };
        if r.buf.len() < CAPACITY {
            r.buf.push(ev);
        } else {
            let next = r.next;
            r.buf[next] = ev;
            r.next = (next + 1) % CAPACITY;
        }
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<FlightEvent> {
        let r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = Vec::with_capacity(r.buf.len());
        if r.buf.len() < CAPACITY {
            out.extend(r.buf.iter().cloned());
        } else {
            out.extend(r.buf[r.next..].iter().cloned());
            out.extend(r.buf[..r.next].iter().cloned());
        }
        out
    }

    /// Total events ever recorded (retained or evicted).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).total
    }

    /// Empties the ring (tests; the sequence numbering continues).
    pub fn clear(&self) {
        let mut r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        r.buf.clear();
        r.next = 0;
    }

    /// Dumps the retained events to stderr under a `context` header —
    /// the error-path post-mortem. Silent when nothing was recorded.
    pub fn dump_to_stderr(&self, context: &str) {
        let events = self.recent();
        if events.is_empty() {
            return;
        }
        eprintln!(
            "flight recorder: last {} event(s) before {context}:",
            events.len()
        );
        for ev in events {
            eprintln!("  [#{:>6}] {:<8} {}", ev.seq, ev.category, ev.message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events_in_order() {
        // A private recorder so the test does not race the global one.
        let r = FlightRecorder {
            inner: Mutex::new(Ring {
                buf: Vec::with_capacity(CAPACITY),
                next: 0,
                total: 0,
            }),
        };
        for i in 0..CAPACITY + 10 {
            r.record("test", format!("event {i}"));
        }
        let events = r.recent();
        assert_eq!(events.len(), CAPACITY);
        assert_eq!(r.total(), (CAPACITY + 10) as u64);
        // Oldest retained is event 10; newest is the last recorded.
        assert_eq!(events.first().unwrap().message, "event 10");
        assert_eq!(
            events.last().unwrap().message,
            format!("event {}", CAPACITY + 9)
        );
        // Sequence numbers are monotone.
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));

        r.clear();
        assert!(r.recent().is_empty());
        r.record("test", "after clear");
        assert_eq!(r.recent()[0].seq, (CAPACITY + 11) as u64);
    }
}
