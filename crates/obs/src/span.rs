//! The span tracing core: thread-aware spans behind a relaxed-atomic
//! enabled flag.
//!
//! # Cost model
//!
//! The flag check is one `Relaxed` atomic load. When tracing is
//! disabled, [`span`] and [`instant`] return a guard wrapping `None` —
//! no clock read, no thread-id lookup, no allocation, and every
//! annotation method body is behind `if let Some(_)`, so the compiler
//! sees a dead branch. This is what lets the hot CAPFOREST scan carry a
//! span unconditionally while `crates/core/tests/scan_alloc.rs` keeps
//! asserting the warm scan allocates nothing.
//!
//! When tracing is enabled, a span costs a monotonic clock read at enter
//! and, at drop, a clock read plus one short critical section pushing
//! the completed event into the process-wide sink. Timestamps are
//! microseconds since the first enablement of the process (so traces
//! from one process share one epoch). Each OS thread is assigned a
//! small stable track id on first use and its `std::thread` name is
//! recorded for the exporter's `thread_name` metadata.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-wide collection flag. Relaxed is sufficient: the sink is
/// internally synchronized, the flag only gates *whether* to record.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span collection is currently on (one relaxed load).
#[inline(always)]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span collection on or off. Enabling anchors the process trace
/// epoch if this is the first enablement.
pub fn set_tracing(on: bool) {
    if on {
        epoch(); // anchor t = 0 before the first event
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Applies the `SMC_TRACE` environment knob (`off` default, `on`
/// enables; unrecognized values warn once via the shared
/// [`mincut_ds::env_knob`] contract) and returns the resulting state.
/// Drivers call this once at startup; libraries never read the
/// environment.
pub fn init_from_env() -> bool {
    let on = mincut_ds::env_knob("SMC_TRACE", "off|on", "off", false, |v| match v {
        "off" | "0" | "false" => Some(false),
        "on" | "1" | "true" => Some(true),
        _ => None,
    });
    if on {
        set_tracing(true);
    }
    tracing_enabled()
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Next unassigned track id (0 is typically the main thread).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The stable per-thread track id, assigned on first use. The thread's
/// name (or `thread-<id>` if unnamed) is registered with the sink so
/// the Chrome exporter can emit `thread_name` metadata — one named
/// track per worker.
pub fn current_tid() -> u64 {
    TID.with(|t| {
        let cached = t.get();
        if cached != u64::MAX {
            return cached;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(tid);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        sink()
            .threads
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((tid, name));
        tid
    })
}

/// A stable track id for a *logical* worker, registered by name on
/// first use. Short-lived OS threads (scoped per-round workers) pin
/// their spans to a named track with [`SpanGuard::pin_track`] so the
/// exported trace shows one lane per logical worker instead of one per
/// spawned thread.
pub fn named_track(name: &str) -> u64 {
    let mut threads = sink().threads.lock().unwrap_or_else(|p| p.into_inner());
    if let Some((tid, _)) = threads.iter().find(|(_, n)| n == name) {
        return *tid;
    }
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    threads.push((tid, name.to_string()));
    tid
}

/// An annotation value. Numbers stay typed so the exporter can emit
/// real JSON numbers instead of strings.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Chrome trace-event phase of a recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventPhase {
    /// A duration span (`ph: "X"` — ts + dur).
    Complete,
    /// A point-in-time event (`ph: "i"`).
    Instant,
}

/// One recorded event in the process-wide sink.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    pub phase: EventPhase,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Stable per-thread track id ([`current_tid`]).
    pub tid: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The value of the annotation `key`, if present.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

struct Sink {
    events: Mutex<Vec<TraceEvent>>,
    /// `(tid, thread name)` in registration order.
    threads: Mutex<Vec<(u64, String)>>,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Sink {
        events: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
    })
}

fn push_event(ev: TraceEvent) {
    sink()
        .events
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(ev);
}

/// Drains the sink: all events recorded so far (in completion order)
/// plus the `(tid, name)` registry of every thread that recorded one.
/// The thread registry is *not* cleared — track ids stay stable for the
/// life of the process, so later drains still know every track's name.
pub fn take_events() -> (Vec<TraceEvent>, Vec<(u64, String)>) {
    let events = std::mem::take(&mut *sink().events.lock().unwrap_or_else(|p| p.into_inner()));
    let threads = sink()
        .threads
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    (events, threads)
}

struct ActiveSpan {
    name: &'static str,
    start_us: u64,
    /// Explicit track override ([`named_track`]); the recording
    /// thread's own track otherwise.
    track: Option<u64>,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII span guard: records a [`EventPhase::Complete`] event covering
/// its lifetime when tracing was enabled at creation, nothing
/// otherwise.
pub struct SpanGuard(Option<ActiveSpan>);

/// Opens a span. The single relaxed-load check happens here; a guard
/// created while tracing is off is inert (and stays inert even if
/// tracing is enabled before it drops — events are never half-timed).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name,
        start_us: now_us(),
        track: None,
        args: Vec::new(),
    }))
}

impl SpanGuard {
    /// Attaches a key/value annotation. On an inert guard the value is
    /// never converted — pass borrowed or `Copy` data and the disabled
    /// path stays allocation-free.
    #[inline]
    pub fn arg(&mut self, key: &'static str, v: impl Into<ArgValue>) {
        if let Some(s) = &mut self.0 {
            s.args.push((key, v.into()));
        }
    }

    /// Attaches a lazily-formatted string annotation: `v` is only
    /// `Display`-formatted when the guard is live.
    #[inline]
    pub fn arg_display(&mut self, key: &'static str, v: impl std::fmt::Display) {
        if let Some(s) = &mut self.0 {
            s.args.push((key, ArgValue::Str(v.to_string())));
        }
    }

    /// Whether this guard is actually recording.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Pins the span to an explicit track ([`named_track`]) instead of
    /// the recording thread's own. No-op when inert.
    #[inline]
    pub fn pin_track(&mut self, tid: u64) {
        if let Some(s) = &mut self.0 {
            s.track = Some(tid);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let end = now_us();
            push_event(TraceEvent {
                name: s.name,
                phase: EventPhase::Complete,
                ts_us: s.start_us,
                dur_us: end.saturating_sub(s.start_us),
                tid: s.track.unwrap_or_else(current_tid),
                args: s.args,
            });
        }
    }
}

/// Builder for a point-in-time event; the event is recorded when the
/// builder drops (so annotations chain naturally). Inert when tracing
/// is off, like [`span`].
pub struct EventBuilder(Option<ActiveSpan>);

/// Opens an instant-event builder (see [`EventBuilder`]).
#[inline]
pub fn instant(name: &'static str) -> EventBuilder {
    if !tracing_enabled() {
        return EventBuilder(None);
    }
    EventBuilder(Some(ActiveSpan {
        name,
        start_us: now_us(),
        track: None,
        args: Vec::new(),
    }))
}

impl EventBuilder {
    /// Attaches a key/value annotation (no-op when inert).
    #[inline]
    pub fn arg(mut self, key: &'static str, v: impl Into<ArgValue>) -> Self {
        if let Some(s) = &mut self.0 {
            s.args.push((key, v.into()));
        }
        self
    }

    /// Attaches a lazily-formatted string annotation.
    #[inline]
    pub fn arg_display(mut self, key: &'static str, v: impl std::fmt::Display) -> Self {
        if let Some(s) = &mut self.0 {
            s.args.push((key, ArgValue::Str(v.to_string())));
        }
        self
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            push_event(TraceEvent {
                name: s.name,
                phase: EventPhase::Instant,
                ts_us: s.start_us,
                dur_us: 0,
                tid: s.track.unwrap_or_else(current_tid),
                args: s.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and sink are process-global; run every span test
    // under one lock so parallel test threads cannot interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_tracing(false);
        take_events();
        {
            let mut sp = span("x");
            sp.arg("k", 1u64);
            assert!(!sp.is_recording());
            instant("y").arg("k", 2u64);
        }
        assert!(take_events().0.is_empty());
    }

    #[test]
    fn enabled_spans_capture_nesting_and_args() {
        let _g = lock();
        set_tracing(true);
        take_events();
        {
            let mut outer = span("outer");
            outer.arg("n", 10u64);
            outer.arg_display("label", format_args!("v{}", 2));
            {
                let _inner = span("inner");
                instant("tick").arg("round", 3u64);
            }
        }
        set_tracing(false);
        let (events, threads) = take_events();
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        // Completion order: instants fire at creation, spans at drop.
        assert_eq!(names, vec!["tick", "inner", "outer"]);
        let outer = &events[2];
        assert_eq!(outer.arg("n"), Some(&ArgValue::U64(10)));
        assert_eq!(outer.arg("label"), Some(&ArgValue::Str("v2".into())));
        let inner = &events[1];
        // Containment on the same track.
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert!(threads.iter().any(|(tid, _)| *tid == outer.tid));
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let _g = lock();
        set_tracing(true);
        take_events();
        let main_tid = current_tid();
        let worker_tid = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                let _sp = span("worker-span");
                current_tid()
            })
            .unwrap()
            .join()
            .unwrap();
        set_tracing(false);
        let (events, threads) = take_events();
        assert_ne!(main_tid, worker_tid);
        let ev = events.iter().find(|e| e.name == "worker-span").unwrap();
        assert_eq!(ev.tid, worker_tid);
        assert!(threads
            .iter()
            .any(|(tid, name)| *tid == worker_tid && name == "obs-test-worker"));
    }
}
