//! The process-wide metrics registry: named counters, gauges and
//! log2-bucketed latency histograms.
//!
//! Unlike spans, metrics are always on — every instrument is a relaxed
//! atomic touched at coarse points (per job, per update, per cache
//! probe), never inside scan inner loops, so there is nothing to gate.
//! Handles are `Arc`s resolved by name through the registry; call sites
//! that increment repeatedly cache the handle in a `OnceLock`.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] that serialises either as JSON (the CLI's
//! `--metrics-out`) or as Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]) for the future async server.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json_escape;

/// A monotonically increasing counter.
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `bucket_index(v) == i`, i.e. `v == 0` → 0 and otherwise
/// `⌊log2 v⌋ + 1`, covering the full `u64` range.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram (latencies in microseconds by convention,
/// but any `u64` measure works). Recording is one relaxed `fetch_add`
/// into the value's bucket plus count/sum upkeep.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(upper_bound, cumulative_count)` per non-trailing-empty bucket;
    /// bucket `i`'s inclusive upper bound is `2^i - 1` (`0` for the
    /// zero bucket).
    pub buckets: Vec<(u64, u64)>,
}

/// The process-wide registry (see [`metrics`]).
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide [`MetricsRegistry`].
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn get_or_insert<T>(
    map: &Mutex<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let mut m = map.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(v) = m.get(name) {
        return v.clone();
    }
    let v = Arc::new(make());
    m.insert(name.to_string(), v.clone());
    v
}

impl MetricsRegistry {
    /// The counter named `name`, created on first use. Dots group
    /// metrics by subsystem (`service.cache.hits`).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, || Counter(AtomicU64::new(0)))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, || Gauge(AtomicI64::new(0)))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, Histogram::new)
    }

    /// Freezes every instrument into a [`MetricsSnapshot`]. Relaxed
    /// reads: concurrent updates may or may not be included, which is
    /// the usual metrics contract.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, h)| {
                let mut cumulative = 0;
                let mut buckets = Vec::new();
                let last = h
                    .buckets
                    .iter()
                    .rposition(|b| b.load(Ordering::Relaxed) != 0)
                    .unwrap_or(0);
                for (i, b) in h.buckets.iter().enumerate().take(last + 1) {
                    cumulative += b.load(Ordering::Relaxed);
                    let le = if i == 0 {
                        0
                    } else {
                        (1u64 << i).wrapping_sub(1)
                    };
                    buckets.push((if i == 64 { u64::MAX } else { le }, cumulative));
                }
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered instrument (tests and bench harnesses;
    /// handles stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// A frozen view of the registry, ready to serialise.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// `a.b.c` → `a_b_c` (Prometheus metric names allow `[a-zA-Z0-9_:]`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// JSON export (the CLI's `--metrics-out` payload).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json_escape(k)));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json_escape(k)));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(k),
                h.count,
                h.sum
            ));
            for (j, (le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Prometheus text exposition (counters as `counter`, gauges as
    /// `gauge`, histograms as cumulative `_bucket`/`_sum`/`_count`
    /// series with `+Inf` always present).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            s.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            s.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            s.push_str(&format!("# TYPE {n} histogram\n"));
            for (le, c) in &h.buckets {
                s.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {c}\n"));
            }
            s.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            s.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registry_instruments_round_trip() {
        let r = metrics();
        r.counter("test.jobs").add(3);
        r.counter("test.jobs").inc(); // same handle by name
        r.gauge("test.depth").set(-2);
        let h = r.histogram("test.latency_us");
        for v in [0, 1, 5, 5, 300, 70_000] {
            h.record(v);
        }

        let snap = r.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("test.jobs"), Some(4));
        assert_eq!(
            snap.gauges
                .iter()
                .find(|(k, _)| k == "test.depth")
                .map(|(_, v)| *v),
            Some(-2)
        );
        let (_, hs) = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "test.latency_us")
            .unwrap();
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 70_311);
        // Cumulative: last bucket covers everything recorded.
        assert_eq!(hs.buckets.last().unwrap().1, 6);
        // le=1 covers the 0 and 1 records.
        assert!(hs.buckets.iter().any(|&(le, c)| le == 1 && c == 2));

        let json = snap.to_json();
        assert!(json.contains("\"test.jobs\":4"));
        assert!(json.contains("\"count\":6"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE test_jobs counter"));
        assert!(prom.contains("test_jobs 4"));
        assert!(prom.contains("# TYPE test_depth gauge"));
        assert!(prom.contains("test_latency_us_bucket{le=\"+Inf\"} 6"));
        assert!(prom.contains("test_latency_us_count 6"));
    }
}
