//! Karger–Stein recursive random contraction (comparator, §2.2).
//!
//! Contract uniformly weight-proportional random edges down to
//! `⌈1 + n/√2⌉` vertices, recurse twice, keep the better result; repeat
//! the whole procedure to boost the success probability. Returns the
//! minimum cut with probability ≥ 1 − (1 − 1/Θ(log n))^repetitions; the
//! paper (and the studies it cites) found it orders of magnitude slower
//! than NOI in practice, which our benchmark harness reproduces.

use mincut_ds::UnionFind;
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::MinCutError;
use crate::stats::{SolveContext, SolverStats};
use crate::MinCutResult;

/// Configuration for [`karger_stein`].
#[derive(Clone, Debug)]
pub struct KargerSteinConfig {
    /// Independent repetitions of the full recursive procedure. The
    /// classical recommendation is Θ(log² n); each repetition succeeds
    /// with probability Ω(1/log n).
    pub repetitions: usize,
    pub seed: u64,
    pub compute_side: bool,
}

impl Default for KargerSteinConfig {
    fn default() -> Self {
        KargerSteinConfig {
            repetitions: 16,
            seed: 0xca59e5,
            compute_side: true,
        }
    }
}

/// Monte-Carlo minimum cut. The returned value is always the value of an
/// actual cut (an upper bound on λ); it equals λ with high probability for
/// sufficient repetitions. Requires n ≥ 2; handles disconnected inputs.
pub fn karger_stein(g: &CsrGraph, cfg: &KargerSteinConfig) -> MinCutResult {
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    karger_stein_instrumented(g, cfg, &mut ctx)
        .expect("Karger-Stein without a time budget cannot fail")
}

/// [`karger_stein`] recording the best-value trajectory per repetition
/// into the [`SolveContext`] and honoring its time budget between
/// repetitions.
pub fn karger_stein_instrumented(
    g: &CsrGraph,
    cfg: &KargerSteinConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        ctx.stats.record_lambda(0);
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return Ok(MinCutResult {
            value: 0,
            side: cfg.compute_side.then_some(side),
        });
    }
    karger_stein_connected(g, cfg, ctx)
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both), skipping the redundant
/// component scan.
pub(crate) fn karger_stein_connected(
    g: &CsrGraph,
    cfg: &KargerSteinConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut engine = ContractionEngine::new();
    let mut best = EdgeWeight::MAX;
    let mut best_side: Option<Vec<bool>> = None;
    for _ in 0..cfg.repetitions.max(1) {
        ctx.check_budget()?;
        ctx.stats.rounds += 1;
        let membership = Membership::identity(g.n());
        recursive(
            g.clone(),
            membership,
            &mut engine,
            &mut rng,
            &mut best,
            &mut best_side,
        );
        ctx.stats.record_lambda(best);
    }
    Ok(MinCutResult {
        value: best,
        side: cfg
            .compute_side
            .then(|| best_side.expect("at least one cut examined")),
    })
}

fn recursive(
    g: CsrGraph,
    membership: Membership,
    engine: &mut ContractionEngine,
    rng: &mut SmallRng,
    best: &mut EdgeWeight,
    best_side: &mut Option<Vec<bool>>,
) {
    let n = g.n();
    if n <= 6 {
        brute_force_small(&g, &membership, best, best_side);
        engine.recycle(g);
        return;
    }
    // ⌈1 + n/√2⌉ — the classical recursion size.
    let target = (1.0 + n as f64 / std::f64::consts::SQRT_2).ceil() as usize;
    let target = target.min(n - 1).max(2);
    for _ in 0..2 {
        if let Some((gc, mc)) = contract_random_to(&g, &membership, target, engine, rng) {
            recursive(gc, mc, engine, rng, best, best_side);
        }
    }
    // This branch's graph retires here; its buffers seed the next leaf.
    engine.recycle(g);
}

/// Contracts weight-proportional random edges until `target` vertices
/// remain. Returns `None` if the graph runs out of edges first (it became
/// disconnected into `> target` pieces — impossible for connected inputs).
fn contract_random_to(
    g: &CsrGraph,
    membership: &Membership,
    target: usize,
    engine: &mut ContractionEngine,
    rng: &mut SmallRng,
) -> Option<(CsrGraph, Membership)> {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    let mut edges: Vec<(NodeId, NodeId, EdgeWeight)> = g.edges().collect();
    let mut count = n;
    while count > target {
        if edges.is_empty() {
            return None;
        }
        // Cumulative weights for O(log m) weight-proportional sampling.
        let mut cum: Vec<u128> = Vec::with_capacity(edges.len());
        let mut acc: u128 = 0;
        for e in &edges {
            acc += e.2 as u128;
            cum.push(acc);
        }
        let mut consecutive_rejects = 0;
        while count > target {
            let pick = rng.gen_range(0..acc);
            let idx = cum.partition_point(|&c| c <= pick);
            let (u, v, _) = edges[idx];
            if uf.union(u, v) {
                count -= 1;
                consecutive_rejects = 0;
            } else {
                consecutive_rejects += 1;
                if consecutive_rejects >= 8 {
                    break; // too many internal edges: rebuild the edge list
                }
            }
        }
        if count > target {
            edges.retain(|&(u, v, _)| uf.find(u) != uf.find(v));
        }
    }
    let (labels, blocks) = uf.dense_labels();
    let mut mc = membership.clone();
    let gc = engine.contract_tracked(g, &labels, blocks, &mut mc);
    Some((gc, mc))
}

/// Exhaustive minimum cut of a ≤ 6-vertex graph, mapped through the
/// membership to an original-vertex witness.
fn brute_force_small(
    g: &CsrGraph,
    membership: &Membership,
    best: &mut EdgeWeight,
    best_side: &mut Option<Vec<bool>>,
) {
    let n = g.n();
    debug_assert!((2..=6).contains(&n));
    for mask in 1u32..(1 << (n - 1)) {
        let side: Vec<bool> = (0..n).map(|v| v < n - 1 && (mask >> v) & 1 == 1).collect();
        let value = g.cut_value(&side);
        if value < *best {
            *best = value;
            *best_side = Some(membership.side_of_bitmap(&side));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn check(g: &CsrGraph, expected: EdgeWeight, reps: usize) {
        let r = karger_stein(
            g,
            &KargerSteinConfig {
                repetitions: reps,
                seed: 7,
                compute_side: true,
            },
        );
        assert_eq!(r.value, expected);
        let side = r.side.unwrap();
        assert!(g.is_proper_cut(&side));
        assert_eq!(g.cut_value(&side), expected);
    }

    #[test]
    fn exact_on_small_known_families() {
        check(&known::path_graph(12, 2).0, 2, 12);
        check(&known::cycle_graph(16, 3).0, 6, 12);
        check(&known::complete_graph(9, 1).0, 8, 12);
        let (g, l) = known::two_communities(8, 8, 1, 3, 2);
        check(&g, l, 12);
    }

    #[test]
    fn value_is_always_a_real_cut_even_with_one_repetition() {
        let (g, lambda) = known::ring_of_cliques(5, 4, 3, 1);
        let r = karger_stein(
            &g,
            &KargerSteinConfig {
                repetitions: 1,
                seed: 3,
                compute_side: true,
            },
        );
        assert!(
            r.value >= lambda,
            "Monte Carlo may overshoot, never undershoot"
        );
        assert_eq!(g.cut_value(&r.side.unwrap()), r.value);
    }

    #[test]
    fn disconnected_input() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let r = karger_stein(&g, &KargerSteinConfig::default());
        assert_eq!(r.value, 0);
    }
}
