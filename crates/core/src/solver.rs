//! The object-safe [`Solver`] trait and the instrumented [`Session`] API.
//!
//! Every algorithm in this crate (and the flow-based comparators of
//! `mincut-flow`) sits behind this interface, so drivers — the CLI, the
//! bench harness, the solver-matrix tests — sweep configurations without
//! naming concrete types. A solve returns a [`SolveOutcome`]: the cut
//! plus the [`SolverStats`] telemetry report.

use std::time::Instant;

use mincut_ds::take_counters;
use mincut_graph::CsrGraph;

use crate::error::MinCutError;
use crate::options::SolveOptions;
use crate::stats::{SolveContext, SolverStats};
use crate::MinCutResult;

/// Quality guarantee a solver's returned value carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guarantee {
    /// Always returns λ(G).
    Exact,
    /// Returns the value of an actual cut ≥ λ(G); equals λ with high
    /// probability (Karger–Stein).
    MonteCarlo,
    /// Returns the value of an actual cut ≥ λ(G), no probability bound
    /// (VieCut — in practice usually λ itself).
    UpperBound,
    /// Returns the value of an actual cut in [λ, (2+ε)·λ] (Matula).
    TwoPlusEpsilon,
}

impl Guarantee {
    pub fn is_exact(self) -> bool {
        matches!(self, Guarantee::Exact)
    }
}

/// What a solver supports, advertised through the registry so drivers
/// can pick solvers by property instead of by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    pub guarantee: Guarantee,
    /// Uses worker threads ([`SolveOptions::threads`]).
    pub parallel: bool,
    /// Can produce a witness side when [`SolveOptions::witness`] is set.
    pub witness: bool,
    /// Reads [`SolveOptions::pq`] (or accepts a queue-pinned name).
    pub uses_pq: bool,
    /// Output value may vary with [`SolveOptions::seed`] (inexact
    /// solvers; exact solvers return λ for every seed).
    pub randomized_value: bool,
    /// Reads [`SolveOptions::initial_bound`] to seed λ̂ (the NOI family).
    /// Drivers that donate bounds — the batch service's bound sharing —
    /// skip solvers without this.
    pub uses_initial_bound: bool,
}

/// A finished run: the cut and its telemetry.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    pub cut: MinCutResult,
    pub stats: SolverStats,
}

/// An object-safe minimum-cut solver.
///
/// Implementations provide [`Solver::run`]; the provided [`Solver::solve`]
/// wraps it with the shared preflight (input validation, the disconnected
/// short-circuit), priority-queue counter harvesting and total timing, so
/// every solver behaves uniformly at the edges.
pub trait Solver: Send + Sync {
    /// Canonical family name as registered (paper §4.1 spelling).
    fn name(&self) -> &'static str;

    fn capabilities(&self) -> Capabilities;

    /// Fully-qualified instance name under the given options, e.g.
    /// `NOIλ̂-BQueue-VieCut` or `ParCutλ̂-BQueue(p=8)`.
    fn instance_name(&self, _opts: &SolveOptions) -> String {
        self.name().to_string()
    }

    /// The algorithm body. `g` is guaranteed connected with n ≥ 2 and
    /// `opts` validated when called through [`Solver::solve`].
    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError>;

    /// Solves `g` under `opts`, producing the cut and its stats report.
    ///
    /// Uniform behavior across every solver: fewer than two vertices is
    /// [`MinCutError::TooFewVertices`]; a disconnected graph returns
    /// value 0 with a component witness without running the algorithm.
    fn solve(&self, g: &CsrGraph, opts: &SolveOptions) -> Result<SolveOutcome, MinCutError> {
        opts.validate()?;
        let t0 = Instant::now();
        let mut stats = SolverStats::new(self.instance_name(opts), g.n(), g.m());

        if g.n() < 2 {
            return Err(MinCutError::TooFewVertices { n: g.n() });
        }
        let (comp, ncomp) = mincut_graph::components::connected_components(g);
        if ncomp > 1 {
            stats.record_lambda(0);
            stats.total_seconds = t0.elapsed().as_secs_f64();
            let side: Vec<bool> = comp.iter().map(|&c| c == comp[0]).collect();
            return Ok(SolveOutcome {
                cut: MinCutResult {
                    value: 0,
                    side: opts.witness.then_some(side),
                },
                stats,
            });
        }

        // Harvest the calling thread's PQ counters around the run; the
        // parallel drivers add their workers' counters explicitly.
        let _ = take_counters();
        let mut ctx = SolveContext::with_budget(&mut stats, opts.time_budget);
        let result = self.run(g, opts, &mut ctx);
        stats.add_pq_ops(take_counters());
        let cut = result?;

        stats.record_lambda(cut.value);
        stats.total_seconds = t0.elapsed().as_secs_f64();
        Ok(SolveOutcome { cut, stats })
    }
}

impl std::fmt::Debug for dyn Solver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Solver({})", self.name())
    }
}

/// An instrumented solving session over one graph: resolve solvers by
/// name through the [registry](crate::SolverRegistry), share one
/// [`SolveOptions`] value, collect [`SolveOutcome`]s.
///
/// ```
/// use mincut_core::{Session, SolveOptions};
/// use mincut_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 1), (2, 3, 2), (3, 0, 1)]);
/// let session = Session::new(&g).options(SolveOptions::new().seed(1));
/// let outcome = session.run("noi-viecut").unwrap();
/// assert_eq!(outcome.cut.value, 2);
/// assert!(!outcome.stats.lambda_trajectory.is_empty());
/// ```
pub struct Session<'g> {
    graph: &'g CsrGraph,
    opts: SolveOptions,
}

impl<'g> Session<'g> {
    pub fn new(graph: &'g CsrGraph) -> Self {
        Session {
            graph,
            opts: SolveOptions::default(),
        }
    }

    /// Replaces the session options (builder-style).
    pub fn options(mut self, opts: SolveOptions) -> Self {
        self.opts = opts;
        self
    }

    pub fn options_mut(&mut self) -> &mut SolveOptions {
        &mut self.opts
    }

    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Runs the solver registered under `name` (canonical, alias, or
    /// queue-pinned spelling).
    pub fn run(&self, name: &str) -> Result<SolveOutcome, MinCutError> {
        let solver = crate::SolverRegistry::global().resolve(name)?;
        solver.solve(self.graph, &self.opts)
    }

    /// Runs every registered solver family once, in registry order.
    pub fn run_all(&self) -> Vec<(&'static str, Result<SolveOutcome, MinCutError>)> {
        crate::SolverRegistry::global()
            .entries()
            .map(|e| (e.canonical, self.run(e.canonical)))
            .collect()
    }
}
