//! The object-safe [`Solver`] trait and the instrumented [`Session`] API.
//!
//! Every algorithm in this crate (and the flow-based comparators of
//! `mincut-flow`) sits behind this interface, so drivers — the CLI, the
//! bench harness, the solver-matrix tests — sweep configurations without
//! naming concrete types. A solve returns a [`SolveOutcome`]: the cut
//! plus the [`SolverStats`] telemetry report.

use std::time::Instant;

use mincut_graph::components::{connected_components, smallest_component_side};
use mincut_graph::CsrGraph;

use crate::error::MinCutError;
use crate::options::SolveOptions;
use crate::reduce::{ReduceOutcome, ReductionPipeline, Reductions};
use crate::stats::{SolveContext, SolverStats};
use crate::MinCutResult;

/// Quality guarantee a solver's returned value carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guarantee {
    /// Always returns λ(G).
    Exact,
    /// Returns the value of an actual cut ≥ λ(G); equals λ with high
    /// probability (Karger–Stein).
    MonteCarlo,
    /// Returns the value of an actual cut ≥ λ(G), no probability bound
    /// (VieCut — in practice usually λ itself).
    UpperBound,
    /// Returns the value of an actual cut in [λ, (2+ε)·λ] (Matula).
    TwoPlusEpsilon,
}

impl Guarantee {
    pub fn is_exact(self) -> bool {
        matches!(self, Guarantee::Exact)
    }
}

/// What a solver supports, advertised through the registry so drivers
/// can pick solvers by property instead of by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    pub guarantee: Guarantee,
    /// Uses worker threads ([`SolveOptions::threads`]).
    pub parallel: bool,
    /// Can produce a witness side when [`SolveOptions::witness`] is set.
    pub witness: bool,
    /// Reads [`SolveOptions::pq`] (or accepts a queue-pinned name).
    pub uses_pq: bool,
    /// Output value may vary with [`SolveOptions::seed`] (inexact
    /// solvers; exact solvers return λ for every seed).
    pub randomized_value: bool,
    /// Reads [`SolveOptions::initial_bound`] to seed λ̂ (the NOI family).
    /// Drivers that donate bounds — the batch service's bound sharing —
    /// skip solvers without this.
    pub uses_initial_bound: bool,
    /// The shared preflight may run the [`ReductionPipeline`] and hand
    /// this solver the kernel instead of the input graph
    /// ([`SolveOptions::reductions`]). True for every built-in solver;
    /// a custom solver that inspects the original structure (e.g. one
    /// reporting all-pairs cuts) would clear it to opt out.
    pub kernelizable: bool,
}

/// A finished run: the cut and its telemetry.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    pub cut: MinCutResult,
    pub stats: SolverStats,
}

/// An object-safe minimum-cut solver.
///
/// Implementations provide [`Solver::run`]; the provided [`Solver::solve`]
/// wraps it with the shared preflight (input validation, the disconnected
/// short-circuit), priority-queue counter harvesting and total timing, so
/// every solver behaves uniformly at the edges.
pub trait Solver: Send + Sync {
    /// Canonical family name as registered (paper §4.1 spelling).
    fn name(&self) -> &'static str;

    fn capabilities(&self) -> Capabilities;

    /// Fully-qualified instance name under the given options, e.g.
    /// `NOIλ̂-BQueue-VieCut` or `ParCutλ̂-BQueue(p=8)`.
    fn instance_name(&self, _opts: &SolveOptions) -> String {
        self.name().to_string()
    }

    /// The algorithm body. `g` is guaranteed connected with n ≥ 2 and
    /// `opts` validated when called through [`Solver::solve`].
    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError>;

    /// Solves `g` under `opts`, producing the cut and its stats report.
    ///
    /// Uniform behavior across every solver: fewer than two vertices is
    /// [`MinCutError::TooFewVertices`]; a disconnected graph returns
    /// value 0 with the **smallest component** as the canonical witness,
    /// without running the algorithm. When [`SolveOptions::reductions`]
    /// is enabled (the default) and the solver is
    /// [kernelizable](Capabilities::kernelizable), the shared preflight
    /// runs the [`ReductionPipeline`] first and the algorithm body only
    /// sees the kernel; the λ̂ found during kernelization and the kernel
    /// solve combine into the exact answer.
    fn solve(&self, g: &CsrGraph, opts: &SolveOptions) -> Result<SolveOutcome, MinCutError> {
        solve_impl(self, g, opts, None)
    }

    /// [`Solver::solve`] against a kernel someone else already computed
    /// (the batch service kernelizes once per graph fingerprint and fans
    /// the result out to every job on that graph). `kernel` must come
    /// from a [`ReductionPipeline`] run over this same `g`.
    fn solve_with_kernel(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        kernel: &ReduceOutcome,
    ) -> Result<SolveOutcome, MinCutError> {
        solve_impl(self, g, opts, Some(kernel))
    }
}

/// Shared body of [`Solver::solve`] / [`Solver::solve_with_kernel`].
fn solve_impl<S: Solver + ?Sized>(
    solver: &S,
    g: &CsrGraph,
    opts: &SolveOptions,
    precomputed: Option<&ReduceOutcome>,
) -> Result<SolveOutcome, MinCutError> {
    opts.validate()?;
    let t0 = Instant::now();
    let mut stats = SolverStats::new(solver.instance_name(opts), g.n(), g.m());
    // The root span of the solve; phase spans (reduce, rounds, scans)
    // nest underneath on the same track.
    let mut solve_span = mincut_obs::span("solve");
    solve_span.arg_display("algorithm", &stats.algorithm);
    solve_span.arg("n", g.n());
    solve_span.arg("m", g.m());

    if g.n() < 2 {
        return Err(MinCutError::TooFewVertices { n: g.n() });
    }
    let kernelize = solver.capabilities().kernelizable && opts.reductions.is_enabled();
    // The pipeline's mandatory component-split preamble subsumes this
    // scan (same λ = 0, same smallest-component witness), so the O(n+m)
    // connectivity pass runs at most once per solve — and not at all for
    // jobs served a precomputed kernel.
    if !kernelize {
        let (comp, ncomp) = connected_components(g);
        if ncomp > 1 {
            stats.record_lambda(0);
            stats.total_seconds = t0.elapsed().as_secs_f64();
            let side = smallest_component_side(&comp, ncomp);
            return Ok(SolveOutcome {
                cut: MinCutResult {
                    value: 0,
                    side: opts.witness.then_some(side),
                },
                stats,
            });
        }
    }

    // PQ-operation totals flow from the drivers' own instrumented queues
    // into the context (no thread-local counters anywhere).
    let mut ctx = SolveContext::with_budget(&mut stats, opts.time_budget);
    let computed: ReduceOutcome;
    let kernel: Option<&ReduceOutcome> = if !kernelize {
        None
    } else if let Some(k) = precomputed {
        debug_assert_eq!((k.original_n, k.original_m), (g.n(), g.m()));
        Some(k)
    } else if let Some(pipeline) = ReductionPipeline::from_options(&opts.reductions)? {
        let run = ctx.stats.time_phase("reduce", |stats| {
            let mut inner = SolveContext {
                stats,
                deadline: ctx.deadline,
                budget: ctx.budget,
            };
            pipeline.run(g, opts.initial_bound.clone(), &mut inner)
        });
        computed = run?;
        Some(&computed)
    } else {
        None
    };

    let result = match kernel {
        None => solver.run(g, opts, &mut ctx),
        Some(red) => finish_with_kernel(solver, g, opts, red, &mut ctx),
    };
    let cut = match result {
        Ok(cut) => cut,
        Err(e) => {
            mincut_obs::flight().record(
                "solver",
                format!("{} failed on n={} m={}: {e}", stats.algorithm, g.n(), g.m()),
            );
            return Err(e);
        }
    };

    stats.record_lambda(cut.value);
    stats.total_seconds = t0.elapsed().as_secs_f64();
    solve_span.arg("lambda", cut.value);
    Ok(SolveOutcome { cut, stats })
}

/// Runs the algorithm body on the kernel and combines its result with
/// the kernelization bound: the pipeline invariant is
/// `λ(G) = min(λ̂, λ(kernel))`, so taking the minimum — with the kernel
/// witness mapped back through the membership — is exact.
fn finish_with_kernel<S: Solver + ?Sized>(
    solver: &S,
    g: &CsrGraph,
    opts: &SolveOptions,
    red: &ReduceOutcome,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    ctx.stats.kernel_n = red.kernel.n();
    ctx.stats.kernel_m = red.kernel.m();
    // Per-pass timings describe the pipeline run that produced `red` —
    // for a precomputed kernel that is the donor's run. The batch
    // service zeroes them on cache-served jobs so summed telemetry
    // counts the one run exactly once.
    ctx.stats.reductions = red.passes.clone();

    // Fold in a caller bound the pipeline did not see (precomputed
    // kernels are shared across jobs and computed without per-job
    // bounds).
    let mut lambda_hat = red.lambda_hat;
    let mut best_side: Option<Vec<bool>> = red.side.clone();
    if let Some((b, bside)) = &opts.initial_bound {
        if *b < lambda_hat {
            if let Some(s) = bside {
                debug_assert_eq!(g.cut_value(s), *b, "initial bound witness must match");
            }
            lambda_hat = *b;
            best_side = bside.clone();
        }
    }
    ctx.stats.record_lambda(lambda_hat);

    // λ̂ ≤ 1 is terminal on a connected graph with integer weights ≥ 1,
    // and a fully collapsed kernel has nothing left to solve. Checked on
    // the post-bound-fold λ̂, hence not `red.is_terminal()` directly.
    if !crate::reduce::kernel_is_terminal(red.kernel.n(), lambda_hat) {
        let mut kopts = opts.clone();
        kopts.reductions = Reductions::None;
        // λ̂'s witness generally does not survive contraction (that is
        // the point of tracking it), so the kernel solver cannot adopt
        // the side — but a value-only run can still adopt the cap: NOI's
        // bounded scans then return min(λ̂, λ(kernel)), which is exactly
        // what the combination below needs.
        kopts.initial_bound = if opts.witness || !solver.capabilities().uses_initial_bound {
            None
        } else {
            Some((lambda_hat, None))
        };
        let kernel_cut = solver.run(&red.kernel, &kopts, ctx)?;
        if kernel_cut.value < lambda_hat {
            lambda_hat = kernel_cut.value;
            best_side = kernel_cut
                .side
                .map(|side| red.membership.side_of_bitmap(&side));
        }
    }
    ctx.stats.record_lambda(lambda_hat);

    Ok(MinCutResult {
        value: lambda_hat,
        side: if opts.witness { best_side } else { None },
    })
}

impl std::fmt::Debug for dyn Solver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Solver({})", self.name())
    }
}

/// An instrumented solving session over one graph: resolve solvers by
/// name through the [registry](crate::SolverRegistry), share one
/// [`SolveOptions`] value, collect [`SolveOutcome`]s.
///
/// ```
/// use mincut_core::{Session, SolveOptions};
/// use mincut_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 1), (2, 3, 2), (3, 0, 1)]);
/// let session = Session::new(&g).options(SolveOptions::new().seed(1));
/// let outcome = session.run("noi-viecut").unwrap();
/// assert_eq!(outcome.cut.value, 2);
/// assert!(!outcome.stats.lambda_trajectory.is_empty());
/// ```
pub struct Session<'g> {
    graph: &'g CsrGraph,
    opts: SolveOptions,
}

impl<'g> Session<'g> {
    pub fn new(graph: &'g CsrGraph) -> Self {
        Session {
            graph,
            opts: SolveOptions::default(),
        }
    }

    /// Replaces the session options (builder-style).
    pub fn options(mut self, opts: SolveOptions) -> Self {
        self.opts = opts;
        self
    }

    pub fn options_mut(&mut self) -> &mut SolveOptions {
        &mut self.opts
    }

    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Runs the solver registered under `name` (canonical, alias, or
    /// queue-pinned spelling).
    pub fn run(&self, name: &str) -> Result<SolveOutcome, MinCutError> {
        let solver = crate::SolverRegistry::global().resolve(name)?;
        solver.solve(self.graph, &self.opts)
    }

    /// Runs every registered solver family once, in registry order.
    pub fn run_all(&self) -> Vec<(&'static str, Result<SolveOutcome, MinCutError>)> {
        crate::SolverRegistry::global()
            .entries()
            .map(|e| (e.canonical, self.run(e.canonical)))
            .collect()
    }
}
