//! Kernelization: exact reduction passes shared by every solver.
//!
//! The paper's speed comes from *bound-driven contraction*: cheap local
//! tests shrink the graph to a small kernel before any expensive scan work
//! (§3; the VieCut line of work). This module makes that a first-class,
//! composable subsystem instead of per-solver folklore: a [`Reduction`] is
//! one exact pass over the current kernel, a [`ReductionPipeline`] runs a
//! list of passes to a fixpoint through one shared
//! [`ContractionEngine`], and the resulting [`ReduceOutcome`] carries the
//! kernel, the [`Membership`] map back to the original vertex set, the
//! best bound λ̂ found on the way (always the value of a real cut, witness
//! included) and per-pass telemetry.
//!
//! **The exactness invariant.** Every pass preserves
//!
//! ```text
//! λ(G) = min(λ̂, λ(kernel))
//! ```
//!
//! * `components` — a disconnected graph has λ = 0 with the smallest
//!   component as the canonical witness; each component collapses to one
//!   vertex and the pipeline terminates.
//! * `degree-bound` — walks the k-core peeling order
//!   ([`mincut_graph::kcore::core_decomposition`]) and takes the best
//!   *prefix cut* along it (maintained incrementally in O(n + m)). Loosely
//!   attached structure peels first, so this generalises the trivial
//!   minimum-degree cut: the first prefix is a single minimum-degree
//!   vertex, later prefixes capture whole satellite communities. Bound
//!   only; never contracts.
//! * `heavy-edge` — contracts every edge with `c(e) ≥ λ̂` (any cut
//!   separating its endpoints pays at least `c(e)`, so no cut below λ̂ is
//!   lost) or `2·c(e) ≥ min(c(u), c(v))` (safe for non-trivial cuts;
//!   trivial cuts are covered because the pipeline keeps λ̂ at most the
//!   minimum weighted degree of every interim kernel).
//! * `padberg-rinaldi` — the full Padberg–Rinaldi pass
//!   ([`padberg_rinaldi_pass`], lifted out of `viecut/`), adding the
//!   triangle test 3 on top of the edge-local tests.
//!
//! Contractions route through the engine's
//! [`SEQUENTIAL_FALLBACK_THRESHOLD`](ContractionEngine::SEQUENTIAL_FALLBACK_THRESHOLD)
//! dispatch, the same knob as every solver's round loop.
//!
//! **Migration note.** `viecut::padberg_rinaldi_pass` still resolves (a
//! re-export); VieCut itself now consumes the pass from here.

use std::borrow::Cow;
use std::time::Instant;

use mincut_ds::UnionFind;
use mincut_graph::components::{connected_components, smallest_component_side};
use mincut_graph::kcore::core_decomposition;
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership, NodeId};

use crate::error::MinCutError;
use crate::stats::{ReductionPassStats, SolveContext};

/// Which reduction passes a solve runs before its main loop
/// ([`SolveOptions::reductions`](crate::SolveOptions::reductions)).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Reductions {
    /// The standard pipeline, every pass in canonical order (the default).
    #[default]
    All,
    /// No kernelization (the CLI's `--no-reduce`).
    None,
    /// Only the named passes, in the given order (the CLI's
    /// `--reductions=<list>`). Names as in [`ReductionPipeline::pass_names`].
    Only(Vec<String>),
}

impl Reductions {
    /// Whether any kernelization runs at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Reductions::None)
    }

    /// Rejects unknown or empty pass selections (the name check is
    /// [`ReductionPipeline::only`]'s, so the two cannot drift).
    pub fn validate(&self) -> Result<(), MinCutError> {
        if let Reductions::Only(names) = self {
            if names.is_empty() {
                return Err(MinCutError::InvalidOptions {
                    message: "reductions: empty pass list (use Reductions::None to disable)".into(),
                });
            }
            ReductionPipeline::only(names)?;
        }
        Ok(())
    }

    /// Stable spelling used as part of cache keys (the service's kernel
    /// cache and cut cache must distinguish reduction configurations).
    pub fn cache_key(&self) -> String {
        match self {
            Reductions::All => "all".into(),
            Reductions::None => "none".into(),
            Reductions::Only(names) => format!("only:{}", names.join(",")),
        }
    }
}

/// The rolling state one pipeline run threads through its passes: the
/// current kernel, the witness map back to the original vertices, and the
/// best bound λ̂ seen so far (with its side over the *original* vertex
/// set — `None` only when a sideless caller bound was adopted).
pub struct KernelState<'e, 'g> {
    /// Borrows the input until the first contraction — reduction-resistant
    /// graphs are never copied by the pipeline.
    pub graph: Cow<'g, CsrGraph>,
    pub membership: Membership,
    pub lambda: EdgeWeight,
    pub side: Option<Vec<bool>>,
    engine: &'e mut ContractionEngine,
}

impl KernelState<'_, '_> {
    /// Adopts a better bound. `side` is over the original vertex set.
    /// Sides are always tracked (even for witness-off runs) so one
    /// pipeline outcome can be shared across jobs with different
    /// witness settings; `side` is `None` only while a sideless
    /// caller-supplied bound holds the record.
    pub fn improve(&mut self, value: EdgeWeight, side: Option<Vec<bool>>) {
        if value < self.lambda {
            self.lambda = value;
            self.side = side;
        }
    }

    /// Adopts a better bound given as a set of *current* (kernel)
    /// vertices on one side.
    fn improve_current(&mut self, value: EdgeWeight, vertices: &[NodeId]) {
        if value < self.lambda {
            self.lambda = value;
            self.side = Some(self.membership.side_of_vertices(vertices));
        }
    }

    /// Contracts the kernel by `labels`, keeps membership in sync through
    /// the engine, recycles the retired buffer, and re-checks the trivial
    /// cuts of the new kernel (§3.2: "If the collapsed graph G_C has a
    /// minimum degree of less than λ̂, we update λ̂") so the heavy-edge
    /// test 2 stays exact.
    fn contract(&mut self, labels: &[NodeId], num_blocks: usize) {
        let next = self.engine.contract_tracked(
            self.graph.as_ref(),
            labels,
            num_blocks,
            &mut self.membership,
        );
        // Only an owned (already-contracted) graph goes back into the
        // double buffer; the borrowed input belongs to the caller.
        if let Cow::Owned(old) = std::mem::replace(&mut self.graph, Cow::Owned(next)) {
            self.engine.recycle(old);
        }
        if self.graph.n() >= 2 {
            if let Some((v, d)) = self.graph.min_weighted_degree() {
                self.improve_current(d, &[v]);
            }
        }
    }
}

/// One exact kernelization pass. Implementations must preserve the
/// pipeline invariant `λ(G) = min(λ̂, λ(kernel))`.
pub trait Reduction: Send + Sync {
    /// Stable pass name (CLI `--reductions` spelling, stats key).
    fn name(&self) -> &'static str;

    /// Runs one pass over the kernel; returns whether it contracted.
    fn apply(&self, k: &mut KernelState<'_, '_>) -> bool;
}

/// `components`: λ = 0 on disconnected inputs, with the smallest
/// component as the uniform witness; collapses each component.
struct ComponentSplit;

impl Reduction for ComponentSplit {
    fn name(&self) -> &'static str {
        "components"
    }

    fn apply(&self, k: &mut KernelState<'_, '_>) -> bool {
        let (comp, ncomp) = connected_components(k.graph.as_ref());
        if ncomp <= 1 {
            return false;
        }
        let side_current = smallest_component_side(&comp, ncomp);
        let side = k.membership.side_of_bitmap(&side_current);
        k.improve(0, Some(side));
        k.contract(&comp, ncomp);
        true
    }
}

/// `degree-bound`: best prefix cut along the k-core peeling order.
struct DegreeBound;

impl Reduction for DegreeBound {
    fn name(&self) -> &'static str {
        "degree-bound"
    }

    fn apply(&self, k: &mut KernelState<'_, '_>) -> bool {
        let g = k.graph.as_ref();
        let n = g.n();
        if n < 2 {
            return false;
        }
        let (_, order) = core_decomposition(g);
        let mut in_prefix = vec![false; n];
        let mut cut: EdgeWeight = 0;
        let mut best = (k.lambda, usize::MAX);
        for (i, &v) in order[..n - 1].iter().enumerate() {
            let into_prefix: EdgeWeight = g
                .arcs(v)
                .filter(|&(u, _)| in_prefix[u as usize])
                .map(|(_, w)| w)
                .sum();
            // cut(P ∪ {v}) = cut(P) + c(v) − 2·w(v, P); never underflows
            // because w(v, P) ≤ cut(P) and w(v, P) ≤ c(v).
            cut += g.weighted_degree(v);
            cut -= 2 * into_prefix;
            in_prefix[v as usize] = true;
            if cut < best.0 {
                best = (cut, i);
            }
        }
        if best.1 != usize::MAX {
            let (value, i) = best;
            let prefix = &order[..=i];
            k.improve_current(value, prefix);
        }
        false
    }
}

/// `heavy-edge`: contracts under the two edge-local Padberg–Rinaldi tests.
struct HeavyEdge;

impl Reduction for HeavyEdge {
    fn name(&self) -> &'static str {
        "heavy-edge"
    }

    fn apply(&self, k: &mut KernelState<'_, '_>) -> bool {
        let g = k.graph.as_ref();
        if g.n() <= 2 {
            return false;
        }
        let mut uf = UnionFind::new(g.n());
        // Triangle budget 0: only the edge-local tests 1 and 2 run.
        let unions = pr_pass(g, k.lambda, &mut uf, 0);
        if unions == 0 {
            return false;
        }
        let (labels, blocks) = uf.dense_labels();
        k.contract(&labels, blocks);
        true
    }
}

/// `padberg-rinaldi`: the full pass including the triangle test.
struct PadbergRinaldi;

impl Reduction for PadbergRinaldi {
    fn name(&self) -> &'static str {
        "padberg-rinaldi"
    }

    fn apply(&self, k: &mut KernelState<'_, '_>) -> bool {
        let g = k.graph.as_ref();
        if g.n() <= 2 {
            return false;
        }
        let mut uf = UnionFind::new(g.n());
        let unions = padberg_rinaldi_pass(g, k.lambda, &mut uf);
        if unions == 0 {
            return false;
        }
        let (labels, blocks) = uf.dense_labels();
        k.contract(&labels, blocks);
        true
    }
}

/// Everything a pipeline run produces: the kernel, the way back, the
/// bound, and per-pass telemetry.
#[derive(Clone, Debug)]
pub struct ReduceOutcome {
    pub kernel: CsrGraph,
    /// Kernel vertex → original vertices.
    pub membership: Membership,
    /// Best bound found during kernelization; always the value of a real
    /// cut of the original graph.
    pub lambda_hat: EdgeWeight,
    /// Witness of `lambda_hat` over the original vertex set. `None` only
    /// when a sideless caller-supplied bound was adopted (witness-off
    /// runs).
    pub side: Option<Vec<bool>>,
    pub passes: Vec<ReductionPassStats>,
    pub original_n: usize,
    pub original_m: usize,
}

impl ReduceOutcome {
    /// Whether the kernel needs no solver at all: fully collapsed, or λ̂
    /// already at the floor (0 = disconnected; 1 is unbeatable on a
    /// connected graph with integer weights ≥ 1). Drivers folding in an
    /// extra bound re-check via [`kernel_is_terminal`] with the tighter
    /// λ̂, as `Solver::solve` does.
    pub fn is_terminal(&self) -> bool {
        kernel_is_terminal(self.kernel.n(), self.lambda_hat)
    }
}

/// The single terminal condition shared by [`ReduceOutcome::is_terminal`]
/// and the solver preflight's kernel gate.
pub fn kernel_is_terminal(kernel_n: usize, lambda_hat: EdgeWeight) -> bool {
    kernel_n < 2 || lambda_hat <= 1
}

/// A composable list of [`Reduction`] passes run to a fixpoint.
pub struct ReductionPipeline {
    passes: Vec<Box<dyn Reduction>>,
}

/// Canonical pass order of the standard pipeline.
const PASS_NAMES: &[&str] = &[
    "components",
    "degree-bound",
    "heavy-edge",
    "padberg-rinaldi",
];

/// Fixpoint guard: contraction passes strictly shrink the kernel, so this
/// is never the binding constraint on sane inputs.
const MAX_ROUNDS: usize = 32;

impl ReductionPipeline {
    /// The standard pipeline: every pass, canonical order.
    pub fn standard() -> Self {
        Self::only(PASS_NAMES).expect("canonical names are valid")
    }

    /// A pipeline of just the named passes, in the given order.
    pub fn only<S: AsRef<str>>(names: &[S]) -> Result<Self, MinCutError> {
        let mut passes: Vec<Box<dyn Reduction>> = Vec::new();
        for name in names {
            passes.push(match name.as_ref() {
                "components" => Box::new(ComponentSplit),
                "degree-bound" => Box::new(DegreeBound),
                "heavy-edge" => Box::new(HeavyEdge),
                "padberg-rinaldi" => Box::new(PadbergRinaldi),
                other => {
                    return Err(MinCutError::InvalidOptions {
                        message: format!(
                            "unknown reduction pass {other:?}; known: {}",
                            PASS_NAMES.join(", ")
                        ),
                    })
                }
            });
        }
        Ok(ReductionPipeline { passes })
    }

    /// Builds the pipeline selected by a [`Reductions`] value: `None` when
    /// kernelization is disabled, an error on unknown pass names (the
    /// same check `SolveOptions::validate` runs up front).
    pub fn from_options(r: &Reductions) -> Result<Option<Self>, MinCutError> {
        match r {
            Reductions::All => Ok(Some(Self::standard())),
            Reductions::None => Ok(None),
            Reductions::Only(names) => Self::only(names).map(Some),
        }
    }

    /// Names of every registered pass, canonical order (CLI help,
    /// validation).
    pub fn pass_names() -> &'static [&'static str] {
        PASS_NAMES
    }

    /// Kernelizes `g` (n ≥ 2 required). `initial_bound` is an optional
    /// caller bound — the value of a real cut of `g`, with its side if
    /// known — that seeds λ̂ and thereby unlocks more heavy-edge
    /// contractions. Checks the context's time budget between passes.
    ///
    /// Disconnected inputs terminate immediately with λ̂ = 0 and the
    /// smallest component as witness, whether or not `components` is in
    /// the pass list — the split is the precondition of every other pass.
    pub fn run(
        &self,
        g: &CsrGraph,
        initial_bound: Option<(EdgeWeight, Option<Vec<bool>>)>,
        ctx: &mut SolveContext<'_>,
    ) -> Result<ReduceOutcome, MinCutError> {
        assert!(g.n() >= 2, "kernelization needs at least two vertices");
        let mut engine = ContractionEngine::new();
        let (dv, ddeg) = g.min_weighted_degree().expect("n >= 2");
        let mut state = KernelState {
            graph: Cow::Borrowed(g),
            membership: Membership::identity(g.n()),
            lambda: ddeg,
            side: Some({
                let mut s = vec![false; g.n()];
                s[dv as usize] = true;
                s
            }),
            engine: &mut engine,
        };
        if let Some((b, bside)) = initial_bound {
            if let Some(s) = &bside {
                debug_assert_eq!(
                    g.cut_value(s),
                    b,
                    "initial bound witness must match its value"
                );
            }
            if b < state.lambda {
                // A sideless bound leaves the outcome sideless; callers
                // with witness tracking on never supply one (validated).
                state.lambda = b;
                state.side = bside;
            }
        }
        ctx.stats.record_lambda(state.lambda);

        let mut pass_stats: Vec<ReductionPassStats> = self
            .passes
            .iter()
            .map(|p| ReductionPassStats::new(p.name()))
            .collect();

        // Mandatory preamble: the component split (every later pass
        // assumes a connected kernel). Attributed to the `components`
        // stats row when that pass is selected.
        let t0 = Instant::now();
        let before = (state.graph.n(), state.graph.m());
        let split = ComponentSplit.apply(&mut state);
        if let Some(ps) = pass_stats.iter_mut().find(|p| p.name == "components") {
            ps.rounds += 1;
            ps.vertices_removed += (before.0 - state.graph.n()) as u64;
            ps.edges_removed += (before.1 - state.graph.m()) as u64;
            ps.seconds += t0.elapsed().as_secs_f64();
        }
        if split {
            ctx.stats.record_lambda(state.lambda);
            return Ok(self.finish(state, pass_stats, g));
        }

        'rounds: for _ in 0..MAX_ROUNDS {
            let mut contracted = false;
            for (pass, ps) in self.passes.iter().zip(pass_stats.iter_mut()) {
                if state.graph.n() <= 2 || state.lambda <= 1 {
                    break 'rounds;
                }
                if pass.name() == "components" {
                    continue; // preamble already ran; kernels stay connected
                }
                ctx.check_budget()?;
                let t0 = Instant::now();
                let before = (state.graph.n(), state.graph.m());
                let mut pass_span = mincut_obs::span("reduce/pass");
                pass_span.arg("pass", pass.name());
                pass_span.arg("n", before.0);
                pass_span.arg("m", before.1);
                pass_span.arg("lambda_hat", state.lambda);
                contracted |= pass.apply(&mut state);
                pass_span.arg("vertices_removed", before.0 - state.graph.n());
                pass_span.arg("edges_removed", before.1 - state.graph.m());
                drop(pass_span);
                ps.rounds += 1;
                ps.vertices_removed += (before.0 - state.graph.n()) as u64;
                ps.edges_removed += (before.1 - state.graph.m()) as u64;
                ps.seconds += t0.elapsed().as_secs_f64();
                ctx.stats.record_lambda(state.lambda);
            }
            if !contracted {
                break;
            }
        }
        Ok(self.finish(state, pass_stats, g))
    }

    fn finish(
        &self,
        state: KernelState<'_, '_>,
        passes: Vec<ReductionPassStats>,
        g: &CsrGraph,
    ) -> ReduceOutcome {
        ReduceOutcome {
            // Still borrowed means nothing contracted: the one clone a
            // reduction-resistant input pays (the pre-engine code paid it
            // up front on every input).
            kernel: state.graph.into_owned(),
            membership: state.membership,
            lambda_hat: state.lambda,
            side: state.side,
            passes,
            original_n: g.n(),
            original_m: g.m(),
        }
    }
}

// ---------------------------------------------------------------------
// Padberg–Rinaldi local tests (lifted out of `viecut/padberg_rinaldi.rs`;
// `crate::viecut::padberg_rinaldi_pass` re-exports this).
// ---------------------------------------------------------------------

/// Degree budget for the triangle test: the sorted-list intersection of
/// test 3 costs `deg(u) + deg(v)` per edge, which degenerates to
/// `Σ_v deg(v)²` on hub-heavy graphs. Past this bound the test is skipped
/// — it only costs contraction opportunities, never correctness (the
/// linear-work discipline mirrors the reference implementation's bounded
/// passes).
const TRIANGLE_DEGREE_BUDGET: usize = 256;

/// One pass of the Padberg–Rinaldi tests over all edges, for an edge
/// `e = (u, v)` with weight `c(e)` and the current upper bound λ̂:
///
/// 1. `c(e) ≥ λ̂` — any cut separating u and v costs at least `c(e)`;
///    exact-safe for cuts below λ̂.
/// 2. `2·c(e) ≥ min(c(u), c(v))` — safe w.r.t. *non-trivial* minimum cuts
///    (moving the lighter endpoint across a separating cut never makes it
///    worse). Trivial cuts are covered because the caller keeps
///    λ̂ ≤ min-degree at all times. Unlike tests 1 and 3, this only
///    promises that *some* minimum cut survives, and the shifting
///    argument moves this edge's endpoints — so test-2 contractions in
///    one pass must be vertex-disjoint (a matching). Chaining them is
///    unsound: on the weighted C5 `0-1:3 0-4:5 1-2:6 2-3:4 3-4:4`
///    (λ = 7), edges 2-3 and 3-4 each pass the test individually, but
///    contracting both destroys every minimum cut and λ̂ never drops
///    below 8.
/// 3. `c(e) + Σ_{x ∈ N(u) ∩ N(v)} min(c(u,x), c(v,x)) ≥ λ̂` — every cut
///    separating u and v also pays, for each common neighbour x, the
///    cheaper of its two triangle edges (x lands on one side); exact-safe
///    for cuts below λ̂.
///
/// The fourth Padberg–Rinaldi condition (a triangle/degree hybrid) is
/// deliberately omitted: tests 1–3 already capture nearly all
/// contractions on the benchmark families. Marks contractible edges in
/// `uf`; returns the number of successful unions.
pub fn padberg_rinaldi_pass(g: &CsrGraph, lambda_hat: EdgeWeight, uf: &mut UnionFind) -> usize {
    pr_pass(g, lambda_hat, uf, TRIANGLE_DEGREE_BUDGET)
}

/// Shared body of [`padberg_rinaldi_pass`] and the `heavy-edge` pass:
/// `triangle_budget` = 0 disables test 3, leaving the edge-local tests.
fn pr_pass(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    uf: &mut UnionFind,
    triangle_budget: usize,
) -> usize {
    let mut unions = 0;
    // Test 2 endpoints: the shifting argument re-sides the endpoints of
    // the contracted edge, so two test-2 contractions sharing a vertex
    // may have no common surviving minimum cut. Restricting the pass to
    // a matching keeps the induction valid: each later edge's endpoints
    // are untouched by every earlier move. Tests 1 and 3 lower-bound
    // *every* cut separating their endpoints by λ̂, so they compose
    // freely with each other and with the matching.
    let mut matched = vec![false; g.n()];
    for u in 0..g.n() as NodeId {
        let du = g.weighted_degree(u);
        for (v, w) in g.arcs(u) {
            if u >= v {
                continue;
            }
            let dv = g.weighted_degree(v);
            // Test 1: every u-v-separating cut costs ≥ c(e) ≥ λ̂.
            if w >= lambda_hat {
                if uf.union(u, v) {
                    unions += 1;
                }
                continue;
            }
            // Test 2: only on a matching (see above).
            if 2 * w >= du.min(dv) && !matched[u as usize] && !matched[v as usize] {
                if uf.union(u, v) {
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                    unions += 1;
                }
                continue;
            }
            // Test 3: aggregate triangle bound via sorted-list intersection.
            if g.degree(u) + g.degree(v) > triangle_budget {
                continue;
            }
            let bound = w + common_neighbor_min_sum(g, u, v);
            if bound >= lambda_hat && uf.union(u, v) {
                unions += 1;
            }
        }
    }
    unions
}

/// `Σ_{x ∈ N(u) ∩ N(v)} min(c(u,x), c(v,x))` by merging the two sorted
/// adjacency lists.
fn common_neighbor_min_sum(g: &CsrGraph, u: NodeId, v: NodeId) -> EdgeWeight {
    let nu = g.neighbors(u);
    let wu = g.neighbor_weights(u);
    let nv = g.neighbors(v);
    let wv = g.neighbor_weights(v);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sum = 0;
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += wu[i].min(wv[j]);
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SolverStats;
    use mincut_graph::generators::known;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn kernelize(pipeline: &ReductionPipeline, g: &CsrGraph) -> ReduceOutcome {
        let mut stats = SolverStats::scratch();
        let mut ctx = SolveContext::new(&mut stats);
        pipeline.run(g, None, &mut ctx).expect("no budget")
    }

    /// The pipeline invariant: λ(G) = min(λ̂, λ(kernel)), with a real-cut
    /// witness behind λ̂.
    fn assert_exact(pipeline: &ReductionPipeline, g: &CsrGraph, lambda: EdgeWeight, tag: &str) {
        let out = kernelize(pipeline, g);
        assert!(out.lambda_hat >= lambda, "{tag}: λ̂ below λ");
        let side = out.side.as_ref().expect("pipeline tracks witnesses");
        assert!(g.is_proper_cut(side), "{tag}: improper witness");
        assert_eq!(g.cut_value(side), out.lambda_hat, "{tag}: witness mismatch");
        let kernel_lambda = if out.kernel.n() >= 2 {
            known::brute_force_mincut(&out.kernel)
        } else {
            EdgeWeight::MAX
        };
        assert_eq!(
            out.lambda_hat.min(kernel_lambda),
            lambda,
            "{tag}: min(λ̂, λ(kernel)) must equal λ"
        );
    }

    fn random_graph(rng: &mut SmallRng) -> CsrGraph {
        let n = rng.gen_range(4..10);
        let mut edges = Vec::new();
        for v in 1..n as NodeId {
            edges.push((rng.gen_range(0..v), v, rng.gen_range(1..8)));
        }
        for _ in 0..rng.gen_range(0..14) {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                edges.push((u, v, rng.gen_range(1..8)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn every_pass_alone_preserves_lambda_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(0x2ed);
        for trial in 0..60 {
            let g = random_graph(&mut rng);
            let lambda = known::brute_force_mincut(&g);
            for name in ReductionPipeline::pass_names() {
                let p = ReductionPipeline::only(&[name]).unwrap();
                assert_exact(&p, &g, lambda, &format!("trial {trial}, pass {name}"));
            }
            assert_exact(
                &ReductionPipeline::standard(),
                &g,
                lambda,
                &format!("trial {trial}, standard"),
            );
        }
    }

    #[test]
    fn test2_contractions_stay_a_matching_within_a_pass() {
        // Weighted C5 with λ = 7 (the cut {1, 2}, paying 3 + 4) but
        // minimum degree 8. Test 2 fires on edges (0,4), (1,2), (2,3)
        // and (3,4); batching the chain 2-3, 3-4 through one union-find
        // pass used to destroy every minimum cut and report λ̂ = 8. The
        // matching restriction keeps {3} out of round one, the kernel
        // triangle's min degree drops λ̂ to 7, and round two finishes.
        let g = CsrGraph::from_edges(5, &[(0, 1, 3), (0, 4, 5), (1, 2, 6), (2, 3, 4), (3, 4, 4)]);
        assert_eq!(known::brute_force_mincut(&g), 7);
        for name in ReductionPipeline::pass_names() {
            let p = ReductionPipeline::only(&[name]).unwrap();
            assert_exact(&p, &g, 7, &format!("pass {name}"));
        }
        assert_exact(&ReductionPipeline::standard(), &g, 7, "standard");
    }

    #[test]
    fn clustered_instances_shrink_strictly() {
        let (g, l) = known::two_communities(12, 14, 2, 3, 1);
        let out = kernelize(&ReductionPipeline::standard(), &g);
        assert!(out.kernel.n() < g.n(), "clustered graphs must kernelize");
        assert_eq!(out.lambda_hat, l, "heavy-edge collapse finds λ here");
        let (g, l) = known::ring_of_cliques(6, 8, 2, 1);
        let out = kernelize(&ReductionPipeline::standard(), &g);
        assert!(out.kernel.n() < g.n());
        assert!(out.lambda_hat >= l);
    }

    #[test]
    fn degree_bound_finds_satellite_cuts() {
        // A K5 satellite hanging off a K6 by one unit edge: the peel
        // order removes the satellite first, and its prefix cut (the
        // single bridge) beats every single-vertex trivial cut.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v, 2));
            }
        }
        for u in 5..11u32 {
            for v in u + 1..11 {
                edges.push((u, v, 3));
            }
        }
        edges.push((0, 5, 1));
        let g = CsrGraph::from_edges(11, &edges);
        let p = ReductionPipeline::only(&["degree-bound"]).unwrap();
        let out = kernelize(&p, &g);
        assert_eq!(out.lambda_hat, 1, "the bridge is the best prefix cut");
        assert_eq!(g.cut_value(out.side.as_ref().unwrap()), 1);
        assert_eq!(out.kernel.n(), g.n(), "bound-only pass never contracts");
    }

    #[test]
    fn disconnected_terminates_with_smallest_component_witness() {
        let g = CsrGraph::from_edges(7, &[(0, 1, 2), (1, 2, 2), (3, 4, 1), (5, 6, 9)]);
        let out = kernelize(&ReductionPipeline::standard(), &g);
        assert_eq!(out.lambda_hat, 0);
        assert!(out.is_terminal());
        let side = out.side.unwrap();
        assert_eq!(g.cut_value(&side), 0);
        // {3,4} and {5,6} tie at size 2; the smaller component id wins.
        assert_eq!(side, vec![false, false, false, true, true, false, false]);
    }

    #[test]
    fn terminal_on_bridge_graphs_skips_the_solver() {
        // λ̂ = 1 is the floor for connected integer-weighted graphs.
        let (g, _) = known::barbell(6, 6, 1, 1);
        let out = kernelize(&ReductionPipeline::standard(), &g);
        assert_eq!(out.lambda_hat, 1);
        assert!(out.is_terminal());
    }

    #[test]
    fn initial_bound_tightens_reductions() {
        // With λ̂ donated at the true value, heavy-edge contracts far more.
        let (g, l) = known::two_communities(10, 10, 2, 2, 1);
        let mut side = vec![false; g.n()];
        side[..10].fill(true);
        assert_eq!(g.cut_value(&side), l);
        let free = kernelize(&ReductionPipeline::standard(), &g);
        let mut stats = SolverStats::scratch();
        let mut ctx = SolveContext::new(&mut stats);
        let seeded = ReductionPipeline::standard()
            .run(&g, Some((l, Some(side))), &mut ctx)
            .unwrap();
        assert!(seeded.kernel.n() <= free.kernel.n());
        assert_eq!(seeded.lambda_hat, l);
    }

    #[test]
    fn unknown_pass_names_are_rejected() {
        assert!(ReductionPipeline::only(&["nope"]).is_err());
        assert!(Reductions::Only(vec!["nope".into()]).validate().is_err());
        assert!(Reductions::Only(vec![]).validate().is_err());
        assert!(Reductions::Only(vec!["heavy-edge".into()])
            .validate()
            .is_ok());
        assert!(Reductions::All.is_enabled());
        assert!(!Reductions::None.is_enabled());
        assert_ne!(Reductions::All.cache_key(), Reductions::None.cache_key());
    }

    // ----- Padberg–Rinaldi pass tests (moved with the implementation) ----

    #[test]
    fn heavy_edge_contracts_under_test1() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 10), (1, 2, 1), (0, 2, 1)]);
        let mut uf = UnionFind::new(3);
        let unions = padberg_rinaldi_pass(&g, 5, &mut uf);
        assert!(unions >= 1);
        assert!(uf.same(0, 1), "the weight-10 edge must be marked");
    }

    #[test]
    fn triangle_test_fires() {
        // Edge (0,1) weight 2, common neighbour 2 with min(3,3) = 3:
        // bound 5 ≥ λ̂ = 5 even though c(e) < λ̂ and degrees are large.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 2),
                (0, 2, 3),
                (1, 2, 3),
                (0, 3, 9),
                (1, 4, 9),
                (2, 3, 1),
                (2, 4, 1),
            ],
        );
        let mut uf = UnionFind::new(5);
        padberg_rinaldi_pass(&g, 5, &mut uf);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn pass_preserves_minimum_cut_value_on_known_family() {
        // Contract everything a pass marks, recompute λ on the contracted
        // graph, and check the known minimum survives (tests are safe as
        // long as λ̂ starts at the min-degree bound).
        let (g, l) = known::two_communities(8, 8, 2, 3, 1);
        let lambda_hat = g.min_weighted_degree().unwrap().1;
        let mut uf = UnionFind::new(g.n());
        let unions = padberg_rinaldi_pass(&g, lambda_hat, &mut uf);
        assert!(unions > 0, "cliques must contract");
        let (labels, blocks) = uf.dense_labels();
        let c = mincut_graph::contract::contract(&g, &labels, blocks);
        assert!(c.n() >= 2);
        let r = crate::stoer_wagner::stoer_wagner(&c);
        assert_eq!(r.value, l, "min cut must survive the PR pass");
    }

    #[test]
    fn no_unions_when_lambda_hat_unreachable() {
        // Cycles DO contract under test 2 (2c(e) ≥ min degree); verify
        // safety of the aggressive local tests instead of absence.
        let g = CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 0, 2)]);
        let mut uf = UnionFind::new(4);
        let unions = padberg_rinaldi_pass(&g, u64::MAX, &mut uf);
        assert!(unions > 0);
        let (labels, blocks) = uf.dense_labels();
        let c = mincut_graph::contract::contract(&g, &labels, blocks);
        if c.n() >= 2 {
            let r = crate::stoer_wagner::stoer_wagner(&c);
            assert!(r.value >= 4);
        }
    }
}
