//! [`SolverRegistry`]: the single source of algorithm names.
//!
//! Every front door resolves solvers here — the library facade
//! ([`minimum_cut`](crate::minimum_cut)), the `mincut` CLI's `-a` flag,
//! the bench harness and the solver-matrix tests. Canonical names are
//! the paper's §4.1 spellings (`NOIλ̂-VieCut`, `ParCutλ̂`, `HO-CGKLS`,
//! …); aliases cover the CLI spellings (`noi-viecut`, `parcut`,
//! `hao-orlin`). Queue-pinned spellings (`NOIλ̂-BStack`,
//! `noi-bqueue-viecut`, `parcutλ̂-heap`) resolve to the family with that
//! queue pinned, overriding [`SolveOptions::pq`].

use std::sync::OnceLock;

use mincut_ds::PqKind;
use mincut_graph::CsrGraph;

use crate::error::MinCutError;
use crate::karger_stein::{karger_stein_connected, KargerSteinConfig};
use crate::matula::{matula_approx_connected, MatulaConfig};
use crate::noi::{noi_minimum_cut_connected, NoiConfig};
use crate::options::SolveOptions;
use crate::parallel::mincut::{parallel_minimum_cut_connected, ParCutConfig};
use crate::solver::{Capabilities, Guarantee, Solver};
use crate::stats::SolveContext;
use crate::stoer_wagner::stoer_wagner_connected;
use crate::viecut::{viecut_connected, VieCutConfig};
use crate::MinCutResult;

/// One registered solver family.
pub struct SolverEntry {
    /// Paper-style canonical name (§4.1).
    pub canonical: &'static str,
    /// CLI spellings and shorthands.
    pub aliases: &'static [&'static str],
    /// One-line description for `--help` output.
    pub summary: &'static str,
    pub caps: Capabilities,
    ctor: fn(Option<PqKind>) -> Box<dyn Solver>,
}

impl SolverEntry {
    /// Instantiates the family, optionally pinning its queue.
    pub fn instantiate(&self, pin_pq: Option<PqKind>) -> Box<dyn Solver> {
        (self.ctor)(pin_pq)
    }
}

/// The name → solver mapping. Use [`SolverRegistry::global`].
pub struct SolverRegistry {
    entries: Vec<SolverEntry>,
}

impl SolverRegistry {
    /// The process-wide registry of every built-in solver.
    pub fn global() -> &'static SolverRegistry {
        static REGISTRY: OnceLock<SolverRegistry> = OnceLock::new();
        REGISTRY.get_or_init(SolverRegistry::builtin)
    }

    /// All entries, in the paper's presentation order — the single
    /// source of algorithm names for every driver.
    pub fn all(&self) -> &[SolverEntry] {
        &self.entries
    }

    /// Iterator over [`SolverRegistry::all`].
    pub fn entries(&self) -> impl Iterator<Item = &SolverEntry> {
        self.entries.iter()
    }

    /// Canonical names of every registered family.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.canonical).collect()
    }

    /// Every runnable (family × queue) instance: one solver per family,
    /// expanded over all three queues for families that read
    /// [`SolveOptions::pq`]. This is the full matrix the paper's
    /// evaluation sweeps; test drivers iterate it instead of keeping
    /// hand-listed vectors.
    pub fn instances(&self) -> Vec<Box<dyn Solver>> {
        let mut v: Vec<Box<dyn Solver>> = Vec::new();
        for entry in &self.entries {
            if entry.caps.uses_pq {
                for pq in PqKind::ALL {
                    v.push(entry.instantiate(Some(pq)));
                }
            } else {
                v.push(entry.instantiate(None));
            }
        }
        v
    }

    /// Looks up an entry by canonical name or alias (case-insensitive;
    /// `λ̂` may be spelled `l` or `lambda`).
    pub fn entry(&self, name: &str) -> Option<&SolverEntry> {
        let wanted = normalize(name);
        self.entries.iter().find(|e| {
            normalize(e.canonical) == wanted || e.aliases.iter().any(|a| normalize(a) == wanted)
        })
    }

    /// Resolves a name to a ready-to-run solver.
    ///
    /// Accepts canonical names (`NOIλ̂-VieCut`), aliases (`noi-viecut`)
    /// and queue-pinned spellings (`NOIλ̂-BStack-VieCut`, `noi-bqueue`):
    /// a `bstack`/`bqueue`/`heap` token anywhere in the name pins that
    /// queue for the run.
    pub fn resolve(&self, name: &str) -> Result<Box<dyn Solver>, MinCutError> {
        if let Some(e) = self.entry(name) {
            return Ok(e.instantiate(None));
        }
        // Queue-pinned spelling: strip the queue token, resolve the rest.
        let normalized = normalize(name);
        let mut pq = None;
        let stripped: Vec<&str> = normalized
            .split('-')
            .filter(|tok| match *tok {
                "bstack" => {
                    pq = Some(PqKind::BStack);
                    false
                }
                "bqueue" => {
                    pq = Some(PqKind::BQueue);
                    false
                }
                "heap" => {
                    pq = Some(PqKind::Heap);
                    false
                }
                _ => true,
            })
            .collect();
        if let Some(pin) = pq {
            if let Some(e) = self.entry(&stripped.join("-")) {
                if e.caps.uses_pq {
                    return Ok(e.instantiate(Some(pin)));
                }
            }
        }
        Err(MinCutError::UnknownSolver {
            name: name.to_string(),
            known: self.names().iter().map(|s| s.to_string()).collect(),
        })
    }

    fn builtin() -> Self {
        let entries = vec![
            SolverEntry {
                canonical: "NOI-HNSS",
                aliases: &["noi-hnss", "hnss"],
                summary: "NOI with an unbounded binary heap (Henzinger-Noe-Schulz-Strash baseline)",
                caps: caps_exact(false, false, true),
                ctor: |_| {
                    Box::new(NoiSolver {
                        bounded: false,
                        seed_with_viecut: false,
                        pinned_seed: None,
                        pin_pq: Some(PqKind::Heap),
                        family: "NOI-HNSS",
                    })
                },
            },
            SolverEntry {
                canonical: "NOI-CGKLS",
                aliases: &["noi-cgkls"],
                summary: "NOI comparator with deterministic start selection (Chekuri et al. style)",
                caps: caps_exact(false, false, true),
                ctor: |_| {
                    Box::new(NoiSolver {
                        bounded: false,
                        seed_with_viecut: false,
                        pinned_seed: Some(0),
                        pin_pq: Some(PqKind::Heap),
                        family: "NOI-CGKLS",
                    })
                },
            },
            SolverEntry {
                canonical: "NOI-HNSS-VieCut",
                aliases: &["noi-hnss-viecut"],
                summary: "NOI-HNSS seeded with the VieCut bound",
                caps: caps_exact(false, false, true),
                ctor: |_| {
                    Box::new(NoiSolver {
                        bounded: false,
                        seed_with_viecut: true,
                        pinned_seed: None,
                        pin_pq: Some(PqKind::Heap),
                        family: "NOI-HNSS-VieCut",
                    })
                },
            },
            SolverEntry {
                canonical: "NOIλ̂",
                aliases: &["noi", "noi-bounded"],
                summary: "NOI with priorities capped at λ̂ (§3.1.2); queue from options or name",
                caps: caps_exact(true, false, true),
                ctor: |pin| {
                    Box::new(NoiSolver {
                        bounded: true,
                        seed_with_viecut: false,
                        pinned_seed: None,
                        pin_pq: pin,
                        family: "NOIλ̂",
                    })
                },
            },
            SolverEntry {
                canonical: "NOIλ̂-VieCut",
                aliases: &["noi-viecut"],
                summary:
                    "NOIλ̂ seeded with the VieCut bound — the paper's fastest sequential variant",
                caps: caps_exact(true, false, true),
                ctor: |pin| {
                    Box::new(NoiSolver {
                        bounded: true,
                        seed_with_viecut: true,
                        pinned_seed: None,
                        pin_pq: pin,
                        family: "NOIλ̂-VieCut",
                    })
                },
            },
            SolverEntry {
                canonical: "ParCutλ̂",
                aliases: &["parcut"],
                summary: "Shared-memory parallel exact solver (Algorithm 2)",
                caps: Capabilities {
                    guarantee: Guarantee::Exact,
                    parallel: true,
                    witness: true,
                    uses_pq: true,
                    randomized_value: false,
                    uses_initial_bound: false,
                    kernelizable: true,
                },
                ctor: |pin| Box::new(ParCutSolver { pin_pq: pin }),
            },
            SolverEntry {
                canonical: "StoerWagner",
                aliases: &["stoer-wagner", "sw"],
                summary: "Stoer-Wagner comparator (n-1 maximum-adjacency phases)",
                caps: caps_exact(false, false, false),
                ctor: |_| Box::new(StoerWagnerSolver),
            },
            SolverEntry {
                canonical: "HO-CGKLS",
                aliases: &["hao-orlin", "ho"],
                summary: "Hao-Orlin flow-based comparator",
                caps: caps_exact(false, false, false),
                ctor: |_| Box::new(HaoOrlinSolver),
            },
            SolverEntry {
                canonical: "GomoryHu",
                aliases: &["gomory-hu"],
                summary: "Gomory-Hu cut tree (n-1 max-flows; yields all pairwise min cuts)",
                caps: caps_exact(false, false, false),
                ctor: |_| Box::new(GomoryHuSolver),
            },
            SolverEntry {
                canonical: "KargerStein",
                aliases: &["karger-stein", "ks"],
                summary: "Karger-Stein Monte-Carlo contraction (exact with high probability)",
                caps: Capabilities {
                    guarantee: Guarantee::MonteCarlo,
                    parallel: false,
                    witness: true,
                    uses_pq: false,
                    randomized_value: true,
                    uses_initial_bound: false,
                    kernelizable: true,
                },
                ctor: |_| Box::new(KargerSteinSolver),
            },
            SolverEntry {
                canonical: "VieCut",
                aliases: &["viecut"],
                summary: "Multilevel heuristic upper bound (usually exact in practice)",
                caps: Capabilities {
                    guarantee: Guarantee::UpperBound,
                    parallel: true,
                    witness: true,
                    uses_pq: false,
                    randomized_value: true,
                    uses_initial_bound: false,
                    kernelizable: true,
                },
                ctor: |_| Box::new(VieCutSolver),
            },
            SolverEntry {
                canonical: "Matula",
                aliases: &["matula"],
                summary: "Matula's (2+ε)-approximation in near-linear time (§5 extension)",
                caps: Capabilities {
                    guarantee: Guarantee::TwoPlusEpsilon,
                    parallel: false,
                    witness: true,
                    uses_pq: true,
                    randomized_value: true,
                    uses_initial_bound: false,
                    kernelizable: true,
                },
                ctor: |pin| Box::new(MatulaSolver { pin_pq: pin }),
            },
        ];
        SolverRegistry { entries }
    }
}

fn caps_exact(uses_pq: bool, parallel: bool, uses_initial_bound: bool) -> Capabilities {
    Capabilities {
        guarantee: Guarantee::Exact,
        parallel,
        witness: true,
        uses_pq,
        randomized_value: false,
        uses_initial_bound,
        kernelizable: true,
    }
}

/// Lowercases and canonicalizes `λ̂`/`λ` to `l` so that `NOIλ̂-VieCut`,
/// `noil-viecut` and `NOILAMBDA-VIECUT` all match.
fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'λ' => out.push('l'),
            '\u{0302}' => {} // combining circumflex of λ̂
            c => out.extend(c.to_lowercase()),
        }
    }
    // Collapse the long spelling.
    out.replace("lambda", "l")
}

// ---------------------------------------------------------------------
// Solver family implementations.
// ---------------------------------------------------------------------

struct NoiSolver {
    bounded: bool,
    seed_with_viecut: bool,
    /// `NOI-CGKLS` pins its seed for deterministic start selection.
    pinned_seed: Option<u64>,
    pin_pq: Option<PqKind>,
    family: &'static str,
}

impl NoiSolver {
    fn effective_pq(&self, opts: &SolveOptions) -> PqKind {
        self.pin_pq.unwrap_or(opts.pq)
    }
}

impl Solver for NoiSolver {
    fn name(&self) -> &'static str {
        self.family
    }

    fn capabilities(&self) -> Capabilities {
        caps_exact(self.bounded, false, true)
    }

    fn instance_name(&self, opts: &SolveOptions) -> String {
        if self.bounded {
            let pq = self.effective_pq(opts);
            if self.seed_with_viecut {
                format!("NOIλ̂-{pq}-VieCut")
            } else {
                format!("NOIλ̂-{pq}")
            }
        } else {
            self.family.to_string()
        }
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let seed = self.pinned_seed.unwrap_or(opts.seed);
        let mut initial_bound = opts.initial_bound.clone();
        if self.seed_with_viecut {
            let vc = ctx.stats.time_phase("viecut", |stats| {
                let mut inner = SolveContext {
                    stats,
                    deadline: ctx.deadline,
                    budget: ctx.budget,
                };
                viecut_connected(
                    g,
                    &VieCutConfig {
                        compute_side: opts.witness,
                        seed,
                        ..VieCutConfig::default()
                    },
                    &mut inner,
                )
            })?;
            let better = match &initial_bound {
                Some((b, _)) if *b <= vc.value => true,
                Some(_) | None => false,
            };
            if !better {
                initial_bound = Some((vc.value, vc.side));
            }
        }
        let cfg = NoiConfig {
            pq: self.effective_pq(opts),
            bounded: self.bounded,
            initial_bound,
            compute_side: opts.witness,
            seed,
        };
        ctx.stats.time_phase("noi", |stats| {
            let mut inner = SolveContext {
                stats,
                deadline: ctx.deadline,
                budget: ctx.budget,
            };
            noi_minimum_cut_connected(g, &cfg, &mut inner)
        })
    }
}

struct ParCutSolver {
    pin_pq: Option<PqKind>,
}

impl Solver for ParCutSolver {
    fn name(&self) -> &'static str {
        "ParCutλ̂"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            guarantee: Guarantee::Exact,
            parallel: true,
            witness: true,
            uses_pq: true,
            randomized_value: false,
            uses_initial_bound: false,
            kernelizable: true,
        }
    }

    fn instance_name(&self, opts: &SolveOptions) -> String {
        let pq = self.pin_pq.unwrap_or(opts.pq);
        format!("ParCutλ̂-{pq}(p={})", opts.threads)
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let cfg = ParCutConfig {
            pq: self.pin_pq.unwrap_or(opts.pq),
            threads: opts.threads,
            use_viecut: true,
            compute_side: opts.witness,
            seed: opts.seed,
        };
        parallel_minimum_cut_connected(g, &cfg, ctx)
    }
}

struct StoerWagnerSolver;

impl Solver for StoerWagnerSolver {
    fn name(&self) -> &'static str {
        "StoerWagner"
    }

    fn capabilities(&self) -> Capabilities {
        caps_exact(false, false, false)
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let mut r = stoer_wagner_connected(g, ctx)?;
        if !opts.witness {
            r.side = None;
        }
        Ok(r)
    }
}

struct HaoOrlinSolver;

impl Solver for HaoOrlinSolver {
    fn name(&self) -> &'static str {
        "HO-CGKLS"
    }

    fn capabilities(&self) -> Capabilities {
        caps_exact(false, false, false)
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        // The flow comparator runs monolithically in `mincut-flow`:
        // the budget is only enforceable before it starts.
        ctx.check_budget()?;
        let r = mincut_flow::hao_orlin(g);
        Ok(MinCutResult {
            value: r.value,
            side: opts.witness.then_some(r.side),
        })
    }
}

struct GomoryHuSolver;

impl Solver for GomoryHuSolver {
    fn name(&self) -> &'static str {
        "GomoryHu"
    }

    fn capabilities(&self) -> Capabilities {
        caps_exact(false, false, false)
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        // The tree construction (n-1 max-flows) runs monolithically in
        // `mincut-flow`: the budget is only enforceable before it starts.
        ctx.check_budget()?;
        let tree = mincut_flow::GomoryHuTree::build(g);
        let (value, side) = tree.global_min_cut();
        Ok(MinCutResult {
            value,
            side: opts.witness.then(|| side.to_vec()),
        })
    }
}

struct KargerSteinSolver;

impl Solver for KargerSteinSolver {
    fn name(&self) -> &'static str {
        "KargerStein"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            guarantee: Guarantee::MonteCarlo,
            parallel: false,
            witness: true,
            uses_pq: false,
            randomized_value: true,
            uses_initial_bound: false,
            kernelizable: true,
        }
    }

    fn instance_name(&self, opts: &SolveOptions) -> String {
        format!("KargerStein(r={})", opts.repetitions)
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let cfg = KargerSteinConfig {
            repetitions: opts.repetitions,
            seed: opts.seed,
            compute_side: opts.witness,
        };
        karger_stein_connected(g, &cfg, ctx)
    }
}

struct VieCutSolver;

impl Solver for VieCutSolver {
    fn name(&self) -> &'static str {
        "VieCut"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            guarantee: Guarantee::UpperBound,
            parallel: true,
            witness: true,
            uses_pq: false,
            randomized_value: true,
            uses_initial_bound: false,
            kernelizable: true,
        }
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let cfg = VieCutConfig {
            compute_side: opts.witness,
            seed: opts.seed,
            ..VieCutConfig::default()
        };
        viecut_connected(g, &cfg, ctx)
    }
}

struct MatulaSolver {
    pin_pq: Option<PqKind>,
}

impl Solver for MatulaSolver {
    fn name(&self) -> &'static str {
        "Matula"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            guarantee: Guarantee::TwoPlusEpsilon,
            parallel: false,
            witness: true,
            uses_pq: true,
            randomized_value: true,
            uses_initial_bound: false,
            kernelizable: true,
        }
    }

    fn instance_name(&self, opts: &SolveOptions) -> String {
        format!(
            "Matula(ε={}, {})",
            opts.epsilon,
            self.pin_pq.unwrap_or(opts.pq)
        )
    }

    fn run(
        &self,
        g: &CsrGraph,
        opts: &SolveOptions,
        ctx: &mut SolveContext<'_>,
    ) -> Result<MinCutResult, MinCutError> {
        let cfg = MatulaConfig {
            epsilon: opts.epsilon,
            pq: self.pin_pq.unwrap_or(opts.pq),
            seed: opts.seed,
            compute_side: opts.witness,
        };
        matula_approx_connected(g, &cfg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_aliases_and_pinned_spellings_resolve() {
        let r = SolverRegistry::global();
        for name in [
            "NOIλ̂-VieCut",
            "noi-viecut",
            "NOIl-VieCut",
            "noilambda-viecut",
            "NOI-HNSS",
            "hnss",
            "parcut",
            "ParCutλ̂",
            "stoer-wagner",
            "hao-orlin",
            "gomory-hu",
            "karger-stein",
            "viecut",
            "matula",
            "noi-bstack",
            "NOIλ̂-BQueue",
            "noi-heap-viecut",
            "NOIλ̂-BStack-VieCut",
            "parcut-bqueue",
        ] {
            assert!(r.resolve(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn unknown_names_error_with_known_list() {
        let err = SolverRegistry::global().resolve("nope").unwrap_err();
        match err {
            MinCutError::UnknownSolver { name, known } => {
                assert_eq!(name, "nope");
                assert!(known.iter().any(|k| k == "NOIλ̂-VieCut"));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn queue_pins_are_rejected_for_queue_free_families() {
        // Stoer-Wagner has no priority-queue knob: a queue-pinned
        // spelling must not silently resolve.
        assert!(SolverRegistry::global()
            .resolve("stoer-wagner-bstack")
            .is_err());
    }

    #[test]
    fn every_entry_instantiates_with_matching_name() {
        for e in SolverRegistry::global().entries() {
            let s = e.instantiate(None);
            assert_eq!(s.name(), e.canonical);
            assert_eq!(s.capabilities().guarantee, e.caps.guarantee);
        }
    }
}
