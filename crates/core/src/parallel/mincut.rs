//! Algorithm 2 of the paper: the full shared-memory parallel exact
//! minimum-cut solver (**ParCut**).
//!
//! ```text
//! λ̂ ← VieCut(G); G_C ← G
//! while G_C has more than 2 vertices:
//!     λ̂ ← Parallel CAPFOREST(G_C, λ̂)
//!     if no edges marked contractible:
//!         λ̂ ← CAPFOREST(G_C, λ̂)          (sequential rescue)
//!     G_C, λ̂ ← Parallel Graph Contract(G_C)
//! return λ̂
//! ```
//!
//! Early-terminating parallel scans cannot guarantee a marked edge
//! (§3.2: in the paper's experiments this only happens on graphs with
//! < 50 vertices); the rescue path runs one sequential CAPFOREST and, if
//! even that marks nothing (possible with a bounded queue), one
//! Stoer–Wagner phase, which always makes progress.

use mincut_ds::PqKind;
use mincut_graph::{ContractionEngine, CsrGraph, Membership, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::capforest::ScanWorkspace;
use crate::error::MinCutError;
use crate::parallel::capforest::{parallel_capforest_pooled, ParWorkerPool};
use crate::stats::{SolveContext, SolverStats};
use crate::stoer_wagner::stoer_wagner_phase;
use crate::viecut::{viecut_connected, VieCutConfig};
use crate::MinCutResult;

/// Configuration for [`parallel_minimum_cut`].
#[derive(Clone, Debug)]
pub struct ParCutConfig {
    /// Queue used by every worker (the paper's ParCutλ̂-BStack /
    /// ParCutλ̂-BQueue / ParCutλ̂-Heap; BQueue scales best, §4.3).
    pub pq: PqKind,
    /// Worker threads for the CAPFOREST rounds (rayon handles the
    /// contraction and VieCut data-parallel phases independently).
    pub threads: usize,
    /// Seed λ̂ with VieCut before the exact loop (§3.3). Disable to
    /// measure the contribution of the bound (ablation).
    pub use_viecut: bool,
    /// Track and return the cut side.
    pub compute_side: bool,
    /// RNG seed (start vertices, VieCut).
    pub seed: u64,
}

impl Default for ParCutConfig {
    fn default() -> Self {
        ParCutConfig {
            pq: PqKind::BQueue,
            threads: crate::options::hardware_threads(),
            use_viecut: true,
            compute_side: true,
            seed: 0xacc5,
        }
    }
}

/// Exact minimum cut, shared-memory parallel (Algorithm 2).
/// Requires n ≥ 2; handles disconnected inputs.
pub fn parallel_minimum_cut(g: &CsrGraph, cfg: &ParCutConfig) -> MinCutResult {
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    parallel_minimum_cut_instrumented(g, cfg, &mut ctx)
        .expect("ParCut without a time budget cannot fail")
}

/// [`parallel_minimum_cut`] feeding per-round telemetry (λ̂ trajectory,
/// contraction counts, rescue phases, worker PQ-operation totals) into
/// the [`SolveContext`] and honoring its time budget between rounds.
pub fn parallel_minimum_cut_instrumented(
    g: &CsrGraph,
    cfg: &ParCutConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        ctx.stats.record_lambda(0);
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return Ok(MinCutResult {
            value: 0,
            side: cfg.compute_side.then_some(side),
        });
    }
    parallel_minimum_cut_connected(g, cfg, ctx)
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both), skipping the redundant
/// component scan.
pub(crate) fn parallel_minimum_cut_connected(
    g: &CsrGraph,
    cfg: &ParCutConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(cfg.threads >= 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Initial bound: trivial degree cut, then VieCut (§3.1.1).
    let (dv, ddeg) = g.min_weighted_degree().expect("n >= 2");
    let mut lambda = ddeg;
    let mut best_side = cfg.compute_side.then(|| {
        let mut s = vec![false; g.n()];
        s[dv as usize] = true;
        s
    });
    if cfg.use_viecut {
        let vc = ctx.stats.time_phase("viecut", |stats| {
            let mut inner = SolveContext {
                stats,
                deadline: ctx.deadline,
                budget: ctx.budget,
            };
            viecut_connected(
                g,
                &VieCutConfig {
                    compute_side: cfg.compute_side,
                    seed: cfg.seed,
                    ..VieCutConfig::default()
                },
                &mut inner,
            )
        })?;
        if vc.value < lambda {
            lambda = vc.value;
            if cfg.compute_side {
                best_side = Some(vc.side.expect("requested"));
            }
        }
    }
    ctx.stats.record_lambda(lambda);

    let mut engine = ContractionEngine::new();
    let mut pool = ParWorkerPool::new();
    let mut rescue_ws = ScanWorkspace::new();
    let mut current = g.clone();
    // Witness bookkeeping only when a side is requested (as in NOI).
    let mut membership = Membership::identity(if cfg.compute_side { g.n() } else { 0 });

    while current.n() > 2 {
        ctx.check_budget()?;
        ctx.stats.rounds += 1;
        let mut round_span = mincut_obs::span("parcut/round");
        round_span.arg("round", ctx.stats.rounds);
        round_span.arg("n", current.n());
        round_span.arg("lambda_hat", lambda);
        round_span.arg("threads", cfg.threads);
        let out =
            parallel_capforest_pooled(&current, lambda, cfg.threads, cfg.seed, cfg.pq, &mut pool);
        ctx.stats.add_pq_ops(out.pq_ops);
        if out.lambda_hat < lambda {
            lambda = out.lambda_hat;
            ctx.stats.record_lambda(lambda);
            if cfg.compute_side {
                let prefix = out.best_prefix.as_deref().expect("improvement has witness");
                best_side = Some(membership.side_of_vertices(prefix));
            }
        }
        let cuf = out.cuf;

        let (labels, blocks) = if cuf.count() < current.n() {
            cuf.dense_labels()
        } else {
            // Rescue 1: one sequential CAPFOREST pass (Algorithm 2 line 5).
            let start = rng.gen_range(0..current.n() as NodeId);
            let seq = rescue_ws.scan(&current, lambda, start, PqKind::Heap, true);
            ctx.stats.add_pq_ops(rescue_ws.take_ops());
            if seq.lambda_hat < lambda {
                lambda = seq.lambda_hat;
                ctx.stats.record_lambda(lambda);
                if cfg.compute_side {
                    let len = seq.best_prefix_len.expect("improvement has witness");
                    best_side = Some(membership.side_of_vertices(&rescue_ws.order()[..len]));
                }
            }
            if seq.unions == 0 {
                // Rescue 2: a Stoer–Wagner phase always contracts safely.
                ctx.stats.sw_rescues += 1;
                let phase = stoer_wagner_phase(&current, start);
                if phase.cut_of_phase < lambda {
                    lambda = phase.cut_of_phase;
                    ctx.stats.record_lambda(lambda);
                    if cfg.compute_side {
                        best_side = Some(membership.side_of_vertices(&[phase.t]));
                    }
                }
                rescue_ws.uf_mut().union(phase.s, phase.t);
            }
            rescue_ws.uf_mut().dense_labels()
        };

        debug_assert!(blocks < current.n(), "every round must make progress");
        ctx.stats.contracted_vertices += (current.n() - blocks) as u64;
        let next = if cfg.compute_side {
            engine.contract_tracked(&current, &labels, blocks, &mut membership)
        } else {
            engine.contract(&current, &labels, blocks)
        };
        ctx.stats.record_contraction_path(engine.last_path());
        round_span.arg_display("path", engine.last_path());
        engine.recycle(std::mem::replace(&mut current, next));

        // Trivial cuts of the collapsed graph (§3.2).
        if let Some((v, d)) = current.min_weighted_degree() {
            if current.n() >= 2 && d < lambda {
                lambda = d;
                ctx.stats.record_lambda(lambda);
                if cfg.compute_side {
                    best_side = Some(membership.side_of_vertices(&[v]));
                }
            }
        }
    }

    Ok(MinCutResult {
        value: lambda,
        side: best_side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;
    use mincut_graph::EdgeWeight;

    fn all_configs(threads: usize) -> Vec<ParCutConfig> {
        let mut v = Vec::new();
        for pq in PqKind::ALL {
            for use_viecut in [true, false] {
                v.push(ParCutConfig {
                    pq,
                    threads,
                    use_viecut,
                    compute_side: true,
                    seed: 99,
                });
            }
        }
        v
    }

    fn check_all(g: &CsrGraph, expected: EdgeWeight, threads: usize) {
        for cfg in all_configs(threads) {
            let r = parallel_minimum_cut(g, &cfg);
            assert_eq!(r.value, expected, "value mismatch for {cfg:?}");
            let side = r.side.expect("witness requested");
            assert!(g.is_proper_cut(&side));
            assert_eq!(g.cut_value(&side), expected, "witness mismatch for {cfg:?}");
        }
    }

    #[test]
    fn known_families_single_thread() {
        check_all(&known::cycle_graph(12, 3).0, 6, 1);
        check_all(&known::grid_graph(5, 5, 1).0, 2, 1);
        let (g, l) = known::two_communities(8, 6, 2, 3, 1);
        check_all(&g, l, 1);
    }

    #[test]
    fn known_families_multi_thread() {
        let (g, l) = known::ring_of_cliques(6, 5, 3, 1);
        check_all(&g, l, 4);
        let (g, l) = known::two_communities(15, 15, 3, 2, 1);
        check_all(&g, l, 4);
        check_all(&known::grid_graph(8, 8, 2).0, 4, 4);
    }

    #[test]
    fn matches_sequential_noi_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31337);
        for trial in 0..15 {
            let n = rng.gen_range(20..60);
            let mut edges = Vec::new();
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..5)));
            }
            for _ in 0..3 * n {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..5)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let seq = crate::noi::noi_minimum_cut(&g, &crate::noi::NoiConfig::default());
            for threads in [1, 2, 4] {
                let par = parallel_minimum_cut(
                    &g,
                    &ParCutConfig {
                        threads,
                        seed: trial,
                        ..Default::default()
                    },
                );
                assert_eq!(par.value, seq.value, "trial {trial}, {threads} threads");
                assert_eq!(g.cut_value(&par.side.unwrap()), par.value);
            }
        }
    }

    #[test]
    fn disconnected_input() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 2), (2, 3, 2), (3, 4, 2)]);
        let r = parallel_minimum_cut(&g, &ParCutConfig::default());
        assert_eq!(r.value, 0);
        assert_eq!(g.cut_value(&r.side.unwrap()), 0);
    }

    #[test]
    fn tiny_graph() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 9)]);
        let r = parallel_minimum_cut(&g, &ParCutConfig::default());
        assert_eq!(r.value, 9);
    }
}
