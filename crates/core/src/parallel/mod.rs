//! The shared-memory parallel exact minimum cut (§3.2–3.3 of the paper):
//! [`capforest::parallel_capforest`] (Algorithm 1) grows disjoint scan
//! regions from random start vertices on every thread, marking
//! contractible edges in a shared concurrent union-find;
//! [`mincut::parallel_minimum_cut`] (Algorithm 2, **ParCut**) wraps it
//! with VieCut bounding, parallel contraction and the sequential fallback.

pub mod capforest;
pub mod mincut;

pub use capforest::{parallel_capforest, ParCapforestOutcome};
pub use mincut::{parallel_minimum_cut, ParCutConfig};
