//! Parallel CAPFOREST (Algorithm 1 of the paper).
//!
//! Every worker grows a scan region from a random start vertex, exactly
//! like sequential CAPFOREST but with three twists:
//!
//! * a shared visited array `T` ensures every vertex is *scanned by at most
//!   one worker* (we claim with an atomic swap; the paper tolerates benign
//!   duplicate visits without locking — the swap gives the same semantics
//!   race-free at negligible cost);
//! * a worker that pops a vertex already claimed elsewhere *blacklists* it
//!   locally and stops considering its edges — Lemma 3.2(3) shows the
//!   `q(e)` lower bounds stay valid because that is equivalent to running
//!   on the graph with all blacklisted vertices removed;
//! * contractible edges are marked in a *shared concurrent union-find*
//!   (Lemma 3.2(1): unions commute, so concurrent marking is equivalent to
//!   sequential), and λ̂ is a shared atomic lowered by CAS whenever a
//!   worker's region prefix is a better cut (stale reads of λ̂ only make
//!   the contraction test more conservative... or mark an edge whose
//!   connectivity is ≥ an *older, larger* bound — still ≥ λ ≥ any final
//!   result, see DESIGN.md "Key correctness decisions").
//!
//! When a region's queue empties, the worker restarts from a fresh
//! unclaimed vertex so that, as the paper requires, "after all processes
//! are finished, every vertex was visited exactly once".
//!
//! # Pooled worker state
//!
//! Each worker's hot state — `r` values, the epoch-stamped vertex states
//! (queued / scanned / blacklisted), the region buffer, and one
//! instrumented instance of every queue — lives in a [`ParWorkerState`]
//! owned by the driver's [`ParWorkerPool`] and *reused across contraction
//! rounds*: a round hands each spawned thread `&mut` to its slot, so
//! per-round cost is an epoch bump instead of O(n·threads) allocation and
//! zeroing. The per-worker PQ-operation tallies come straight from the
//! worker's own [`CountingPq`] (no thread-local counters).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use mincut_ds::{
    BQueuePq, BStackPq, BinaryHeapPq, ConcurrentUnionFind, CountingPq, MaxPq, PqCounters, PqKind,
};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::capforest::MAX_BUCKET_BOUND;

/// Outcome of one parallel CAPFOREST round.
pub struct ParCapforestOutcome {
    /// Shared union-find containing all marked contractions.
    pub cuf: ConcurrentUnionFind,
    /// Improved global bound (minimum over the input bound and every
    /// worker's proper region-prefix cuts).
    pub lambda_hat: EdgeWeight,
    /// Witness for `lambda_hat` if some worker improved it: the region
    /// prefix (vertices of the current graph) achieving the bound.
    pub best_prefix: Option<Vec<NodeId>>,
    /// Priority-queue operation totals summed over all workers (non-zero
    /// when `P` counts, i.e. when run through a `CountingPq`).
    pub pq_ops: PqCounters,
}

/// Atomically lowers `shared` to `value`; returns true if this call moved it.
fn fetch_min(shared: &AtomicU64, value: u64) -> bool {
    let mut cur = shared.load(Ordering::Acquire);
    while value < cur {
        match shared.compare_exchange_weak(cur, value, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Vertex states from one worker's point of view; meaningful only while
/// the worker's stamp matches its epoch (a stale stamp is the old
/// `Untouched`).
const QUEUED: u8 = 0;
const SCANNED: u8 = 1;
const BLACKLISTED: u8 = 2;

/// One worker's persistent scratch: SoA arrays stamped by an epoch that
/// advances once per round, plus the worker's queues.
pub struct ParWorkerState {
    /// Weight from v into this worker's region (valid iff stamped).
    r: Vec<EdgeWeight>,
    /// QUEUED / SCANNED / BLACKLISTED (valid iff stamped).
    state: Vec<u8>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Vertices of the worker's regions, in scan order.
    region: Vec<NodeId>,
    bstack: CountingPq<BStackPq>,
    bqueue: CountingPq<BQueuePq>,
    heap: CountingPq<BinaryHeapPq>,
}

impl Default for ParWorkerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ParWorkerState {
    pub fn new() -> Self {
        ParWorkerState {
            r: Vec::new(),
            state: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            region: Vec::new(),
            bstack: MaxPq::new(),
            bqueue: MaxPq::new(),
            heap: MaxPq::new(),
        }
    }

    fn begin_round(&mut self, n: usize) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.r.len() < n {
            self.r.resize(n, 0);
            self.state.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.region.clear();
    }
}

/// A driver-owned pool of per-worker state, reused across rounds.
#[derive(Default)]
pub struct ParWorkerPool {
    workers: Vec<ParWorkerState>,
}

impl ParWorkerPool {
    pub fn new() -> Self {
        ParWorkerPool {
            workers: Vec::new(),
        }
    }
}

/// Runs Algorithm 1 with `threads` workers pulling their state from
/// `pool` (grown on demand, reused across rounds). `lambda_hat` is the
/// current upper bound; the queue kind dispatches per round, falling back
/// to the heap when the bound exceeds the bucket range.
pub fn parallel_capforest_pooled(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    threads: usize,
    seed: u64,
    pq: PqKind,
    pool: &mut ParWorkerPool,
) -> ParCapforestOutcome {
    let n = g.n();
    assert!(threads >= 1);
    if pool.workers.len() < threads {
        pool.workers.resize_with(threads, ParWorkerState::new);
    }
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let cuf = ConcurrentUnionFind::new(n);
    let lambda = AtomicU64::new(lambda_hat);
    let claimed = AtomicUsize::new(0);
    // Shared restart cursor over the vertex range: when a worker's random
    // probes fail it sweeps this cursor to find an unclaimed start, which
    // also covers "the sparse regions of the graph which might otherwise
    // not be scanned by any process".
    let cursor = AtomicUsize::new(0);
    let use_heap = lambda_hat > MAX_BUCKET_BOUND;

    // Each worker returns (best_alpha, witness_region_prefix, pq_ops).
    let worker_best: Vec<(EdgeWeight, Option<Vec<NodeId>>, PqCounters)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = pool
                .workers
                .iter_mut()
                .take(threads)
                .enumerate()
                .map(|(tid, ws)| {
                    let visited = &visited;
                    let cuf = &cuf;
                    let lambda = &lambda;
                    let claimed = &claimed;
                    let cursor = &cursor;
                    let wseed = seed
                        .wrapping_add(tid as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    scope.spawn(move || {
                        // Per-worker span pinned to a named track: the
                        // scoped threads are fresh every round, so
                        // per-OS-thread tracks would multiply by round
                        // count; one stable lane per logical worker
                        // keeps the exported trace readable.
                        let mut _wsp = mincut_obs::span("parcut/worker-scan");
                        if _wsp.is_recording() {
                            _wsp.pin_track(mincut_obs::named_track(&format!(
                                "parcut-worker-{tid}"
                            )));
                        }
                        _wsp.arg("worker", tid);
                        _wsp.arg("n", n);
                        _wsp.arg("lambda_hat", lambda_hat);
                        ws.begin_round(n);
                        // Split the borrow: queues out of the scratch view.
                        let ParWorkerState {
                            r,
                            state,
                            stamp,
                            epoch,
                            region,
                            bstack,
                            bqueue,
                            heap,
                        } = ws;
                        let mut core = WorkerCore {
                            r,
                            state,
                            stamp,
                            epoch: *epoch,
                            region,
                        };
                        let mut run = |q: &mut dyn DynPq| {
                            worker(
                                g, lambda_hat, wseed, visited, cuf, lambda, claimed, cursor, q,
                                &mut core,
                            )
                        };
                        match pq {
                            PqKind::BStack if !use_heap => run(bstack),
                            PqKind::BQueue if !use_heap => run(bqueue),
                            _ => run(heap),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

    finish_round(worker_best, &lambda, lambda_hat, cuf)
}

/// Object-safe view of [`MaxPq`] for the per-round queue dispatch (the
/// inner loop still calls through concrete monomorphised queues when the
/// generic [`parallel_capforest`] entry point is used; here one virtual
/// call per queue op trades a negligible cost for not triplicating the
/// worker driver).
trait DynPq {
    fn reset(&mut self, n: usize, max_priority: u64);
    fn push(&mut self, v: u32, prio: u64);
    fn raise(&mut self, v: u32, prio: u64);
    fn pop_max(&mut self) -> Option<(u32, u64)>;
    fn priority(&self, v: u32) -> u64;
    fn take_ops(&mut self) -> PqCounters;
}

impl<P: MaxPq> DynPq for P {
    fn reset(&mut self, n: usize, max_priority: u64) {
        MaxPq::reset(self, n, max_priority);
    }
    fn push(&mut self, v: u32, prio: u64) {
        MaxPq::push(self, v, prio);
    }
    fn raise(&mut self, v: u32, prio: u64) {
        MaxPq::raise(self, v, prio);
    }
    fn pop_max(&mut self) -> Option<(u32, u64)> {
        MaxPq::pop_max(self)
    }
    fn priority(&self, v: u32) -> u64 {
        MaxPq::priority(self, v)
    }
    fn take_ops(&mut self) -> PqCounters {
        MaxPq::take_ops(self)
    }
}

/// Borrowed view of one worker's scratch for a single round.
struct WorkerCore<'a> {
    r: &'a mut [EdgeWeight],
    state: &'a mut [u8],
    stamp: &'a mut [u32],
    epoch: u32,
    region: &'a mut Vec<NodeId>,
}

/// Runs Algorithm 1 with `threads` workers of queue type `P`, allocating
/// fresh worker state per call. The pooled entry point
/// [`parallel_capforest_pooled`] is what the round loop of
/// [`crate::parallel::mincut`] uses; this generic variant remains for
/// tests and one-shot measurements.
pub fn parallel_capforest<P: MaxPq + Send>(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    threads: usize,
    seed: u64,
) -> ParCapforestOutcome {
    let n = g.n();
    assert!(threads >= 1);
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let cuf = ConcurrentUnionFind::new(n);
    let lambda = AtomicU64::new(lambda_hat);
    let claimed = AtomicUsize::new(0);
    let cursor = AtomicUsize::new(0);

    let worker_best: Vec<(EdgeWeight, Option<Vec<NodeId>>, PqCounters)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let visited = &visited;
                    let cuf = &cuf;
                    let lambda = &lambda;
                    let claimed = &claimed;
                    let cursor = &cursor;
                    let wseed = seed
                        .wrapping_add(tid as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    scope.spawn(move || {
                        let mut ws = ParWorkerState::new();
                        ws.begin_round(n);
                        let mut q = P::new();
                        let mut core = WorkerCore {
                            r: &mut ws.r,
                            state: &mut ws.state,
                            stamp: &mut ws.stamp,
                            epoch: ws.epoch,
                            region: &mut ws.region,
                        };
                        worker(
                            g, lambda_hat, wseed, visited, cuf, lambda, claimed, cursor, &mut q,
                            &mut core,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

    finish_round(worker_best, &lambda, lambda_hat, cuf)
}

fn finish_round(
    worker_best: Vec<(EdgeWeight, Option<Vec<NodeId>>, PqCounters)>,
    lambda: &AtomicU64,
    lambda_hat: EdgeWeight,
    cuf: ConcurrentUnionFind,
) -> ParCapforestOutcome {
    let final_lambda = lambda.load(Ordering::Acquire);
    let mut pq_ops = PqCounters::default();
    for (_, _, c) in &worker_best {
        pq_ops.add(*c);
    }
    let mut best_prefix = None;
    if final_lambda < lambda_hat {
        for (alpha, prefix, _) in worker_best {
            if alpha == final_lambda {
                best_prefix = prefix;
                break;
            }
        }
        debug_assert!(
            best_prefix.is_some(),
            "an improved bound must have a witnessing worker"
        );
    }
    ParCapforestOutcome {
        cuf,
        lambda_hat: final_lambda,
        best_prefix,
        pq_ops,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    g: &CsrGraph,
    initial_lambda: EdgeWeight,
    seed: u64,
    visited: &[AtomicBool],
    cuf: &ConcurrentUnionFind,
    lambda: &AtomicU64,
    claimed: &AtomicUsize,
    cursor: &AtomicUsize,
    q: &mut dyn DynPq,
    ws: &mut WorkerCore<'_>,
) -> (EdgeWeight, Option<Vec<NodeId>>, PqCounters) {
    let n = g.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let epoch = ws.epoch;
    // Bucket queues need the *initial* bound: λ̂ only decreases, so every
    // capped priority fits.
    q.reset(n, initial_lambda);

    let mut alpha: i128 = 0;
    let mut best_alpha = EdgeWeight::MAX;
    let mut best_len = 0usize;

    'outer: loop {
        // Find a fresh start vertex: a few random probes, then the cursor.
        let mut start = None;
        for _ in 0..16 {
            let v = rng.gen_range(0..n as NodeId);
            if !visited[v as usize].load(Ordering::Relaxed) {
                start = Some(v);
                break;
            }
        }
        if start.is_none() {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break 'outer;
                }
                if !visited[i].load(Ordering::Relaxed) {
                    start = Some(i as NodeId);
                    break;
                }
            }
        }
        let Some(start) = start else { break };
        if ws.stamp[start as usize] == epoch {
            continue; // we already processed it ourselves; try again
        }
        q.push(start, 0);
        ws.stamp[start as usize] = epoch;
        ws.state[start as usize] = QUEUED;
        ws.r[start as usize] = 0;

        while let Some((x, _)) = q.pop_max() {
            let xi = x as usize;
            // Claim or blacklist (Algorithm 1 lines 9–13, with an atomic
            // swap so "visited exactly once" holds without locking).
            if visited[xi].swap(true, Ordering::AcqRel) {
                ws.state[xi] = BLACKLISTED;
                continue;
            }
            ws.state[xi] = SCANNED;
            claimed.fetch_add(1, Ordering::Relaxed);
            ws.region.push(x);
            // Lines 14–15: the cut between this worker's region and the
            // rest; only proper subsets count.
            alpha += g.weighted_degree(x) as i128 - 2 * ws.r[xi] as i128;
            debug_assert!(alpha >= 0);
            if (ws.region.len() as u64) < n as u64 && (alpha as u64) < best_alpha {
                // Proper subset? The region is a subset of the claimed set;
                // it equals V only if this worker claimed everything.
                if ws.region.len() < n {
                    best_alpha = alpha as u64;
                    best_len = ws.region.len();
                    fetch_min(lambda, best_alpha);
                }
            }

            let lam_now = lambda.load(Ordering::Relaxed);
            // Same lookahead-prefetch walk as the sequential scan
            // (capforest.rs): the per-worker r/stamp lookups are the
            // latency-bound accesses; arc order — and with it the queue
            // operation stream — is unchanged.
            let (nbrs, wts) = g.arc_slices(x);
            const LOOKAHEAD: usize = 8;
            for j in 0..nbrs.len() {
                if let Some(&ahead) = nbrs.get(j + LOOKAHEAD) {
                    mincut_ds::simd::prefetch_read(ws.stamp, ahead as usize);
                    mincut_ds::simd::prefetch_read(ws.r, ahead as usize);
                }
                let (y, w) = (nbrs[j], wts[j]);
                let yi = y as usize;
                let fresh = ws.stamp[yi] != epoch;
                if !fresh && ws.state[yi] != QUEUED {
                    continue; // scanned by us or blacklisted (line 16)
                }
                let ry = if fresh { 0 } else { ws.r[yi] };
                // Line 17: the connectivity certificate crosses λ̂.
                if ry < lam_now && lam_now <= ry + w {
                    cuf.union(x, y);
                }
                ws.r[yi] = ry + w;
                let prio = (ry + w).min(lam_now).min(initial_lambda);
                if fresh {
                    q.push(y, prio);
                    ws.stamp[yi] = epoch;
                    ws.state[yi] = QUEUED;
                } else {
                    // y is still queued; keep the key monotone.
                    if prio > q.priority(y) {
                        q.raise(y, prio);
                    }
                }
            }
        }
        if claimed.load(Ordering::Relaxed) >= n {
            break;
        }
    }

    let witness = (best_alpha != EdgeWeight::MAX).then(|| ws.region[..best_len].to_vec());
    (best_alpha, witness, q.take_ops())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn run<P: MaxPq + Send>(g: &CsrGraph, lh: EdgeWeight, threads: usize) -> ParCapforestOutcome {
        parallel_capforest::<P>(g, lh, threads, 12345)
    }

    #[test]
    fn every_vertex_claimed_once() {
        let (g, _) = known::grid_graph(16, 16, 1);
        for threads in [1, 2, 4] {
            let out = run::<BQueuePq>(&g, g.min_weighted_degree().unwrap().1, threads);
            // The union-find exists over all vertices; claiming is internal,
            // but the observable invariant is: λ̂ never below λ = 2.
            assert!(out.lambda_hat >= 2);
        }
    }

    #[test]
    fn lambda_never_below_true_minimum() {
        let (g, lambda) = known::two_communities(12, 12, 2, 2, 1);
        for threads in [1, 2, 4] {
            for _ in 0..3 {
                let out = run::<BinaryHeapPq>(&g, g.min_weighted_degree().unwrap().1, threads);
                assert!(out.lambda_hat >= lambda);
                if let Some(prefix) = &out.best_prefix {
                    let mut side = vec![false; g.n()];
                    for &v in prefix {
                        side[v as usize] = true;
                    }
                    assert_eq!(g.cut_value(&side), out.lambda_hat, "witness must be exact");
                }
            }
        }
    }

    #[test]
    fn marked_edges_have_high_connectivity() {
        // On two dense cliques joined weakly, no cross edge may be marked.
        let (g, _) = known::two_communities(10, 10, 2, 4, 1);
        for threads in [1, 2, 4] {
            let out = run::<BStackPq>(&g, g.min_weighted_degree().unwrap().1, threads);
            for u in 0..10u32 {
                for v in 10..20u32 {
                    assert!(
                        !out.cuf.same(u, v),
                        "cross-clique pair ({u},{v}) must not be united ({threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_claims_whole_connected_graph() {
        let (g, _) = known::cycle_graph(64, 1);
        let out = run::<BinaryHeapPq>(&g, 2, 1);
        // λ̂ = 2 is the true minimum; prefix cuts cannot beat it.
        assert_eq!(out.lambda_hat, 2);
    }

    #[test]
    fn disconnected_graph_reports_zero_bound() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 3), (1, 2, 3), (3, 4, 3), (4, 5, 3)]);
        let out = run::<BinaryHeapPq>(&g, 100, 2);
        // Some worker's region closes at a full component: a zero cut.
        assert_eq!(out.lambda_hat, 0);
        let prefix = out.best_prefix.expect("witness for the improvement");
        let mut side = vec![false; g.n()];
        for &v in prefix.iter() {
            side[v as usize] = true;
        }
        assert_eq!(g.cut_value(&side), 0);
    }

    #[test]
    fn pooled_rounds_match_fresh_state_at_one_thread() {
        // With one worker the round is deterministic, so a pooled pool
        // re-run must be op-for-op identical to fresh per-call state —
        // across several rounds and queue kinds, proving no state leaks
        // between epochs.
        let mut pool = ParWorkerPool::new();
        let graphs = [
            known::grid_graph(9, 9, 2).0,
            known::two_communities(12, 13, 2, 3, 1).0,
            known::cycle_graph(50, 4).0,
        ];
        for round in 0..3 {
            for g in &graphs {
                let bound = g.min_weighted_degree().unwrap().1;
                for pq in PqKind::ALL {
                    let pooled = parallel_capforest_pooled(g, bound, 1, 777, pq, &mut pool);
                    let fresh = match pq {
                        PqKind::BStack => {
                            parallel_capforest::<CountingPq<BStackPq>>(g, bound, 1, 777)
                        }
                        PqKind::BQueue => {
                            parallel_capforest::<CountingPq<BQueuePq>>(g, bound, 1, 777)
                        }
                        PqKind::Heap => {
                            parallel_capforest::<CountingPq<BinaryHeapPq>>(g, bound, 1, 777)
                        }
                    };
                    assert_eq!(pooled.lambda_hat, fresh.lambda_hat, "round {round}");
                    assert_eq!(pooled.best_prefix, fresh.best_prefix);
                    assert_eq!(pooled.pq_ops, fresh.pq_ops);
                    assert_eq!(pooled.cuf.count(), fresh.cuf.count());
                }
            }
        }
    }
}
