//! Parallel CAPFOREST (Algorithm 1 of the paper).
//!
//! Every worker grows a scan region from a random start vertex, exactly
//! like sequential CAPFOREST but with three twists:
//!
//! * a shared visited array `T` ensures every vertex is *scanned by at most
//!   one worker* (we claim with an atomic swap; the paper tolerates benign
//!   duplicate visits without locking — the swap gives the same semantics
//!   race-free at negligible cost);
//! * a worker that pops a vertex already claimed elsewhere *blacklists* it
//!   locally and stops considering its edges — Lemma 3.2(3) shows the
//!   `q(e)` lower bounds stay valid because that is equivalent to running
//!   on the graph with all blacklisted vertices removed;
//! * contractible edges are marked in a *shared concurrent union-find*
//!   (Lemma 3.2(1): unions commute, so concurrent marking is equivalent to
//!   sequential), and λ̂ is a shared atomic lowered by CAS whenever a
//!   worker's region prefix is a better cut (stale reads of λ̂ only make
//!   the contraction test more conservative... or mark an edge whose
//!   connectivity is ≥ an *older, larger* bound — still ≥ λ ≥ any final
//!   result, see DESIGN.md "Key correctness decisions").
//!
//! When a region's queue empties, the worker restarts from a fresh
//! unclaimed vertex so that, as the paper requires, "after all processes
//! are finished, every vertex was visited exactly once".

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use mincut_ds::{take_counters, ConcurrentUnionFind, MaxPq, PqCounters};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of one parallel CAPFOREST round.
pub struct ParCapforestOutcome {
    /// Shared union-find containing all marked contractions.
    pub cuf: ConcurrentUnionFind,
    /// Improved global bound (minimum over the input bound and every
    /// worker's proper region-prefix cuts).
    pub lambda_hat: EdgeWeight,
    /// Witness for `lambda_hat` if some worker improved it: the region
    /// prefix (vertices of the current graph) achieving the bound.
    pub best_prefix: Option<Vec<NodeId>>,
    /// Priority-queue operation totals summed over all workers (non-zero
    /// when `P` counts, i.e. when run through a `CountingPq`).
    pub pq_ops: PqCounters,
}

/// Atomically lowers `shared` to `value`; returns true if this call moved it.
fn fetch_min(shared: &AtomicU64, value: u64) -> bool {
    let mut cur = shared.load(Ordering::Acquire);
    while value < cur {
        match shared.compare_exchange_weak(cur, value, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Runs Algorithm 1 with `threads` workers. `lambda_hat` is the current
/// upper bound (bucket queues size their arrays from it). Returns the
/// shared union-find, the possibly improved bound and its witness.
pub fn parallel_capforest<P: MaxPq + Send>(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    threads: usize,
    seed: u64,
) -> ParCapforestOutcome {
    let n = g.n();
    assert!(threads >= 1);
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let cuf = ConcurrentUnionFind::new(n);
    let lambda = AtomicU64::new(lambda_hat);
    let claimed = AtomicUsize::new(0);
    // Shared restart cursor over the vertex range: when a worker's random
    // probes fail it sweeps this cursor to find an unclaimed start, which
    // also covers "the sparse regions of the graph which might otherwise
    // not be scanned by any process".
    let cursor = AtomicUsize::new(0);

    // Each worker returns (best_alpha, witness_region_prefix, pq_ops).
    let worker_best: Vec<(EdgeWeight, Option<Vec<NodeId>>, PqCounters)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let visited = &visited;
                    let cuf = &cuf;
                    let lambda = &lambda;
                    let claimed = &claimed;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        worker::<P>(
                            g,
                            lambda_hat,
                            seed.wrapping_add(tid as u64)
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                            visited,
                            cuf,
                            lambda,
                            claimed,
                            cursor,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

    let final_lambda = lambda.load(Ordering::Acquire);
    let mut pq_ops = PqCounters::default();
    for (_, _, c) in &worker_best {
        pq_ops.pushes += c.pushes;
        pq_ops.raises += c.raises;
        pq_ops.pops += c.pops;
    }
    let mut best_prefix = None;
    if final_lambda < lambda_hat {
        for (alpha, prefix, _) in worker_best {
            if alpha == final_lambda {
                best_prefix = prefix;
                break;
            }
        }
        debug_assert!(
            best_prefix.is_some(),
            "an improved bound must have a witnessing worker"
        );
    }
    ParCapforestOutcome {
        cuf,
        lambda_hat: final_lambda,
        best_prefix,
        pq_ops,
    }
}

/// State of a vertex from one worker's point of view.
#[derive(Clone, Copy, PartialEq)]
enum Local {
    Untouched,
    /// Scanned by this worker (a member of its region).
    Scanned,
    /// Popped but already claimed by another worker (the paper's B set).
    Blacklisted,
}

#[allow(clippy::too_many_arguments)]
fn worker<P: MaxPq>(
    g: &CsrGraph,
    initial_lambda: EdgeWeight,
    seed: u64,
    visited: &[AtomicBool],
    cuf: &ConcurrentUnionFind,
    lambda: &AtomicU64,
    claimed: &AtomicUsize,
    cursor: &AtomicUsize,
) -> (EdgeWeight, Option<Vec<NodeId>>, PqCounters) {
    let n = g.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut r = vec![0 as EdgeWeight; n];
    let mut local = vec![Local::Untouched; n];
    let mut in_queue_epoch = vec![false; n];
    let mut q = P::new();
    // Bucket queues need the *initial* bound: λ̂ only decreases, so every
    // capped priority fits.
    q.reset(n, initial_lambda);

    let mut region: Vec<NodeId> = Vec::new();
    let mut alpha: i128 = 0;
    let mut best_alpha = EdgeWeight::MAX;
    let mut best_len = 0usize;

    'outer: loop {
        // Find a fresh start vertex: a few random probes, then the cursor.
        let mut start = None;
        for _ in 0..16 {
            let v = rng.gen_range(0..n as NodeId);
            if !visited[v as usize].load(Ordering::Relaxed) {
                start = Some(v);
                break;
            }
        }
        if start.is_none() {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break 'outer;
                }
                if !visited[i].load(Ordering::Relaxed) {
                    start = Some(i as NodeId);
                    break;
                }
            }
        }
        let Some(start) = start else { break };
        if local[start as usize] != Local::Untouched || in_queue_epoch[start as usize] {
            continue; // we already processed it ourselves; try again
        }
        q.push(start, 0);
        in_queue_epoch[start as usize] = true;

        while let Some((x, _)) = q.pop_max() {
            let xi = x as usize;
            // Claim or blacklist (Algorithm 1 lines 9–13, with an atomic
            // swap so "visited exactly once" holds without locking).
            if visited[xi].swap(true, Ordering::AcqRel) {
                local[xi] = Local::Blacklisted;
                continue;
            }
            local[xi] = Local::Scanned;
            claimed.fetch_add(1, Ordering::Relaxed);
            region.push(x);
            // Lines 14–15: the cut between this worker's region and the
            // rest; only proper subsets count.
            alpha += g.weighted_degree(x) as i128 - 2 * r[xi] as i128;
            debug_assert!(alpha >= 0);
            if (region.len() as u64) < n as u64 && (alpha as u64) < best_alpha {
                // Proper subset? The region is a subset of the claimed set;
                // it equals V only if this worker claimed everything.
                if region.len() < n {
                    best_alpha = alpha as u64;
                    best_len = region.len();
                    fetch_min(lambda, best_alpha);
                }
            }

            let lam_now = lambda.load(Ordering::Relaxed);
            for (y, w) in g.arcs(x) {
                let yi = y as usize;
                if local[yi] != Local::Untouched {
                    continue; // scanned by us or blacklisted (line 16)
                }
                let ry = r[yi];
                // Line 17: the connectivity certificate crosses λ̂.
                if ry < lam_now && lam_now <= ry + w {
                    cuf.union(x, y);
                }
                r[yi] = ry + w;
                let prio = (ry + w).min(lam_now).min(initial_lambda);
                if in_queue_epoch[yi] {
                    // y is still queued (a popped y would have left the
                    // Untouched state and been skipped above); keep the key
                    // monotone.
                    if q.contains(y) && prio > q.priority(y) {
                        q.raise(y, prio);
                    }
                } else {
                    q.push(y, prio);
                    in_queue_epoch[yi] = true;
                }
            }
        }
        if claimed.load(Ordering::Relaxed) >= n {
            break;
        }
    }

    let witness = (best_alpha != EdgeWeight::MAX).then(|| region[..best_len].to_vec());
    // Each worker thread owns fresh thread-local PQ counters; harvesting
    // them here lets the driver report totals across the round.
    (best_alpha, witness, take_counters())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq};
    use mincut_graph::generators::known;

    fn run<P: MaxPq + Send>(g: &CsrGraph, lh: EdgeWeight, threads: usize) -> ParCapforestOutcome {
        parallel_capforest::<P>(g, lh, threads, 12345)
    }

    #[test]
    fn every_vertex_claimed_once() {
        let (g, _) = known::grid_graph(16, 16, 1);
        for threads in [1, 2, 4] {
            let out = run::<BQueuePq>(&g, g.min_weighted_degree().unwrap().1, threads);
            // The union-find exists over all vertices; claiming is internal,
            // but the observable invariant is: λ̂ never below λ = 2.
            assert!(out.lambda_hat >= 2);
        }
    }

    #[test]
    fn lambda_never_below_true_minimum() {
        let (g, lambda) = known::two_communities(12, 12, 2, 2, 1);
        for threads in [1, 2, 4] {
            for _ in 0..3 {
                let out = run::<BinaryHeapPq>(&g, g.min_weighted_degree().unwrap().1, threads);
                assert!(out.lambda_hat >= lambda);
                if let Some(prefix) = &out.best_prefix {
                    let mut side = vec![false; g.n()];
                    for &v in prefix {
                        side[v as usize] = true;
                    }
                    assert_eq!(g.cut_value(&side), out.lambda_hat, "witness must be exact");
                }
            }
        }
    }

    #[test]
    fn marked_edges_have_high_connectivity() {
        // On two dense cliques joined weakly, no cross edge may be marked.
        let (g, _) = known::two_communities(10, 10, 2, 4, 1);
        for threads in [1, 2, 4] {
            let out = run::<BStackPq>(&g, g.min_weighted_degree().unwrap().1, threads);
            for u in 0..10u32 {
                for v in 10..20u32 {
                    assert!(
                        !out.cuf.same(u, v),
                        "cross-clique pair ({u},{v}) must not be united ({threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_claims_whole_connected_graph() {
        let (g, _) = known::cycle_graph(64, 1);
        let out = run::<BinaryHeapPq>(&g, 2, 1);
        // λ̂ = 2 is the true minimum; prefix cuts cannot beat it.
        assert_eq!(out.lambda_hat, 2);
    }

    #[test]
    fn disconnected_graph_reports_zero_bound() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 3), (1, 2, 3), (3, 4, 3), (4, 5, 3)]);
        let out = run::<BinaryHeapPq>(&g, 100, 2);
        // Some worker's region closes at a full component: a zero cut.
        assert_eq!(out.lambda_hat, 0);
        let prefix = out.best_prefix.expect("witness for the improvement");
        let mut side = vec![false; g.n()];
        for &v in prefix.iter() {
            side[v as usize] = true;
        }
        assert_eq!(g.cut_value(&side), 0);
    }
}
