//! Assembling the cactus from the enumerated minimum-cut family.
//!
//! The construction is the classical Dinitz–Karzanov–Lomonosov structure
//! run in reverse: instead of deriving the family from the cactus, the
//! builder derives the cactus from the family (which
//! [`enumerate::all_min_cuts`](super::enumerate::all_min_cuts) hands it
//! output-sensitively) and then *proves* the round trip by re-enumerating
//! the built structure's 2-cuts and comparing. The steps:
//!
//! 1. **Classes.** Vertices never separated by any minimum cut form one
//!    class ([`mincut_graph::signature_classes`]); every cut is a union
//!    of classes, and the classes become the vertex contents of the
//!    cactus nodes. Cuts are kept canonical — the class of vertex 0
//!    (class 0, the *root class*) is always outside.
//! 2. **Crossing components.** Two cuts cross when neither side relation
//!    holds and they intersect (the fourth quadrant is free: it holds
//!    the root class). Connected components of the crossing relation
//!    with ≥ 2 cuts generate the cycles.
//! 3. **Circular partitions.** The cuts of one crossing component
//!    refine the classes into m ≥ 4 *parts* which admit a circular
//!    order in which the component's cuts are exactly the unions of
//!    circularly-consecutive parts; two parts are adjacent iff their
//!    union (or its complement, when the root part is involved) is
//!    itself a minimum cut. Each part then has exactly two neighbours.
//! 4. **Interval marking.** Cuts that are consecutive-part unions of
//!    some component are represented by a cycle edge pair; everything
//!    else is a *tree cut*, represented by a bridge. (Single parts and
//!    the union of all non-root parts are intervals that cross nothing,
//!    so the check runs for singleton components too.)
//! 5. **Laminar forest.** Non-root parts and tree-cut sides form a
//!    laminar family; its forest (by containment) gives the cactus
//!    skeleton: one node per laminar set (vertex content = its classes
//!    minus its children's), a root node for the classes under no set,
//!    bridges to parents for tree cuts, and one cycle per crossing
//!    component threading the part nodes in circular order with the
//!    parts' common laminar parent standing in for the root part.
//!
//! The final bijection check (`structure 2-cuts == family`) is a hard
//! assertion, not a debug assertion: it is the subsystem's contract and
//! costs one extra output-sensitive enumeration.

use std::collections::HashMap;
use std::time::Instant;

use mincut_graph::components::connected_components;
use mincut_graph::{signature_classes, CsrGraph, EdgeWeight, NodeId};

use super::enumerate::all_min_cuts;
use super::{Cactus, CactusEdge};
use crate::error::MinCutError;
use crate::registry::SolverRegistry;
use crate::stats::CactusStats;
use crate::SolveOptions;

/// Builds a [`Cactus`] for a graph, obtaining λ through the solver
/// registry (kernelization pipeline included) or taking it as given.
///
/// ```
/// use mincut_core::cactus::CactusBuilder;
/// use mincut_graph::generators::known;
///
/// let (g, l) = known::two_communities(5, 5, 1, 2, 1);
/// let cactus = CactusBuilder::new().solver("noi").build(&g).unwrap();
/// assert_eq!(cactus.lambda(), l);
/// assert_eq!(cactus.count_min_cuts(), 1); // the unique bridge cut
/// ```
#[derive(Clone, Debug)]
pub struct CactusBuilder {
    solver: String,
    opts: SolveOptions,
}

impl Default for CactusBuilder {
    fn default() -> Self {
        CactusBuilder::new()
    }
}

impl CactusBuilder {
    /// A builder using the paper's fastest sequential configuration
    /// (`noi-viecut`) to discover λ.
    pub fn new() -> Self {
        CactusBuilder {
            solver: "noi-viecut".to_string(),
            opts: SolveOptions::new(),
        }
    }

    /// Selects the registered solver used to discover λ. The solver must
    /// be exact — an inexact λ would make the enumeration assert.
    pub fn solver(mut self, name: &str) -> Self {
        self.solver = name.to_string();
        self
    }

    /// Options passed to the λ solve (seed, threads, reductions, …).
    pub fn options(mut self, opts: SolveOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Solves for λ, then builds the cactus of every minimum cut.
    pub fn build(&self, g: &CsrGraph) -> Result<Cactus, MinCutError> {
        let solver = SolverRegistry::global().resolve(&self.solver)?;
        if !solver.capabilities().guarantee.is_exact() {
            return Err(MinCutError::InvalidOptions {
                message: format!(
                    "cactus construction needs an exact solver; {:?} is inexact",
                    self.solver
                ),
            });
        }
        let t0 = Instant::now();
        let out = solver.solve(g, &self.opts)?;
        self.build_inner(g, out.cut.value, t0.elapsed().as_secs_f64())
    }

    /// Builds the cactus from a *known* λ — no solver run. This is the
    /// rebuild path of the dynamic maintenance, where λ is already
    /// maintained exactly. `lambda` must equal λ(g); the enumeration
    /// asserts if it does not.
    pub fn build_with_lambda(
        &self,
        g: &CsrGraph,
        lambda: EdgeWeight,
    ) -> Result<Cactus, MinCutError> {
        self.build_inner(g, lambda, 0.0)
    }

    fn build_inner(
        &self,
        g: &CsrGraph,
        lambda: EdgeWeight,
        solve_seconds: f64,
    ) -> Result<Cactus, MinCutError> {
        let n = g.n();
        if n < 2 {
            return Err(MinCutError::TooFewVertices { n });
        }
        let mut stats = CactusStats {
            n,
            m: g.m(),
            lambda,
            solve_seconds,
            ..CactusStats::default()
        };

        if lambda == 0 {
            // Disconnected: the family is the power set of the
            // components; store the component structure directly.
            let t0 = Instant::now();
            let (comp_of, c) = connected_components(g);
            debug_assert!(c >= 2, "λ = 0 on a connected graph");
            let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); c];
            for (v, &comp) in comp_of.iter().enumerate() {
                nodes[comp as usize].push(v as NodeId);
            }
            stats.classes = c;
            stats.build_seconds = t0.elapsed().as_secs_f64();
            return Ok(Cactus::new(
                0,
                n,
                comp_of,
                nodes,
                Vec::new(),
                Vec::new(),
                c,
                stats,
            ));
        }

        let t0 = Instant::now();
        let cuts = all_min_cuts(g, lambda);
        stats.enumerate_seconds = t0.elapsed().as_secs_f64();
        stats.cuts = cuts.len() as u64;
        assert!(!cuts.is_empty(), "a λ > 0 graph has at least one min cut");

        let t1 = Instant::now();
        let cactus = assemble(n, lambda, &cuts, stats.clone());

        // The subsystem's contract: the 2-cuts of the built structure
        // are exactly the enumerated family. Always on — every query
        // answered later relies on this bijection.
        let structural = cactus.enumerate_min_cuts(usize::MAX);
        assert_eq!(
            structural.len() as u128,
            cactus.count_min_cuts(),
            "structure count disagrees with its own enumeration"
        );
        assert_eq!(
            structural, cuts,
            "cactus 2-cuts must biject with the minimum-cut family"
        );
        let mut cactus = cactus;
        cactus.stats_mut().build_seconds = t1.elapsed().as_secs_f64();
        Ok(cactus)
    }
}

/// Fixed-width bitset over the class universe; the currency of the
/// assembly (cuts, parts and laminar sets are all class sets).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Bits {
    blocks: Vec<u64>,
    k: usize,
}

impl Bits {
    fn empty(k: usize) -> Self {
        Bits {
            blocks: vec![0; k.div_ceil(64)],
            k,
        }
    }

    fn set(&mut self, i: usize) {
        self.blocks[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    fn intersects(&self, o: &Bits) -> bool {
        self.blocks.iter().zip(&o.blocks).any(|(a, b)| a & b != 0)
    }

    fn is_subset(&self, o: &Bits) -> bool {
        self.blocks.iter().zip(&o.blocks).all(|(a, b)| a & !b == 0)
    }

    fn union(&self, o: &Bits) -> Bits {
        Bits {
            blocks: self
                .blocks
                .iter()
                .zip(&o.blocks)
                .map(|(a, b)| a | b)
                .collect(),
            k: self.k,
        }
    }

    /// Complement within the k-class universe (tail bits stay clear so
    /// equality and hashing stay canonical).
    fn complement(&self) -> Bits {
        let mut blocks: Vec<u64> = self.blocks.iter().map(|b| !b).collect();
        let tail = self.k % 64;
        if tail != 0 {
            *blocks.last_mut().unwrap() &= (1 << tail) - 1;
        }
        Bits { blocks, k: self.k }
    }

    fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.k).filter(|&i| self.get(i))
    }
}

/// One crossing component after step 3: its circular partition.
struct Circular {
    /// Laminar-entry ids of the parts in circular order; `None` marks
    /// the root part's position.
    order_entries: Vec<Option<usize>>,
}

/// Steps 1–5 of the module docs: family → tree of cycles. Also the
/// engine of [`repair`](super::repair): the incremental repair paths
/// derive the post-update family from the old structure and reassemble
/// it here, skipping the n−1 max flows of a full enumeration.
pub(crate) fn assemble(
    n: usize,
    lambda: EdgeWeight,
    cuts: &[Vec<bool>],
    mut stats: CactusStats,
) -> Cactus {
    // Step 1: classes.
    let (class_of, k) = signature_classes(n, cuts.iter().map(|s| s.as_slice()));
    stats.classes = k;
    let mut class_vertices: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (v, &cl) in class_of.iter().enumerate() {
        class_vertices[cl as usize].push(v as NodeId);
    }
    let cut_sets: Vec<Bits> = cuts
        .iter()
        .map(|side| {
            let mut b = Bits::empty(k);
            for (v, &s) in side.iter().enumerate() {
                if s {
                    b.set(class_of[v] as usize);
                }
            }
            b
        })
        .collect();
    let set_index: HashMap<&Bits, usize> = cut_sets.iter().zip(0..).collect();

    // Step 2: crossing components (union-find with path halving).
    let mut parent: Vec<usize> = (0..cuts.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..cut_sets.len() {
        for j in i + 1..cut_sets.len() {
            let (a, b) = (&cut_sets[i], &cut_sets[j]);
            if a.intersects(b) && !a.is_subset(b) && !b.is_subset(a) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut comp_cuts: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..cut_sets.len() {
        let r = find(&mut parent, i);
        comp_cuts.entry(r).or_default().push(i);
    }
    let mut crossing: Vec<Vec<usize>> = comp_cuts.into_values().filter(|v| v.len() >= 2).collect();
    crossing.sort(); // HashMap order is not deterministic; cut ids are.

    // Step 3: circular partition of each crossing component.
    // part_sets[c] = the parts (class sets) of component c, part 0 = root
    // part; order[c] = part ids in circular order starting at the root.
    let mut part_sets: Vec<Vec<Bits>> = Vec::new();
    let mut orders: Vec<Vec<usize>> = Vec::new();
    for comp in &crossing {
        let class_sides: Vec<Vec<bool>> = comp
            .iter()
            .map(|&c| (0..k).map(|cl| cut_sets[c].get(cl)).collect())
            .collect();
        let (part_of, m) = signature_classes(k, class_sides.iter().map(|s| s.as_slice()));
        assert!(m >= 4, "a crossing component partitions into ≥ 4 parts");
        let mut parts: Vec<Bits> = vec![Bits::empty(k); m];
        for (cl, &p) in part_of.iter().enumerate() {
            parts[p as usize].set(cl);
        }
        // Adjacency: parts are neighbours iff their union — or its
        // complement when the root part (part 0) is involved — is a cut.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for p in 0..m {
            for q in p + 1..m {
                let un = parts[p].union(&parts[q]);
                let candidate = if p == 0 { un.complement() } else { un };
                if set_index.contains_key(&candidate) {
                    adj[p].push(q);
                    adj[q].push(p);
                }
            }
        }
        for (p, nb) in adj.iter().enumerate() {
            assert_eq!(
                nb.len(),
                2,
                "part {p} of a circular partition has two neighbours"
            );
        }
        let mut order = vec![0usize, adj[0][0]];
        while order.len() < m {
            let (last, prev) = (order[order.len() - 1], order[order.len() - 2]);
            let next = if adj[last][0] == prev {
                adj[last][1]
            } else {
                adj[last][0]
            };
            assert_ne!(next, 0, "circular walk closed early");
            order.push(next);
        }
        part_sets.push(parts);
        orders.push(order);
    }

    // Step 4: interval marking — which cuts are cycle cuts.
    let mut is_cycle_cut = vec![false; cuts.len()];
    for (ci, comp) in crossing.iter().enumerate() {
        let parts = &part_sets[ci];
        let order = &orders[ci];
        let m = parts.len();
        let is_interval = |set: &Bits| -> bool {
            // Covered = parts fully inside; any partial overlap disqualifies.
            let mut covered = vec![false; m];
            for (p, part) in parts.iter().enumerate() {
                if part.is_subset(set) {
                    covered[p] = true;
                } else if part.intersects(set) {
                    return false;
                }
            }
            if covered[0] {
                return false; // canonical cuts exclude the root class
            }
            // Consecutive along the circular order, root part outside:
            // exactly one rise edge in the cyclic covered sequence.
            let rises = (0..m)
                .filter(|&i| !covered[order[i]] && covered[order[(i + 1) % m]])
                .count();
            let total = covered.iter().filter(|&&c| c).count();
            total > 0 && rises == 1
        };
        for &c in comp {
            assert!(
                is_interval(&cut_sets[c]),
                "a crossing cut must be an interval of its own component"
            );
            is_cycle_cut[c] = true;
        }
        // Non-crossing cuts can still be intervals (single parts, or the
        // union of all non-root parts): they belong to this cycle too.
        for (c, cut) in cut_sets.iter().enumerate() {
            if !is_cycle_cut[c] && is_interval(cut) {
                is_cycle_cut[c] = true;
            }
        }
    }

    // Step 5: laminar family of non-root parts and tree-cut sides.
    let mut entries: Vec<Bits> = Vec::new();
    let mut entry_index: HashMap<Bits, usize> = HashMap::new();
    let mut intern = |b: &Bits, entries: &mut Vec<Bits>| -> usize {
        *entry_index.entry(b.clone()).or_insert_with(|| {
            entries.push(b.clone());
            entries.len() - 1
        })
    };
    // part_entries[c][i] = laminar entry of part i of component c (root
    // part position holds usize::MAX).
    let mut part_entries: Vec<Vec<usize>> = Vec::new();
    for parts in &part_sets {
        part_entries.push(
            parts
                .iter()
                .enumerate()
                .map(|(p, b)| {
                    if p == 0 {
                        usize::MAX
                    } else {
                        intern(b, &mut entries)
                    }
                })
                .collect(),
        );
    }
    let tree_cut_entries: Vec<usize> = (0..cuts.len())
        .filter(|&c| !is_cycle_cut[c])
        .map(|c| intern(&cut_sets[c], &mut entries))
        .collect();

    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let (a, b) = (&entries[i], &entries[j]);
            assert!(
                !a.intersects(b) || a.is_subset(b) || b.is_subset(a),
                "parts and tree cuts must form a laminar family"
            );
        }
    }

    // Containment forest: sort by size descending; the first strictly
    // containing predecessor (scanning backwards) is the smallest one,
    // i.e. the parent. `usize::MAX` parent = the virtual root node.
    let mut sorted: Vec<usize> = (0..entries.len()).collect();
    sorted.sort_by_key(|&e| std::cmp::Reverse(entries[e].count()));
    let mut rank_of = vec![0usize; entries.len()];
    for (r, &e) in sorted.iter().enumerate() {
        rank_of[e] = r;
    }
    let mut parent_of: Vec<usize> = vec![usize::MAX; entries.len()];
    for r in 0..sorted.len() {
        for pr in (0..r).rev() {
            if entries[sorted[r]].is_subset(&entries[sorted[pr]]) {
                parent_of[sorted[r]] = sorted[pr];
                break;
            }
        }
    }

    // Nodes: 0 = virtual root, entry e -> node rank_of[e] + 1. Each class
    // lives in the node of the smallest laminar set containing it.
    let node_of_entry = |e: usize| -> u32 {
        if e == usize::MAX {
            0
        } else {
            rank_of[e] as u32 + 1
        }
    };
    let num_nodes = entries.len() + 1;
    let mut class_node: Vec<u32> = vec![0; k];
    for &e in &sorted {
        for cl in entries[e].iter_ones() {
            class_node[cl] = node_of_entry(e);
        }
    }
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
    for (cl, &nd) in class_node.iter().enumerate() {
        nodes[nd as usize].extend_from_slice(&class_vertices[cl]);
    }
    for vs in &mut nodes {
        vs.sort_unstable();
    }
    let mut node_of: Vec<u32> = vec![0; n];
    for (v, &cl) in class_of.iter().enumerate() {
        node_of[v] = class_node[cl as usize];
    }

    // Edges: bridges for tree cuts, cycles for crossing components.
    let mut edges: Vec<CactusEdge> = Vec::new();
    for &e in &tree_cut_entries {
        edges.push(CactusEdge {
            a: node_of_entry(e),
            b: node_of_entry(parent_of[e]),
            cycle: None,
        });
    }
    let mut cycles: Vec<Vec<u32>> = Vec::new();
    for (ci, order) in orders.iter().enumerate() {
        // The root part's stand-in node: the common laminar parent of
        // the component's non-root parts.
        let hub = {
            let firsts: Vec<u32> = part_entries[ci]
                .iter()
                .filter(|&&e| e != usize::MAX)
                .map(|&e| node_of_entry(parent_of[e]))
                .collect();
            assert!(
                firsts.windows(2).all(|w| w[0] == w[1]),
                "non-root parts of one cycle share a laminar parent"
            );
            firsts[0]
        };
        let circ: Circular = Circular {
            order_entries: order
                .iter()
                .map(|&p| {
                    let e = part_entries[ci][p];
                    if e == usize::MAX {
                        None
                    } else {
                        Some(e)
                    }
                })
                .collect(),
        };
        let cycle_nodes: Vec<u32> = circ
            .order_entries
            .iter()
            .map(|oe| match oe {
                None => hub,
                Some(e) => node_of_entry(*e),
            })
            .collect();
        let id = cycles.len() as u32;
        let m = cycle_nodes.len();
        for i in 0..m {
            edges.push(CactusEdge {
                a: cycle_nodes[i],
                b: cycle_nodes[(i + 1) % m],
                cycle: Some(id),
            });
        }
        cycles.push(cycle_nodes);
    }

    Cactus::new(lambda, n, node_of, nodes, edges, cycles, 1, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn build(g: &CsrGraph) -> Cactus {
        CactusBuilder::new().build(g).unwrap()
    }

    #[test]
    fn cycle_is_one_cactus_cycle() {
        let (g, l) = known::cycle_graph(6, 2);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 15); // 6·5/2
        assert_eq!(c.num_cycles(), 1);
        assert_eq!(c.num_bridges(), 0);
        assert_eq!(c.num_nodes(), 6);
        assert_eq!(c.num_empty_nodes(), 0);
    }

    #[test]
    fn triangle_normalises_to_an_empty_hub() {
        // K3: three cuts {a}, {b}, {c} — pairwise non-crossing, so three
        // bridges meeting in an empty hub node (the 3-cycle normal form).
        let (g, l) = known::cycle_graph(3, 1);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 3);
        assert_eq!(c.num_bridges(), 3);
        assert_eq!(c.num_cycles(), 0);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_empty_nodes(), 1);
    }

    #[test]
    fn path_is_a_path_of_bridges() {
        let (g, l) = known::path_graph(5, 3);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 4);
        assert_eq!(c.num_bridges(), 4);
        assert_eq!(c.num_cycles(), 0);
        assert_eq!(c.num_empty_nodes(), 0);
    }

    #[test]
    fn complete_graph_is_a_star_of_bridges() {
        // K5: the five singleton cuts, pairwise disjoint — a star with an
        // empty centre.
        let (g, l) = known::complete_graph(5, 1);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 5);
        assert_eq!(c.num_bridges(), 5);
        assert_eq!(c.num_empty_nodes(), 1);
    }

    #[test]
    fn unique_cut_is_a_single_bridge() {
        let (g, l) = known::two_communities(6, 5, 1, 2, 1);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 1);
        assert_eq!(c.num_bridges(), 1);
        assert_eq!(c.num_nodes(), 2);
        assert!(!c.edge_in_some_min_cut(0, 1), "intra-clique pair");
        assert!(c.edge_in_some_min_cut(0, 6), "cross-bridge pair");
    }

    #[test]
    fn ring_of_cliques_is_one_cycle_of_clique_nodes() {
        let (g, l) = known::ring_of_cliques(5, 3, 3, 1);
        let c = build(&g);
        assert_eq!(c.lambda(), l);
        assert_eq!(c.count_min_cuts(), 10); // 5·4/2 ring cuts
        assert_eq!(c.num_cycles(), 1);
        assert_eq!(c.cycles[0].len(), 5);
        assert_eq!(c.num_bridges(), 0);
    }

    #[test]
    fn disconnected_graph_reports_component_structure() {
        let g = CsrGraph::from_edges(7, &[(0, 1, 2), (1, 2, 2), (3, 4, 1), (5, 6, 3)]);
        let c = build(&g);
        assert_eq!(c.lambda(), 0);
        assert_eq!(c.components(), 3);
        assert_eq!(c.count_min_cuts(), 3); // 2^2 - 1
        assert_eq!(c.num_nodes(), 3);
        assert!(c.edge_in_some_min_cut(0, 3));
        assert!(!c.edge_in_some_min_cut(0, 2));
        let side = c.min_cut_separating(3, 5).unwrap();
        assert_eq!(g.cut_value(&side), 0);
        assert!(side[3] && side[4] && !side[5]);
        let all = c.enumerate_min_cuts(usize::MAX);
        assert_eq!(all.len(), 3);
        for s in &all {
            assert!(!s[0] && g.is_proper_cut(s) && g.cut_value(s) == 0);
        }
    }

    #[test]
    fn separating_queries_agree_with_enumeration() {
        for (g, _) in [
            known::cycle_graph(7, 1),
            known::grid_graph(3, 3, 1),
            known::star_graph(6, 2),
            known::two_communities(4, 4, 2, 2, 1),
        ] {
            let c = build(&g);
            let all = c.enumerate_min_cuts(usize::MAX);
            for u in 0..g.n() as NodeId {
                for v in u + 1..g.n() as NodeId {
                    let separated = all.iter().any(|s| s[u as usize] != s[v as usize]);
                    assert_eq!(c.edge_in_some_min_cut(u, v), separated, "({u},{v})");
                    match c.min_cut_separating(u, v) {
                        None => assert!(!separated),
                        Some(side) => {
                            assert!(side[u as usize] && !side[v as usize]);
                            assert_eq!(g.cut_value(&side), c.lambda());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn enumeration_limit_truncates() {
        let (g, _) = known::cycle_graph(8, 1);
        let c = build(&g);
        assert_eq!(c.enumerate_min_cuts(5).len(), 5);
        assert_eq!(c.enumerate_min_cuts(usize::MAX).len(), 28);
    }

    #[test]
    fn inexact_solver_is_rejected() {
        let (g, _) = known::cycle_graph(4, 1);
        let err = CactusBuilder::new().solver("viecut").build(&g).unwrap_err();
        assert!(matches!(err, MinCutError::InvalidOptions { .. }));
    }

    #[test]
    fn too_few_vertices_is_an_error() {
        let g = CsrGraph::from_edges(1, &[]);
        let err = CactusBuilder::new().build(&g).unwrap_err();
        assert_eq!(err, MinCutError::TooFewVertices { n: 1 });
    }

    #[test]
    fn json_summary_is_well_formed() {
        let (g, _) = known::cycle_graph(5, 1);
        let c = build(&g);
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"lambda\":2"));
        assert!(j.contains("\"min_cuts\":10"));
        assert!(j.contains("\"cycles\":1"));
        assert!(j.contains("\"stats\":{"));
    }
}
