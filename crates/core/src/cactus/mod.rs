//! The cactus representation of **all** minimum cuts.
//!
//! A connected graph G with minimum cut value λ > 0 has at most
//! n(n−1)/2 minimum cuts (Dinitz–Karzanov–Lomonosov), and the whole
//! family fits in O(n) space as a *cactus*: a tree of edge-disjoint
//! cycles H together with a mapping of G's vertices onto H's nodes,
//! such that the minimum cuts of G are **in bijection** with the
//! minimal edge cuts of H — the bridges, and the pairs of edges drawn
//! from one cycle. A cycle of length m therefore contributes m(m−1)/2
//! cuts and a bridge one; the cycle C_n is its own cactus with
//! n(n−1)/2 minimum cuts. Nodes of H may be *empty* (carry no vertices
//! of G): this build uses empty hub nodes where the classical
//! presentation would use 3-cycles — both encode the same family, and
//! the bijection is what every query relies on, so the normalisation is
//! checked, not assumed: [`CactusBuilder`](builder::CactusBuilder)
//! re-derives every 2-cut of the built structure and compares the set
//! against the enumerated family before returning.
//!
//! Construction ([`builder`]): λ is obtained through the existing
//! solver registry (kernelization pipeline included), the family is
//! enumerated output-sensitively ([`enumerate::all_min_cuts`]: one
//! conservation max flow per contraction level, every minimum s-t cut
//! from the residual closed sets), and the tree-of-cycles is assembled
//! from the family — vertex classes, crossing components → circular
//! partitions, the laminar forest of parts and non-crossing cuts.
//!
//! Disconnected graphs (λ = 0) have `2^(c−1) − 1` minimum cuts for c
//! components — a power set, not a 2-cut family — so the cactus stores
//! the component structure directly: one node per component, no edges,
//! and the same oracle surface (`count` saturates at `u128::MAX`).
//!
//! ```
//! use mincut_core::cactus::CactusBuilder;
//! use mincut_graph::generators::known;
//!
//! let (g, _) = known::cycle_graph(5, 1);
//! let cactus = CactusBuilder::new().build(&g).unwrap();
//! assert_eq!(cactus.lambda(), 2);
//! assert_eq!(cactus.count_min_cuts(), 10); // n(n-1)/2
//! assert!(cactus.edge_in_some_min_cut(0, 1));
//! let side = cactus.min_cut_separating(0, 2).unwrap();
//! assert_eq!(g.cut_value(&side), 2);
//! ```

pub mod builder;
pub mod enumerate;
pub mod repair;

pub use builder::CactusBuilder;

use mincut_graph::{EdgeWeight, NodeId};

use crate::stats::CactusStats;

/// One edge of the cactus: a bridge (`cycle == None`, representing one
/// minimum cut) or a member of `cycles[cycle]` (cuts are pairs of edges
/// of one cycle).
#[derive(Clone, Debug)]
pub(crate) struct CactusEdge {
    pub a: u32,
    pub b: u32,
    pub cycle: Option<u32>,
}

/// The built cactus: see the [module docs](self). Constructed by
/// [`CactusBuilder`]; immutable afterwards.
#[derive(Clone, Debug)]
pub struct Cactus {
    lambda: EdgeWeight,
    n: usize,
    /// Cactus node (or component, when λ = 0) of every vertex.
    node_of: Vec<u32>,
    /// Vertices carried by each node; empty lists are junction nodes.
    nodes: Vec<Vec<NodeId>>,
    edges: Vec<CactusEdge>,
    /// `adj[x]` = edge ids incident to node `x`.
    adj: Vec<Vec<u32>>,
    /// Node sequences of the cycles, in cyclic order; all lengths ≥ 4
    /// (3-cycles are normalised to empty hub nodes).
    cycles: Vec<Vec<u32>>,
    /// Connected components of G: 1 when λ > 0.
    components: usize,
    count: u128,
    stats: CactusStats,
}

impl Cactus {
    // A builder-internal constructor: the one caller hands over every
    // assembled field at once.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        lambda: EdgeWeight,
        n: usize,
        node_of: Vec<u32>,
        nodes: Vec<Vec<NodeId>>,
        edges: Vec<CactusEdge>,
        cycles: Vec<Vec<u32>>,
        components: usize,
        stats: CactusStats,
    ) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a as usize].push(i as u32);
            adj[e.b as usize].push(i as u32);
        }
        let bridges = edges.iter().filter(|e| e.cycle.is_none()).count() as u128;
        let count = if lambda == 0 {
            // 2^(c-1) - 1 component unions, saturating for huge c.
            let c = components;
            if c >= 129 {
                u128::MAX
            } else {
                (1u128 << (c - 1)) - 1
            }
        } else {
            bridges
                + cycles
                    .iter()
                    .map(|cy| (cy.len() * (cy.len() - 1) / 2) as u128)
                    .sum::<u128>()
        };
        Cactus {
            lambda,
            n,
            node_of,
            nodes,
            edges,
            adj,
            cycles,
            components,
            count,
            stats,
        }
    }

    /// The minimum cut value the represented family realises.
    #[inline]
    pub fn lambda(&self) -> EdgeWeight {
        self.lambda
    }

    /// Vertices of the represented graph.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct minimum cuts, in O(1) from the structure:
    /// bridges + Σ m(m−1)/2 over the cycles (λ > 0), or the component
    /// power set `2^(c−1) − 1` (λ = 0; saturates at `u128::MAX`).
    #[inline]
    pub fn count_min_cuts(&self) -> u128 {
        self.count
    }

    /// Cactus nodes (including empty junction nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Junction nodes carrying no vertices.
    pub fn num_empty_nodes(&self) -> usize {
        self.nodes.iter().filter(|l| l.is_empty()).count()
    }

    /// Cycles of the tree-of-cycles.
    #[inline]
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Bridge (tree) edges; each is one minimum cut.
    pub fn num_bridges(&self) -> usize {
        self.edges.iter().filter(|e| e.cycle.is_none()).count()
    }

    /// Connected components of the represented graph (1 unless λ = 0).
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Cactus node (component when λ = 0) holding vertex `v`.
    #[inline]
    pub fn node_of(&self, v: NodeId) -> u32 {
        self.node_of[v as usize]
    }

    /// Whether `u` and `v` share a cactus node — i.e. **no** minimum cut
    /// separates them. O(1).
    #[inline]
    pub fn same_node(&self, u: NodeId, v: NodeId) -> bool {
        self.node_of[u as usize] == self.node_of[v as usize]
    }

    /// Whether some minimum cut separates `u` and `v` — for an edge
    /// `{u, v}` of G, exactly "this edge crosses some minimum cut".
    /// O(1): the cactus nodes differ. (λ = 0: different components; an
    /// actual edge of G then always answers `false`, as value-0 cuts
    /// cross no edges.)
    #[inline]
    pub fn edge_in_some_min_cut(&self, u: NodeId, v: NodeId) -> bool {
        !self.same_node(u, v)
    }

    /// Build-time telemetry.
    #[inline]
    pub fn stats(&self) -> &CactusStats {
        &self.stats
    }

    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut CactusStats {
        &mut self.stats
    }

    /// A minimum cut separating `u` from `v` (side bitmap with
    /// `side[u] == true`), or `None` when no minimum cut separates them.
    /// Output-sensitive: one BFS over the O(n)-size cactus.
    pub fn min_cut_separating(&self, u: NodeId, v: NodeId) -> Option<Vec<bool>> {
        let (nu, nv) = (self.node_of(u), self.node_of(v));
        if nu == nv {
            return None;
        }
        if self.lambda == 0 {
            // u's whole component against the rest — always a union of
            // whole components (the only shape a value-0 cut can have).
            let mut side = vec![false; self.n];
            for &x in &self.nodes[nu as usize] {
                side[x as usize] = true;
            }
            return Some(side);
        }
        // BFS path nu → nv over cactus nodes; the first path edge decides.
        let mut prev_edge: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        seen[nu as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(nu);
        'bfs: while let Some(x) = queue.pop_front() {
            for &e in &self.adj[x as usize] {
                let y = self.other_end(e, x);
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    prev_edge[y as usize] = Some(e);
                    if y == nv {
                        break 'bfs;
                    }
                    queue.push_back(y);
                }
            }
        }
        // Walk back to the first edge of the path (the one leaving nu).
        let mut first = prev_edge[nv as usize].expect("nodes of one component stay connected");
        loop {
            let tail = self.edge_tail(first, &prev_edge, nu);
            if tail == nu {
                break;
            }
            first = prev_edge[tail as usize].expect("path walks back to nu");
        }
        let removed: Vec<u32> = match self.edges[first as usize].cycle {
            None => vec![first],
            Some(c) => {
                // Both cycle-c edges at nu: cutting them splits nu's side
                // off the cycle, and the path to nv went through c.
                let pair: Vec<u32> = self.adj[nu as usize]
                    .iter()
                    .copied()
                    .filter(|&e| self.edges[e as usize].cycle == Some(c))
                    .collect();
                debug_assert_eq!(pair.len(), 2, "a cycle visits a node on two edges");
                pair
            }
        };
        let mut side = self.side_without_edges(nu, &removed);
        if !side[u as usize] {
            for b in &mut side {
                *b = !*b;
            }
        }
        debug_assert!(side[u as usize] && !side[v as usize]);
        Some(side)
    }

    /// Enumerates minimum cuts from the structure, canonicalised to
    /// `side[0] == false` and sorted, stopping after `limit` sides.
    /// Output-sensitive: O(n) per emitted cut.
    pub fn enumerate_min_cuts(&self, limit: usize) -> Vec<Vec<bool>> {
        let mut sides: Vec<Vec<bool>> = Vec::new();
        if self.lambda == 0 {
            // Unions of components not holding vertex 0: a (c−1)-bit
            // counter over the non-root components, word-sliced so every
            // emitted side is distinct for *any* c (a fixed-width mask
            // would repeat itself — and never terminate under a large
            // `limit` — once c − 1 outgrows it). The count saturates at
            // u128::MAX for c ≥ 129; the enumeration stays exact up to
            // `limit` regardless.
            let root = self.node_of(0);
            let others: Vec<u32> = (0..self.components as u32).filter(|&x| x != root).collect();
            let bits = others.len(); // c − 1 ≥ 1
            let mut mask = vec![0u64; (bits + 1).div_ceil(64)];
            while sides.len() < limit {
                for w in mask.iter_mut() {
                    let (next, carry) = w.overflowing_add(1);
                    *w = next;
                    if !carry {
                        break;
                    }
                }
                if (mask[bits / 64] >> (bits % 64)) & 1 == 1 {
                    break; // 2^(c−1) reached: all proper sides emitted
                }
                let mut side = vec![false; self.n];
                for (i, &comp) in others.iter().enumerate() {
                    if (mask[i / 64] >> (i % 64)) & 1 == 1 {
                        for &v in &self.nodes[comp as usize] {
                            side[v as usize] = true;
                        }
                    }
                }
                sides.push(side);
            }
            sides.sort();
            return sides;
        }
        'emit: {
            for (i, e) in self.edges.iter().enumerate() {
                if e.cycle.is_none() {
                    if sides.len() >= limit {
                        break 'emit;
                    }
                    sides.push(self.canonical_side(e.a, &[i as u32]));
                }
            }
            for cycle in &self.cycles {
                let m = cycle.len();
                // ce[k] joins cycle[k] and cycle[(k+1) % m].
                let ce: Vec<u32> = (0..m)
                    .map(|k| {
                        let (x, y) = (cycle[k], cycle[(k + 1) % m]);
                        self.adj[x as usize]
                            .iter()
                            .copied()
                            .find(|&e| {
                                let ed = &self.edges[e as usize];
                                ed.cycle.is_some()
                                    && (ed.a == x && ed.b == y || ed.a == y && ed.b == x)
                            })
                            .expect("consecutive cycle nodes share an edge")
                    })
                    .collect();
                for i in 0..m {
                    for j in i + 1..m {
                        if sides.len() >= limit {
                            break 'emit;
                        }
                        // Removing ce[i], ce[j] splits cycle[i+1..=j] off.
                        sides.push(self.canonical_side(cycle[i + 1], &[ce[i], ce[j]]));
                    }
                }
            }
        }
        sides.sort();
        sides
    }

    /// JSON summary (hand-rolled like every emitter in this offline
    /// build): λ, the cut count, and the structure sizes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lambda\":{},\"min_cuts\":{},\"n\":{},\"nodes\":{},\"empty_nodes\":{},\
             \"cycles\":{},\"bridges\":{},\"components\":{},\"stats\":{}}}",
            self.lambda,
            self.count,
            self.n,
            self.num_nodes(),
            self.num_empty_nodes(),
            self.num_cycles(),
            self.num_bridges(),
            self.components,
            self.stats.to_json()
        )
    }

    /// Renders the separating side of [`Cactus::min_cut_separating`] as a
    /// JSON vertex array (helper for the CLI's `qs` output).
    pub fn side_to_json(side: &[bool]) -> String {
        let mut s = String::from("[");
        let mut first = true;
        for (v, &inside) in side.iter().enumerate() {
            if inside {
                if !first {
                    s.push(',');
                }
                s.push_str(&v.to_string());
                first = false;
            }
        }
        s.push(']');
        s
    }

    fn other_end(&self, e: u32, x: u32) -> u32 {
        let ed = &self.edges[e as usize];
        if ed.a == x {
            ed.b
        } else {
            ed.a
        }
    }

    /// The endpoint of `e` closer to the BFS root along `prev_edge`.
    fn edge_tail(&self, e: u32, prev_edge: &[Option<u32>], root: u32) -> u32 {
        let ed = &self.edges[e as usize];
        // The tail is the endpoint whose own prev_edge is not `e`
        // (the head was discovered through `e`).
        if ed.a == root || prev_edge[ed.b as usize] == Some(e) {
            ed.a
        } else {
            ed.b
        }
    }

    /// Vertex side of the cactus component containing `start` once the
    /// edges in `removed` are deleted.
    fn side_without_edges(&self, start: u32, removed: &[u32]) -> Vec<bool> {
        let mut in_comp = vec![false; self.nodes.len()];
        in_comp[start as usize] = true;
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &e in &self.adj[x as usize] {
                if removed.contains(&e) {
                    continue;
                }
                let y = self.other_end(e, x);
                if !in_comp[y as usize] {
                    in_comp[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        let mut side = vec![false; self.n];
        for (x, &inside) in in_comp.iter().enumerate() {
            if inside {
                for &v in &self.nodes[x] {
                    side[v as usize] = true;
                }
            }
        }
        side
    }

    /// Like [`side_without_edges`](Self::side_without_edges) but
    /// canonicalised to `side[0] == false`.
    fn canonical_side(&self, start: u32, removed: &[u32]) -> Vec<bool> {
        let mut side = self.side_without_edges(start, removed);
        if side[0] {
            for b in &mut side {
                *b = !*b;
            }
        }
        side
    }

    /// Debug rendering of the structure (node contents, bridges, cycles).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for (i, vs) in self.nodes.iter().enumerate() {
            s.push_str(&format!("node {i}: {vs:?}\n"));
        }
        for e in &self.edges {
            match e.cycle {
                None => s.push_str(&format!("bridge {}-{}\n", e.a, e.b)),
                Some(c) => s.push_str(&format!("cycle {c} edge {}-{}\n", e.a, e.b)),
            }
        }
        s
    }
}
