//! Output-sensitive enumeration of every minimum cut of a graph.
//!
//! The contraction scheme behind [`all_min_cuts`]: pick any edge
//! `{u, v}` of the current (contracted) graph. Every minimum cut either
//! separates `u` from `v` or it does not. The separating ones are
//! exactly the minimum u-v cuts *when* `maxflow(u, v) = λ` — all of
//! them fall out of the residual closed sets of one conservation max
//! flow ([`mincut_flow::enumerate_min_st_sides`]). The non-separating
//! ones survive the contraction `G/{u,v}` untouched, so the loop
//! contracts the pair (through the shared [`ContractionEngine`], with a
//! [`Membership`] folding the rounds back to original vertices) and
//! repeats on a graph one vertex smaller. n−1 max flows, each cut
//! reported at exactly one level — no deduplication needed — and the
//! whole family is bounded by the Dinitz–Karzanov–Lomonosov theorem at
//! n(n−1)/2 cuts, which the loop asserts.

use mincut_flow::{dinic_max_flow, enumerate_min_st_sides};
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership};

/// Enumerates every minimum cut of `g` (which must have λ(g) = `lambda`
/// with `lambda > 0`, i.e. be connected), as side bitmaps over the
/// original vertices canonicalised to `side[0] == false`, sorted. The
/// λ = 0 family — the power set of the components — is represented
/// structurally by the [`Cactus`](super::Cactus) instead of enumerated.
pub fn all_min_cuts(g: &CsrGraph, lambda: EdgeWeight) -> Vec<Vec<bool>> {
    let n = g.n();
    assert!(n >= 2, "cut enumeration needs two vertices");
    assert!(lambda > 0, "λ = 0 families are not explicitly enumerable");
    let bound = n * (n - 1) / 2;
    let mut cuts: Vec<Vec<bool>> = Vec::new();
    let mut engine = ContractionEngine::new();
    let mut membership = Membership::identity(n);
    let mut cur = g.clone();
    while cur.n() > 1 {
        let (u, v, _) = cur
            .edges()
            .next()
            .expect("a λ > 0 graph stays connected under contraction");
        let (value, net) = dinic_max_flow(&cur, u, v);
        debug_assert!(value >= lambda, "u-v flow below the global minimum");
        if value == lambda {
            let budget = bound + 1 - cuts.len();
            let (sides, truncated) = enumerate_min_st_sides(&net, u, v, budget);
            assert!(
                !truncated && cuts.len() + sides.len() <= bound,
                "more than n(n-1)/2 minimum cuts — DKL bound violated"
            );
            for side in sides {
                let mut orig = membership.side_of_bitmap(&side);
                debug_assert_eq!(g.cut_value(&orig), lambda);
                if orig[0] {
                    for b in &mut orig {
                        *b = !*b;
                    }
                }
                cuts.push(orig);
            }
        }
        let next = engine.contract_edge_tracked(&cur, u, v, &mut membership);
        engine.recycle(std::mem::replace(&mut cur, next));
    }
    cuts.sort();
    debug_assert!(cuts.windows(2).all(|w| w[0] != w[1]), "duplicate cut");
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    #[test]
    fn matches_brute_force_on_known_families() {
        for (g, l) in [
            known::path_graph(5, 2),
            known::cycle_graph(6, 1),
            known::complete_graph(5, 1),
            known::star_graph(6, 3),
            known::grid_graph(3, 3, 1),
            known::two_communities(4, 5, 1, 2, 1),
        ] {
            let (bl, bsides) = known::brute_force_all_min_cuts(&g);
            assert_eq!(bl, l);
            assert_eq!(all_min_cuts(&g, l), bsides, "n={}", g.n());
        }
    }

    #[test]
    fn cycle_has_quadratically_many_cuts() {
        for n in 3..=8 {
            let (g, l) = known::cycle_graph(n, 3);
            assert_eq!(all_min_cuts(&g, l).len(), n * (n - 1) / 2, "C_{n}");
        }
    }
}
