//! Edge-local repair of a maintained cactus.
//!
//! The dynamic maintainer keeps the cactus of *all* minimum cuts
//! current across edge updates. A full rebuild re-enumerates the family
//! from scratch — n−1 max flows — but most updates change the family in
//! a way the **old structure already describes**, so the new family can
//! be derived from the old cactus alone and reassembled through the
//! same [`assemble`] machinery, skipping the flows entirely:
//!
//! | update (λ > 0) | new λ | surviving family |
//! |---|---|---|
//! | insert `{u, v}`, same node | λ | unchanged — absorbed upstream, O(1) |
//! | insert `{u, v}`, cross-node, λ kept | λ | old cuts **not** separating `u, v` |
//! | insert `{u, v}`, cross-node, λ rose | λ′ > λ | not derivable → rebuild |
//! | delete `{u, v}` crossing some min cut | λ − w | old cuts separating `u, v` |
//! | delete `{u, v}`, same node, λ kept | λ | old family, plus the min u-v cuts of one residual |
//! | delete `{u, v}`, same node, λ dropped | λ′ < λ | not derivable → rebuild |
//!
//! The derivations are exact, not heuristic. Insertions only ever raise
//! cut values: after a cross-node insert that left λ unchanged, every
//! old minimum cut separating `u` from `v` now costs λ + w and every
//! other cut kept its value, so the survivors — the cuts whose 2-cut
//! edges avoid the cactus tree-path between `u`'s and `v`'s nodes — are
//! exactly the new family. Deletions only ever lower values, and only
//! for cuts separating the endpoints: a deletion crossed by some
//! minimum cut lands every separating minimum cut on λ − w while every
//! non-separating cut stays at ≥ λ, so the separating old cuts (the
//! tree-path bridges and the cross-arc cycle pairs through the deleted
//! edge's node pair) are exactly the new family. A same-node deletion
//! that kept λ leaves the old family intact but can *grow* it — cuts of
//! old value λ + w separating `u, v` drop onto λ — and every joining
//! cut separates `u` from `v`, so all of them fall out of the residual
//! closed sets of **one** conservation max flow instead of n − 1.
//!
//! λ = 0 has its own local case: an insert joining two of c ≥ 3
//! components merges their cactus nodes in O(n) and the family stays
//! the component power set.
//!
//! Every repaired structure re-proves the subsystem's bijection
//! contract (its 2-cuts re-enumerate to exactly the derived family)
//! before it is accepted; any disagreement returns `None` and the
//! caller falls back to the full rebuild.

use mincut_flow::{dinic_max_flow, enumerate_min_st_sides};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

use super::builder::assemble;
use super::Cactus;

impl Cactus {
    /// Repair after inserting edge `{u, v}` across two cactus nodes
    /// **when λ did not change**: the new family is the old cuts not
    /// separating `u` from `v`. Returns `None` when no cut survives
    /// (λ must then have risen — the caller's λ check fires first) or
    /// when the reassembled structure fails the bijection check.
    pub(crate) fn repaired_after_insert(&self, u: NodeId, v: NodeId) -> Option<Cactus> {
        if self.lambda == 0 || self.same_node(u, v) {
            return None;
        }
        let survivors: Vec<Vec<bool>> = self
            .enumerate_min_cuts(usize::MAX)
            .into_iter()
            .filter(|s| s[u as usize] == s[v as usize])
            .collect();
        if survivors.is_empty() {
            return None;
        }
        self.reassembled(self.lambda, survivors)
    }

    /// Repair after deleting the weight-`w` edge `{u, v}` that crossed
    /// some minimum cut (`u`, `v` in different cactus nodes), with
    /// `new_lambda = λ − w > 0`: exactly the old cuts separating `u`
    /// from `v` survive, all landing on `new_lambda`.
    pub(crate) fn repaired_after_crossing_delete(
        &self,
        u: NodeId,
        v: NodeId,
        new_lambda: EdgeWeight,
    ) -> Option<Cactus> {
        if self.lambda == 0 || new_lambda == 0 || self.same_node(u, v) {
            return None;
        }
        let survivors: Vec<Vec<bool>> = self
            .enumerate_min_cuts(usize::MAX)
            .into_iter()
            .filter(|s| s[u as usize] != s[v as usize])
            .collect();
        debug_assert!(
            !survivors.is_empty(),
            "different cactus nodes certify a separating minimum cut"
        );
        if survivors.is_empty() {
            return None;
        }
        self.reassembled(new_lambda, survivors)
    }

    /// Repair after deleting edge `{u, v}` with both endpoints in one
    /// cactus node **when λ did not change**. No old minimum cut
    /// separates `u` from `v`, so the old family survives untouched;
    /// the only possible change is *growth* — cuts separating `u, v`
    /// whose value dropped onto λ — and every such cut is a minimum
    /// u-v cut of the current graph `g`, so one conservation max flow
    /// either certifies the family unchanged (`maxflow > λ`) or hands
    /// over every joining cut from its residual closed sets.
    pub(crate) fn repaired_after_internal_delete(
        &self,
        g: &CsrGraph,
        u: NodeId,
        v: NodeId,
    ) -> Option<Cactus> {
        if self.lambda == 0 || !self.same_node(u, v) {
            return None;
        }
        let (value, net) = dinic_max_flow(g, u, v);
        if value > self.lambda {
            // No cut separating u, v reaches λ: family — and therefore
            // structure — unchanged.
            return Some(self.clone());
        }
        if value < self.lambda {
            // λ itself dropped; the caller's λ check should have caught
            // this before asking for a repair.
            return None;
        }
        let mut family = self.enumerate_min_cuts(usize::MAX);
        let bound = self.n * (self.n - 1) / 2;
        if family.len() >= bound {
            return None;
        }
        let (sides, truncated) = enumerate_min_st_sides(&net, u, v, bound + 1 - family.len());
        if truncated {
            return None;
        }
        for mut side in sides {
            if side[0] {
                for b in &mut side {
                    *b = !*b;
                }
            }
            family.push(side);
        }
        family.sort();
        // Old cuts never separate u, v and residual cuts always do, so
        // the union is disjoint; a duplicate disproves the derivation.
        if family.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        self.reassembled(self.lambda, family)
    }

    /// λ = 0 repair: an insert joining two different components while
    /// c ≥ 3 keeps λ = 0 and merges exactly the two touched cactus
    /// nodes — the family stays the (one smaller) component power set.
    pub(crate) fn repaired_merge_components(&self, u: NodeId, v: NodeId) -> Option<Cactus> {
        if self.lambda != 0 || self.same_node(u, v) || self.components <= 2 {
            return None;
        }
        let (nu, nv) = (self.node_of(u), self.node_of(v));
        let (keep, gone) = if nu < nv { (nu, nv) } else { (nv, nu) };
        let mut node_of = self.node_of.clone();
        for x in node_of.iter_mut() {
            if *x == gone {
                *x = keep;
            } else if *x > gone {
                *x -= 1;
            }
        }
        let mut nodes = self.nodes.clone();
        let moved = nodes.remove(gone as usize);
        nodes[keep as usize].extend(moved);
        nodes[keep as usize].sort_unstable();
        let mut stats = self.stats.clone();
        stats.classes = self.components - 1;
        Some(Cactus::new(
            0,
            self.n,
            node_of,
            nodes,
            Vec::new(),
            Vec::new(),
            self.components - 1,
            stats,
        ))
    }

    /// Reassembles a derived family into a cactus and re-proves the
    /// bijection contract on the result; `None` on any disagreement
    /// (the caller then falls back to a full rebuild).
    fn reassembled(&self, new_lambda: EdgeWeight, family: Vec<Vec<bool>>) -> Option<Cactus> {
        debug_assert!(new_lambda > 0 && !family.is_empty());
        let mut stats = self.stats.clone();
        stats.lambda = new_lambda;
        stats.cuts = family.len() as u64;
        let cactus = assemble(self.n, new_lambda, &family, stats);
        let structural = cactus.enumerate_min_cuts(usize::MAX);
        if structural.len() as u128 != cactus.count_min_cuts() || structural != family {
            return None;
        }
        Some(cactus)
    }
}

#[cfg(test)]
mod tests {
    use super::super::CactusBuilder;
    use mincut_graph::generators::known;
    use mincut_graph::{CsrGraph, DeltaGraph};

    #[test]
    fn insert_repair_filters_to_the_nonseparated_cuts() {
        // C6 at λ = 2: 15 cuts. Inserting a chord {0, 3} kills every cut
        // separating 0 from 3; the survivors form the new family at λ = 2.
        let (g, l) = known::cycle_graph(6, 1);
        let old = CactusBuilder::new().build_with_lambda(&g, l).unwrap();
        let repaired = old.repaired_after_insert(0, 3).expect("repairable");
        let mut dg = DeltaGraph::new(g);
        dg.insert_edge(0, 3, 5);
        let fresh = CactusBuilder::new()
            .build_with_lambda(&dg.to_csr(), l)
            .unwrap();
        assert_eq!(repaired.count_min_cuts(), fresh.count_min_cuts());
        assert_eq!(
            repaired.enumerate_min_cuts(usize::MAX),
            fresh.enumerate_min_cuts(usize::MAX)
        );
    }

    #[test]
    fn crossing_delete_repair_keeps_the_separated_cuts() {
        // C6 with doubled weights: λ = 4. Deleting edge {0, 1} (w = 2)
        // drops λ to 2; survivors are the 0/1-separating cycle pairs.
        let (g, l) = known::cycle_graph(6, 2);
        let old = CactusBuilder::new().build_with_lambda(&g, l).unwrap();
        let repaired = old
            .repaired_after_crossing_delete(0, 1, l - 2)
            .expect("repairable");
        let mut dg = DeltaGraph::new(g);
        dg.delete_edge(0, 1).unwrap();
        let fresh = CactusBuilder::new()
            .build_with_lambda(&dg.to_csr(), l - 2)
            .unwrap();
        assert_eq!(
            repaired.enumerate_min_cuts(usize::MAX),
            fresh.enumerate_min_cuts(usize::MAX)
        );
    }

    #[test]
    fn internal_delete_repair_grows_the_family_from_one_residual() {
        // Square + heavy chord 0-2: λ = 2, cuts {1} and {3} only, with
        // 0 and 2 sharing a cactus node. Deleting the chord keeps λ = 2
        // but the 0/2-separating cuts rejoin the family (C4 has 6).
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]);
        let old = CactusBuilder::new().build_with_lambda(&g, 2).unwrap();
        assert_eq!(old.count_min_cuts(), 2);
        assert!(old.same_node(0, 2));
        let mut dg = DeltaGraph::new(g);
        dg.delete_edge(0, 2).unwrap();
        let now = dg.to_csr();
        let repaired = old
            .repaired_after_internal_delete(&now, 0, 2)
            .expect("repairable");
        let fresh = CactusBuilder::new().build_with_lambda(&now, 2).unwrap();
        assert_eq!(repaired.count_min_cuts(), 6);
        assert_eq!(
            repaired.enumerate_min_cuts(usize::MAX),
            fresh.enumerate_min_cuts(usize::MAX)
        );
    }

    #[test]
    fn internal_delete_repair_certifies_an_unchanged_family() {
        // Two communities, unique bridge cut; deleting an intra-clique
        // edge keeps λ and the u-v max flow stays above λ: the old
        // structure is reused as-is.
        let (g, l) = known::two_communities(5, 5, 1, 3, 2);
        let old = CactusBuilder::new().build_with_lambda(&g, l).unwrap();
        let mut dg = DeltaGraph::new(g);
        dg.delete_edge(0, 1).unwrap();
        let now = dg.to_csr();
        assert_eq!(sm_lambda(&now), l);
        let repaired = old
            .repaired_after_internal_delete(&now, 0, 1)
            .expect("repairable");
        assert_eq!(
            repaired.enumerate_min_cuts(usize::MAX),
            old.enumerate_min_cuts(usize::MAX)
        );
    }

    #[test]
    fn zero_lambda_insert_merges_two_component_nodes() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 2), (2, 3, 1), (4, 5, 3)]);
        let old = CactusBuilder::new().build_with_lambda(&g, 0).unwrap();
        assert_eq!(old.components(), 3);
        let repaired = old.repaired_merge_components(1, 2).expect("c > 2");
        assert_eq!(repaired.components(), 2);
        assert_eq!(repaired.count_min_cuts(), 1);
        assert!(repaired.same_node(0, 3));
        assert!(!repaired.same_node(0, 4));
        // c = 2: a joining insert connects the graph, λ rises — no merge.
        assert!(repaired.repaired_merge_components(0, 4).is_none());
    }

    fn sm_lambda(g: &CsrGraph) -> mincut_graph::EdgeWeight {
        known::brute_force_mincut(g)
    }
}
