//! Incremental minimum-cut maintenance over a mutating graph.
//!
//! The solvers of this crate answer one query on one frozen [`CsrGraph`];
//! a serving deployment also sees *changing* graphs — edges appear and
//! disappear between queries. [`DynamicMinCut`] maintains the current
//! `(λ, witness)` pair **exactly** across edge insertions and deletions
//! over a [`DeltaGraph`] overlay, re-solving only when an update can
//! actually change the answer — and then seeded through the existing
//! [`SolveOptions::initial_bound`] machinery so the re-solve starts from
//! a proven cut instead of cold.
//!
//! ## The four update cases
//!
//! Let `W` be the maintained witness cut with value λ, and let the
//! update touch edge `{u, v}` with weight `w`. Insertions only ever
//! raise cut values and deletions only ever lower them, which gives:
//!
//! | update | crosses `W`? | new λ | work |
//! |---|---|---|---|
//! | insert | no  | λ (W still optimal: no cut decreased) | O(Δ) |
//! | insert | yes | re-solve with bound λ + w (W now costs λ + w) | bounded solve |
//! | delete | yes | **λ − w exactly**, same witness | O(Δ) |
//! | delete | no  | re-solve with bound λ (W still costs λ) | bounded solve |
//!
//! The crossing-deletion case needs no re-solve at all: every cut loses
//! at most `w` (only cuts crossing `{u, v}` lose anything), so no cut
//! can drop below λ − w — and `W` lands on λ − w exactly. Deleting a
//! crossing bridge degenerates gracefully: λ − w = 0 and `W` is a
//! component side. Both re-solve cases run the full
//! [`Solver`](crate::Solver) preflight — kernelization pipeline seeded
//! with the bound, then the registered solver family on the
//! [compacted](DeltaGraph::compact) graph — so every registry family
//! works; the maintained value carries the family's guarantee (exact
//! families maintain λ exactly).
//!
//! ## Traces
//!
//! [`parse_trace`] reads the `mincut --stream` edge-trace format: one
//! operation per line, `i u v w` (insert), `d u v` (delete), `q`
//! (query), `qc` (count all minimum cuts), `qs u v` (a minimum cut
//! separating `u` from `v`), with `#`/`%` comments. Malformed lines are
//! [`MinCutError::TraceParse`] values carrying the line number.
//!
//! ## Cactus maintenance
//!
//! With [`DynamicMinCut::enable_cactus`] the maintainer also keeps the
//! [`Cactus`] of **all** minimum cuts current. Updates that provably
//! leave the family untouched are absorbed in O(1) — an insert whose
//! endpoints share a cactus node is crossed by *no* minimum cut, so no
//! cut value changes and (inserts only ever raise values) no new
//! minimum appears. Structure-crossing updates first try **edge-local
//! repair** ([`crate::cactus::repair`]): when the post-update family is
//! derivable from the old structure — cross-node inserts that kept λ
//! (the non-separating cuts survive), deletions crossed by some minimum
//! cut (λ − w exactly, the separating cuts survive), same-node
//! deletions that kept λ (old family plus the minimum u-v cuts of one
//! residual) — the cactus is reassembled from the derived family with
//! no enumeration flows, and the bijection is re-certified before the
//! repair is accepted. Only when no case applies (λ moved unexpectedly,
//! or certification failed) does the maintainer fall back to the full
//! rebuild ([`CactusBuilder::build_with_lambda`], no solver run).
//! `DynamicStats::{cactus_repairs, repair_fallbacks}` count the split;
//! [`DynamicMinCut::set_cactus_repair`] is the rebuild-only A/B knob.
//!
//! ```
//! use mincut_core::{DynamicMinCut, SolveOptions};
//! use mincut_graph::CsrGraph;
//!
//! // A square: λ = 2.
//! let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
//! let mut dyn_cut = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new()).unwrap();
//! assert_eq!(dyn_cut.lambda(), 2);
//!
//! // A heavy chord never lowers λ; crossing inserts re-solve bounded.
//! assert_eq!(dyn_cut.insert_edge(0, 2, 5).unwrap().lambda, 2);
//!
//! // Dropping 1–2 leaves vertex 1 hanging off one unit edge: λ = 1.
//! assert_eq!(dyn_cut.delete_edge(1, 2).unwrap().lambda, 1);
//! assert_eq!(dyn_cut.graph().cut_value(dyn_cut.witness()), 1);
//! ```

use std::io::BufRead;
use std::time::Instant;

use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, NodeId};

use crate::cactus::{Cactus, CactusBuilder};
use crate::error::MinCutError;
use crate::options::SolveOptions;
use crate::SolverRegistry;

/// One operation of an edge-update trace
/// (`i u v w` / `d u v` / `q` / `qc` / `qs u v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `i u v w`: insert the undirected edge `{u, v}` with weight `w`
    /// (merging with an existing edge by summing, the builder rule).
    Insert { u: NodeId, v: NodeId, w: EdgeWeight },
    /// `d u v`: delete the edge `{u, v}` entirely.
    Delete { u: NodeId, v: NodeId },
    /// `q`: report the current λ.
    Query,
    /// `qc`: report the number of distinct minimum cuts (needs a
    /// maintained cactus).
    QueryCount,
    /// `qs u v`: report a minimum cut separating `u` from `v`, or that
    /// none does (needs a maintained cactus).
    QuerySeparating { u: NodeId, v: NodeId },
}

/// Parses one trace line (1-based `lineno` for errors) against a graph
/// on `n` vertices. Returns `None` for blank and `#`/`%` comment lines.
pub fn parse_trace_op(line: &str, lineno: usize, n: usize) -> Result<Option<TraceOp>, MinCutError> {
    let err = |message: String| MinCutError::TraceParse {
        line: lineno,
        message,
    };
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut tok = t.split_whitespace();
    let op = tok.next().expect("non-empty line has a first token");
    let mut vertex = |what: &str| -> Result<NodeId, MinCutError> {
        let token = tok
            .next()
            .ok_or_else(|| err(format!("missing {what} vertex")))?;
        if token.starts_with('-') {
            return Err(err(format!("negative vertex id {token} not allowed")));
        }
        let id: u64 = token
            .parse()
            .map_err(|e| err(format!("invalid {what} vertex {token:?}: {e}")))?;
        if id >= n as u64 {
            return Err(err(format!("vertex {id} out of range 0..{n}")));
        }
        Ok(id as NodeId)
    };
    let parsed = match op {
        "i" => {
            let u = vertex("source")?;
            let v = vertex("target")?;
            let token = tok.next().ok_or_else(|| err("missing weight".into()))?;
            if token.starts_with('-') {
                return Err(err(format!("negative weight {token} not allowed")));
            }
            let w: EdgeWeight = token
                .parse()
                .map_err(|e| err(format!("invalid weight {token:?}: {e}")))?;
            if w == 0 {
                return Err(err("zero-weight insert not allowed".into()));
            }
            if u == v {
                return Err(err(format!("self-loop on vertex {u} not allowed")));
            }
            TraceOp::Insert { u, v, w }
        }
        "d" => {
            let u = vertex("source")?;
            let v = vertex("target")?;
            if u == v {
                return Err(err(format!("self-loop on vertex {u} not allowed")));
            }
            TraceOp::Delete { u, v }
        }
        "q" => TraceOp::Query,
        "qc" => TraceOp::QueryCount,
        "qs" => {
            let u = vertex("source")?;
            let v = vertex("target")?;
            if u == v {
                return Err(err(format!(
                    "separating query needs two distinct vertices, got {u} twice"
                )));
            }
            TraceOp::QuerySeparating { u, v }
        }
        other => {
            return Err(err(format!(
                "unknown operation {other:?} (expected i, d, q, qc or qs)"
            )))
        }
    };
    if let Some(extra) = tok.next() {
        return Err(err(format!("unexpected trailing token {extra:?}")));
    }
    Ok(Some(parsed))
}

/// Parses a whole trace: one [`TraceOp`] per non-comment line.
pub fn parse_trace<R: BufRead>(reader: R, n: usize) -> Result<Vec<TraceOp>, MinCutError> {
    let mut ops = Vec::new();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| MinCutError::TraceParse {
            line: no + 1,
            message: format!("I/O error: {e}"),
        })?;
        if let Some(op) = parse_trace_op(&line, no + 1, n)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// What one applied update reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The maintained cut value after the update.
    pub lambda: EdgeWeight,
    /// Whether a solver ran (`false`: the update was absorbed in O(Δ)).
    pub resolved: bool,
    /// The graph epoch after the update (unchanged for [`TraceOp::Query`]).
    pub epoch: u64,
}

/// Cumulative counters of one [`DynamicMinCut`]'s lifetime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicStats {
    pub insertions: u64,
    pub deletions: u64,
    pub queries: u64,
    /// Updates absorbed in O(Δ) without running a solver.
    pub incremental: u64,
    /// Bound-seeded re-solves (including the initial solve).
    pub resolves: u64,
    /// Wall-clock spent inside re-solves.
    pub resolve_seconds: f64,
    /// Cactus rebuilds triggered by updates (cactus maintenance on).
    pub cactus_rebuilds: u64,
    /// Updates absorbed with the cactus provably unchanged.
    pub cactus_absorbed: u64,
    /// Structure-crossing updates resolved by edge-local repair —
    /// deriving the new family from the old structure instead of
    /// re-enumerating it (see [`crate::cactus::repair`]).
    pub cactus_repairs: u64,
    /// Repair attempts that could not certify the bijection and fell
    /// back to a full rebuild (each also counts in `cactus_rebuilds`).
    pub repair_fallbacks: u64,
    /// Wall-clock spent repairing and rebuilding cacti.
    pub cactus_seconds: f64,
}

impl DynamicStats {
    /// One JSON object, matching the other hand-rolled emitters of this
    /// offline build.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"insertions\":{},\"deletions\":{},\"queries\":{},\"incremental\":{},\
             \"resolves\":{},\"resolve_seconds\":{:.9},\"cactus_rebuilds\":{},\
             \"cactus_absorbed\":{},\"cactus_repairs\":{},\"repair_fallbacks\":{},\
             \"cactus_seconds\":{:.9}}}",
            self.insertions,
            self.deletions,
            self.queries,
            self.incremental,
            self.resolves,
            self.resolve_seconds,
            self.cactus_rebuilds,
            self.cactus_absorbed,
            self.cactus_repairs,
            self.repair_fallbacks,
            self.cactus_seconds
        )
    }
}

/// Maintains `(λ, witness)` exactly across edge updates: see the
/// [module docs](self) for the case analysis.
pub struct DynamicMinCut {
    graph: DeltaGraph,
    solver: String,
    opts: SolveOptions,
    lambda: EdgeWeight,
    /// Witness side of `lambda` over the (fixed) vertex set. Always
    /// tracked — the crossing test is the heart of the maintenance — so
    /// [`SolveOptions::witness`] is forced on internally.
    side: Vec<bool>,
    stats: DynamicStats,
    /// The maintained cactus of all minimum cuts, when
    /// [`enable_cactus`](DynamicMinCut::enable_cactus) switched the mode
    /// on. Kept in lock-step with `(λ, witness)` by edge-local repair
    /// ([`crate::cactus::repair`]) with
    /// [`refresh_cactus`](DynamicMinCut::refresh_cactus) as the
    /// fallback.
    cactus: Option<Cactus>,
    /// Whether structure-crossing updates try edge-local repair before
    /// rebuilding (on by default; the A/B knob of
    /// [`set_cactus_repair`](DynamicMinCut::set_cactus_repair)).
    repair_cactus: bool,
    /// Set when a re-solve failed *after* its mutation was applied: the
    /// graph and `(λ, witness)` are out of sync, so every further
    /// operation is refused instead of serving a silently wrong λ.
    poisoned: Option<String>,
}

impl DynamicMinCut {
    /// Wraps `graph` and runs the initial solve with the named registry
    /// solver under `opts` (`witness` is forced on; an
    /// `initial_bound` in `opts` seeds only this first solve).
    pub fn new(
        graph: impl Into<DeltaGraph>,
        solver: &str,
        opts: SolveOptions,
    ) -> Result<Self, MinCutError> {
        let mut opts = opts;
        opts.witness = true;
        opts.validate()?;
        // Resolve now so a typo fails at construction, not mid-trace.
        SolverRegistry::global().resolve(solver)?;
        let mut this = DynamicMinCut {
            graph: graph.into(),
            solver: solver.to_string(),
            opts,
            lambda: 0,
            side: Vec::new(),
            stats: DynamicStats::default(),
            cactus: None,
            repair_cactus: true,
            poisoned: None,
        };
        this.resolve(None)?;
        this.opts.initial_bound = None; // the caller's bound was one-shot
        Ok(this)
    }

    /// Current maintained cut value.
    #[inline]
    pub fn lambda(&self) -> EdgeWeight {
        self.lambda
    }

    /// Witness side of [`lambda`](DynamicMinCut::lambda) over the vertex
    /// set; always a proper cut of the current graph whose
    /// [`cut_value`](DeltaGraph::cut_value) equals λ.
    #[inline]
    pub fn witness(&self) -> &[bool] {
        &self.side
    }

    /// The underlying dynamic graph.
    #[inline]
    pub fn graph(&self) -> &DeltaGraph {
        &self.graph
    }

    /// Current graph epoch (mutations applied so far).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Lifetime counters.
    #[inline]
    pub fn stats(&self) -> &DynamicStats {
        &self.stats
    }

    /// Mutable access to the options future re-solves run under (e.g. to
    /// adjust threads or the time budget mid-stream). Witness tracking
    /// stays forced on regardless of what is set here.
    pub fn options_mut(&mut self) -> &mut SolveOptions {
        &mut self.opts
    }

    /// The registry solver name re-solves run.
    #[inline]
    pub fn solver(&self) -> &str {
        &self.solver
    }

    /// Switches cactus maintenance on, building the cactus of all
    /// minimum cuts for the current graph from the maintained λ (no
    /// solver run). Subsequent updates keep it current — see the
    /// [module docs](self) for the absorb/rebuild policy. Idempotent.
    pub fn enable_cactus(&mut self) -> Result<&Cactus, MinCutError> {
        self.check_consistent()?;
        if self.cactus.is_none() {
            let t0 = Instant::now();
            let csr = self.graph.to_csr();
            let cactus = CactusBuilder::new().build_with_lambda(&csr, self.lambda)?;
            self.stats.cactus_rebuilds += 1;
            self.stats.cactus_seconds += t0.elapsed().as_secs_f64();
            self.cactus = Some(cactus);
        }
        Ok(self.cactus.as_ref().expect("just built"))
    }

    /// The maintained cactus, when cactus maintenance is on.
    #[inline]
    pub fn cactus(&self) -> Option<&Cactus> {
        self.cactus.as_ref()
    }

    /// Number of distinct minimum cuts of the current graph.
    /// Errors with [`MinCutError::CactusUnavailable`] unless
    /// [`enable_cactus`](DynamicMinCut::enable_cactus) was called.
    pub fn count_min_cuts(&self) -> Result<u128, MinCutError> {
        self.check_consistent()?;
        Ok(self.require_cactus()?.count_min_cuts())
    }

    /// A minimum cut separating `u` from `v` (side bitmap with
    /// `side[u] == true`), or `None` when no minimum cut separates them.
    /// Needs cactus maintenance on, like
    /// [`count_min_cuts`](DynamicMinCut::count_min_cuts).
    pub fn min_cut_separating(
        &self,
        u: NodeId,
        v: NodeId,
    ) -> Result<Option<Vec<bool>>, MinCutError> {
        self.check_consistent()?;
        self.check_endpoints(u, v)?;
        Ok(self.require_cactus()?.min_cut_separating(u, v))
    }

    fn require_cactus(&self) -> Result<&Cactus, MinCutError> {
        self.cactus
            .as_ref()
            .ok_or_else(|| MinCutError::CactusUnavailable {
                message: "enable cactus maintenance first (DynamicMinCut::enable_cactus, \
                      or --cactus on the CLI)"
                    .to_string(),
            })
    }

    /// Why this maintainer refuses further operations, if a re-solve
    /// failed after its mutation was applied (`None`: consistent). A
    /// poisoned maintainer must be rebuilt with [`DynamicMinCut::new`].
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Errors when the maintainer is [poisoned](DynamicMinCut::poisoned):
    /// the graph holds an update whose re-solve failed, so the maintained
    /// `(λ, witness)` no longer describes it. Checked by every operation
    /// (and by the service before serving λ) so a failed re-solve can
    /// never turn into a silently wrong answer.
    pub fn check_consistent(&self) -> Result<(), MinCutError> {
        match &self.poisoned {
            None => Ok(()),
            Some(why) => Err(MinCutError::InvalidUpdate {
                message: format!(
                    "maintainer poisoned by a failed re-solve ({why}); rebuild it from the \
                     current graph"
                ),
            }),
        }
    }

    /// Applies one trace operation, classifying how the maintained
    /// cactus handled it (stats-counter deltas around the op) into an
    /// observability instant event plus a flight-recorder entry.
    pub fn apply(&mut self, op: &TraceOp) -> Result<UpdateReport, MinCutError> {
        let before = (
            self.stats.cactus_absorbed,
            self.stats.cactus_repairs,
            self.stats.repair_fallbacks,
            self.stats.cactus_rebuilds,
        );
        let (op_name, ou, ov) = match *op {
            TraceOp::Insert { u, v, .. } => ("insert", Some(u), Some(v)),
            TraceOp::Delete { u, v } => ("delete", Some(u), Some(v)),
            TraceOp::Query => ("query", None, None),
            TraceOp::QueryCount => ("query-count", None, None),
            TraceOp::QuerySeparating { u, v } => ("query-separating", Some(u), Some(v)),
        };
        let result = match *op {
            TraceOp::Insert { u, v, w } => self.insert_edge(u, v, w),
            TraceOp::Delete { u, v } => self.delete_edge(u, v),
            TraceOp::Query => {
                self.check_consistent()?;
                self.stats.queries += 1;
                Ok(self.report(false))
            }
            TraceOp::QueryCount => {
                self.count_min_cuts()?;
                self.stats.queries += 1;
                Ok(self.report(false))
            }
            TraceOp::QuerySeparating { u, v } => {
                self.min_cut_separating(u, v)?;
                self.stats.queries += 1;
                Ok(self.report(false))
            }
        };
        // Which cactus-maintenance path the op took, from the counter
        // deltas. A repair fallback also bumps `cactus_rebuilds`, so
        // the fallback test precedes the rebuild test.
        let cactus = if self.stats.cactus_absorbed > before.0 {
            "absorb"
        } else if self.stats.cactus_repairs > before.1 {
            "repair"
        } else if self.stats.repair_fallbacks > before.2 {
            "fallback-rebuild"
        } else if self.stats.cactus_rebuilds > before.3 {
            "rebuild"
        } else {
            "none"
        };
        match &result {
            Ok(report) => {
                let mut ev = mincut_obs::instant("dynamic/update")
                    .arg("op", op_name)
                    .arg("lambda", report.lambda)
                    .arg("resolved", report.resolved)
                    .arg("cactus", cactus);
                if let (Some(u), Some(v)) = (ou, ov) {
                    ev = ev.arg("u", u).arg("v", v);
                }
                drop(ev);
                mincut_obs::flight().record(
                    "dynamic",
                    format!("{op_name} -> lambda {} (cactus: {cactus})", report.lambda),
                );
            }
            Err(e) => {
                mincut_obs::flight().record("dynamic", format!("{op_name} failed: {e}"));
            }
        }
        result
    }

    /// Inserts the edge `{u, v}` with weight `w` and updates `(λ,
    /// witness)`: no work beyond the overlay write unless the edge
    /// crosses the witness, in which case a re-solve runs with
    /// `initial_bound = λ + w`.
    pub fn insert_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        w: EdgeWeight,
    ) -> Result<UpdateReport, MinCutError> {
        self.check_consistent()?;
        self.check_endpoints(u, v)?;
        if w == 0 {
            return Err(MinCutError::InvalidUpdate {
                message: format!("zero-weight insert on edge ({u},{v})"),
            });
        }
        let crossing = self.side[u as usize] != self.side[v as usize];
        let old_lambda = self.lambda;
        // Absorb test *before* the mutation: endpoints sharing a cactus
        // node are crossed by no minimum cut, so no cut value changes
        // and (inserts only raise values) no new minimum appears.
        let absorb = self
            .cactus
            .as_ref()
            .map(|c| c.same_node(u, v))
            .unwrap_or(false);
        self.graph.insert_edge(u, v, w);
        self.stats.insertions += 1;
        if crossing {
            // The old witness is still a real cut, now of value λ + w:
            // the exact upper bound the re-solve starts from.
            let bound = self.lambda + w;
            let side = self.side.clone();
            self.resolve(Some((bound, side)))?;
        } else {
            // No cut got cheaper and the witness kept its value: λ holds.
            self.stats.incremental += 1;
        }
        if absorb {
            self.stats.cactus_absorbed += 1;
        } else {
            self.update_cactus_after_insert(u, v, old_lambda)?;
        }
        Ok(self.report(crossing))
    }

    /// Deletes the edge `{u, v}` and updates `(λ, witness)`: a crossing
    /// deletion lands on λ − w with the same witness **without solving**
    /// (no cut can lose more than w); a non-crossing deletion re-solves
    /// with `initial_bound = λ` (the witness kept its value but some
    /// other cut may now be cheaper).
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReport, MinCutError> {
        self.check_consistent()?;
        self.check_endpoints(u, v)?;
        let crossing = self.side[u as usize] != self.side[v as usize];
        let old_lambda = self.lambda;
        // Classify against the cactus *before* the mutation: different
        // nodes certify a separating minimum cut (the surviving family
        // is then derivable locally); one shared node certifies none.
        let separated = self.cactus.as_ref().map(|c| !c.same_node(u, v));
        let Some(w) = self.graph.delete_edge(u, v) else {
            return Err(MinCutError::InvalidUpdate {
                message: format!("no edge ({u},{v}) to delete"),
            });
        };
        self.stats.deletions += 1;
        let report = if crossing {
            // Exact: every cut loses at most w, the witness loses exactly
            // w. (λ ≥ w always holds here: the witness's crossing weight
            // is λ and includes this edge.)
            self.lambda -= w;
            self.stats.incremental += 1;
            self.report(false)
        } else {
            let side = self.side.clone();
            self.resolve(Some((self.lambda, side)))?;
            self.report(true)
        };
        match separated {
            None => {}
            Some(true) => self.update_cactus_after_crossing_delete(u, v, w, old_lambda)?,
            Some(false) => self.update_cactus_after_internal_delete(u, v, old_lambda)?,
        }
        Ok(report)
    }

    /// Cactus update for an insert across two cactus nodes. When λ kept
    /// its value, the new family is exactly the old cuts not separating
    /// `u, v` (λ > 0), or the component merge (λ = 0) — derived locally
    /// with no flow run. Anything else falls back to the rebuild.
    fn update_cactus_after_insert(
        &mut self,
        u: NodeId,
        v: NodeId,
        old_lambda: EdgeWeight,
    ) -> Result<(), MinCutError> {
        if self.cactus.is_none() {
            return Ok(());
        }
        if !self.repair_cactus {
            return self.refresh_cactus();
        }
        let t0 = Instant::now();
        let repaired = (self.lambda == old_lambda)
            .then(|| {
                let c = self.cactus.as_ref().expect("cactus maintenance is on");
                if old_lambda == 0 {
                    c.repaired_merge_components(u, v)
                } else {
                    c.repaired_after_insert(u, v)
                }
            })
            .flatten();
        self.commit_repair(repaired, t0)
    }

    /// Cactus update for a deletion whose endpoints sat in different
    /// cactus nodes: some minimum cut separates them, so λ drops to
    /// λ − w exactly and the old separating cuts are the whole new
    /// family — derivable from the structure alone. λ − w = 0 (the
    /// graph disconnected) falls back to the cheap component rebuild.
    fn update_cactus_after_crossing_delete(
        &mut self,
        u: NodeId,
        v: NodeId,
        w: EdgeWeight,
        old_lambda: EdgeWeight,
    ) -> Result<(), MinCutError> {
        if self.cactus.is_none() {
            return Ok(());
        }
        if !self.repair_cactus {
            return self.refresh_cactus();
        }
        let t0 = Instant::now();
        let repaired = (old_lambda >= w && self.lambda == old_lambda - w)
            .then(|| {
                self.cactus
                    .as_ref()
                    .expect("cactus maintenance is on")
                    .repaired_after_crossing_delete(u, v, self.lambda)
            })
            .flatten();
        self.commit_repair(repaired, t0)
    }

    /// Cactus update for a deletion inside one cactus node. When λ kept
    /// its value the old family survives whole and one conservation max
    /// flow over the current graph either certifies it unchanged or
    /// hands over every joining cut; a λ drop falls back to the rebuild.
    fn update_cactus_after_internal_delete(
        &mut self,
        u: NodeId,
        v: NodeId,
        old_lambda: EdgeWeight,
    ) -> Result<(), MinCutError> {
        if self.cactus.is_none() {
            return Ok(());
        }
        if !self.repair_cactus {
            return self.refresh_cactus();
        }
        let t0 = Instant::now();
        let repaired = if old_lambda > 0 && self.lambda == old_lambda {
            // The non-crossing re-solve already compacted the overlay,
            // so this is a cheap no-op handing back the current CSR.
            let g = self.graph.compact();
            self.cactus
                .as_ref()
                .expect("cactus maintenance is on")
                .repaired_after_internal_delete(g, u, v)
        } else {
            None
        };
        self.commit_repair(repaired, t0)
    }

    /// Installs a certified repair, or counts the fallback and rebuilds.
    fn commit_repair(&mut self, repaired: Option<Cactus>, t0: Instant) -> Result<(), MinCutError> {
        match repaired {
            Some(cactus) => {
                self.cactus = Some(cactus);
                self.stats.cactus_repairs += 1;
                self.stats.cactus_seconds += t0.elapsed().as_secs_f64();
                Ok(())
            }
            None => {
                self.stats.repair_fallbacks += 1;
                self.refresh_cactus()
            }
        }
    }

    /// Switches edge-local cactus repair off (`false`: every
    /// structure-crossing update rebuilds from scratch, the pre-repair
    /// behaviour) or back on. The A/B knob of `cactus_bench`; repair is
    /// on by default and maintains the identical structure.
    pub fn set_cactus_repair(&mut self, enabled: bool) {
        self.repair_cactus = enabled;
    }

    /// Re-solves `(λ, witness)` — and the cactus, when maintenance is
    /// on — from the **current** `DeltaGraph` state, clearing the
    /// poison a failed re-solve left behind. This is the recovery path
    /// for a [poisoned](DynamicMinCut::poisoned) maintainer: fix what
    /// made the re-solve fail (e.g. widen the time budget via
    /// [`options_mut`](DynamicMinCut::options_mut)), then `rebuild()`
    /// instead of reconstructing the whole maintainer. A failure here
    /// re-poisons — the graph still has no valid `(λ, witness)`.
    pub fn rebuild(&mut self) -> Result<UpdateReport, MinCutError> {
        self.poisoned = None;
        self.resolve(None)?;
        if self.cactus.is_some() {
            self.refresh_cactus()?;
        }
        Ok(self.report(true))
    }

    /// Rebuilds the maintained cactus from the current graph and λ
    /// (no-op when cactus maintenance is off).
    fn refresh_cactus(&mut self) -> Result<(), MinCutError> {
        if self.cactus.is_none() {
            return Ok(());
        }
        let t0 = Instant::now();
        let csr = self.graph.to_csr();
        let cactus = CactusBuilder::new().build_with_lambda(&csr, self.lambda)?;
        self.stats.cactus_rebuilds += 1;
        self.stats.cactus_seconds += t0.elapsed().as_secs_f64();
        self.cactus = Some(cactus);
        Ok(())
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), MinCutError> {
        let n = self.graph.n();
        if (u as usize) >= n || (v as usize) >= n {
            return Err(MinCutError::InvalidUpdate {
                message: format!("edge ({u},{v}) out of range for n={n}"),
            });
        }
        if u == v {
            return Err(MinCutError::InvalidUpdate {
                message: format!("self-loop on vertex {u} not allowed"),
            });
        }
        Ok(())
    }

    fn report(&self, resolved: bool) -> UpdateReport {
        UpdateReport {
            lambda: self.lambda,
            resolved,
            epoch: self.graph.epoch(),
        }
    }

    /// Compacts the overlay and runs the registered solver on the
    /// resulting [`CsrGraph`], seeded with `bound` (a proven cut of the
    /// *current* graph) through the standard preflight — kernelization
    /// pipeline included. A failure here (time budget, bad options)
    /// lands *after* the triggering mutation was applied, so it poisons
    /// the maintainer: `(λ, witness)` no longer describes the graph and
    /// every later operation is refused (see
    /// [`check_consistent`](DynamicMinCut::check_consistent)).
    fn resolve(&mut self, bound: Option<(EdgeWeight, Vec<bool>)>) -> Result<(), MinCutError> {
        self.graph.compact();
        let mut opts = self.opts.clone();
        opts.witness = true;
        if let Some((b, side)) = bound {
            debug_assert_eq!(
                self.graph.cut_value(&side),
                b,
                "seed bound must be the exact value of its witness"
            );
            opts.initial_bound = Some((b, Some(side)));
        }
        let solved = SolverRegistry::global()
            .resolve(&self.solver)
            .and_then(|solver| solver.solve(self.graph.base(), &opts))
            .and_then(|out| {
                out.cut
                    .side
                    .ok_or_else(|| MinCutError::InvalidUpdate {
                        message: format!(
                            "solver {} returned no witness; dynamic maintenance needs one",
                            self.solver
                        ),
                    })
                    .map(|side| (out.cut.value, side, out.stats.total_seconds))
            });
        match solved {
            Ok((lambda, side, seconds)) => {
                self.stats.resolves += 1;
                self.stats.resolve_seconds += seconds;
                self.lambda = lambda;
                self.side = side;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.to_string());
                mincut_obs::flight().record(
                    "dynamic",
                    format!("maintainer poisoned by failed re-solve: {e}"),
                );
                mincut_obs::flight().dump_to_stderr("dynamic maintainer poisoning");
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for DynamicMinCut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicMinCut")
            .field("solver", &self.solver)
            .field("lambda", &self.lambda)
            .field("epoch", &self.graph.epoch())
            .finish()
    }
}

/// Materialises the current state of a [`DeltaGraph`] as a fresh
/// [`CsrGraph`] without mutating it — a convenience alias for
/// [`DeltaGraph::to_csr`] (the maintainer itself uses
/// [`DeltaGraph::compact`]).
pub fn materialize(g: &DeltaGraph) -> CsrGraph {
    g.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;
    use std::io::Cursor;

    #[test]
    fn trace_parser_accepts_the_documented_format() {
        let text = "# comment\n\ni 0 1 3\nd 2 3\nq\n% tail comment\n";
        let ops = parse_trace(Cursor::new(text), 5).unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp::Insert { u: 0, v: 1, w: 3 },
                TraceOp::Delete { u: 2, v: 3 },
                TraceOp::Query,
            ]
        );
    }

    #[test]
    fn trace_parser_rejections_carry_line_numbers() {
        for (text, needle) in [
            ("x 0 1\n", "unknown operation"),
            ("i 0 1\n", "missing weight"),
            ("i 0 9 1\n", "out of range"),
            ("d 9 0\n", "out of range"),
            ("i 0 1 -3\n", "negative"),
            ("d -1 0\n", "negative"),
            ("i 0 1 0\n", "zero-weight"),
            ("i 2 2 1\n", "self-loop"),
            ("d 2 2\n", "self-loop"),
            ("q extra\n", "trailing"),
            ("i 0 1 2 9\n", "trailing"),
            ("d 0\n", "missing target"),
            ("i a 1 2\n", "invalid source"),
        ] {
            let err = parse_trace(Cursor::new(format!("q\n{text}")), 5).expect_err(text);
            match err {
                MinCutError::TraceParse { line, message } => {
                    assert_eq!(line, 2, "{text:?}");
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn maintained_lambda_tracks_every_update_case() {
        // Square 0-1-2-3, λ = 2.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let mut dm = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new().seed(3)).unwrap();
        assert_eq!(dm.lambda(), 2);
        assert_eq!(dm.graph().cut_value(dm.witness()), 2);

        // Heavy chord: λ stays 2 whatever the witness was.
        let r = dm.insert_edge(0, 2, 5).unwrap();
        assert_eq!(r.lambda, 2);

        // Drop 1-2: vertex 1 hangs off 0 alone → λ = 1.
        let r = dm.delete_edge(1, 2).unwrap();
        assert_eq!(r.lambda, 1);
        assert_eq!(dm.graph().cut_value(dm.witness()), 1);

        // Drop 0-1: vertex 1 isolated → disconnected, λ = 0.
        let r = dm.delete_edge(0, 1).unwrap();
        assert_eq!(r.lambda, 0);
        assert!(dm.graph().is_proper_cut(dm.witness()));
        assert_eq!(dm.graph().cut_value(dm.witness()), 0);

        // Reconnect 1 with weight 4: λ = min over cuts; {1} costs 4,
        // {3} costs 1+5? 3 has edges 2-3 (1), 3-0 (1) → 2. λ = 2.
        let r = dm.insert_edge(1, 2, 4).unwrap();
        assert_eq!(r.lambda, 2);
        assert_eq!(dm.graph().cut_value(dm.witness()), 2);
        assert_eq!(dm.epoch(), 4);
        assert_eq!(dm.stats().insertions, 2);
        assert_eq!(dm.stats().deletions, 2);
        assert!(dm.stats().resolves >= 1);
        assert!(dm.stats().to_json().starts_with('{'));
    }

    #[test]
    fn crossing_deletion_is_incremental_and_exact() {
        // Two heavy communities joined by one weight-2 bridge: every
        // solver's witness is the community split, so deleting the
        // bridge is a crossing deletion → λ 2 → 0 without a solve.
        let (g, l) = known::two_communities(6, 6, 1, 2, 3);
        assert_eq!(l, 3);
        let mut dm = DynamicMinCut::new(g, "stoer-wagner", SolveOptions::new()).unwrap();
        let resolves_before = dm.stats().resolves;
        let r = dm.delete_edge(0, 6).unwrap(); // the planted bridge
        assert_eq!(r.lambda, 0);
        assert!(!r.resolved);
        assert_eq!(dm.stats().resolves, resolves_before, "no solver ran");
        assert_eq!(dm.stats().incremental, 1);
        assert_eq!(materialize(dm.graph()).cut_value(dm.witness()), 0);
    }

    #[test]
    fn invalid_updates_are_errors_and_leave_state_untouched() {
        let (g, l) = known::cycle_graph(5, 2);
        let mut dm = DynamicMinCut::new(g, "noi", SolveOptions::new()).unwrap();
        let epoch = dm.epoch();
        assert!(matches!(
            dm.insert_edge(0, 0, 1),
            Err(MinCutError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            dm.insert_edge(0, 9, 1),
            Err(MinCutError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            dm.insert_edge(0, 2, 0),
            Err(MinCutError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            dm.delete_edge(0, 2), // chord absent in a cycle
            Err(MinCutError::InvalidUpdate { .. })
        ));
        assert_eq!(dm.epoch(), epoch);
        assert_eq!(dm.lambda(), l);
    }

    #[test]
    fn failed_resolve_poisons_the_maintainer_instead_of_serving_stale_lambda() {
        let (g, l) = known::two_communities(6, 6, 1, 2, 1); // bridge (0,6)
        let mut dm = DynamicMinCut::new(g, "noi", SolveOptions::new()).unwrap();
        assert_eq!(dm.lambda(), l);
        assert!(dm.poisoned().is_none());

        // Make the next re-solve fail: a crossing insert mutates the
        // graph first, then the zero budget trips inside the solve.
        dm.options_mut().time_budget = Some(std::time::Duration::ZERO);
        let err = dm.insert_edge(1, 7, 1).unwrap_err();
        assert!(matches!(err, MinCutError::TimeBudgetExceeded { .. }));

        // The mutation stuck but (λ, witness) did not: every further
        // operation is refused rather than answered wrongly.
        assert!(dm.poisoned().is_some());
        for result in [
            dm.apply(&TraceOp::Query),
            dm.insert_edge(2, 8, 1),
            dm.delete_edge(0, 6),
        ] {
            match result {
                Err(MinCutError::InvalidUpdate { message }) => {
                    assert!(message.contains("poisoned"), "{message}")
                }
                other => panic!("expected poisoned error, got {other:?}"),
            }
        }
        assert!(dm.check_consistent().is_err());
    }

    #[test]
    fn trace_parser_accepts_cactus_queries() {
        let ops = parse_trace(Cursor::new("qc\nqs 0 3\n"), 5).unwrap();
        assert_eq!(
            ops,
            vec![TraceOp::QueryCount, TraceOp::QuerySeparating { u: 0, v: 3 }]
        );
        for (text, needle) in [
            ("qs 0\n", "missing target"),
            ("qs 0 9\n", "out of range"),
            ("qs 2 2\n", "distinct"),
            ("qc 1\n", "trailing"),
            ("qs 0 1 2\n", "trailing"),
        ] {
            let err = parse_trace(Cursor::new(text), 5).expect_err(text);
            match err {
                MinCutError::TraceParse { line, message } => {
                    assert_eq!(line, 1, "{text:?}");
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn cactus_queries_without_maintenance_are_errors() {
        let (g, _) = known::cycle_graph(5, 1);
        let mut dm = DynamicMinCut::new(g, "noi", SolveOptions::new()).unwrap();
        assert!(matches!(
            dm.count_min_cuts(),
            Err(MinCutError::CactusUnavailable { .. })
        ));
        assert!(matches!(
            dm.apply(&TraceOp::QueryCount),
            Err(MinCutError::CactusUnavailable { .. })
        ));
        assert!(matches!(
            dm.apply(&TraceOp::QuerySeparating { u: 0, v: 2 }),
            Err(MinCutError::CactusUnavailable { .. })
        ));
        assert!(dm.cactus().is_none());
    }

    #[test]
    fn maintained_cactus_tracks_updates_and_absorbs_internal_inserts() {
        // Square 0-1-2-3: λ = 2, every vertex its own cactus node.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let mut dm = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new()).unwrap();
        assert_eq!(dm.enable_cactus().unwrap().count_min_cuts(), 6); // C4
        assert_eq!(dm.count_min_cuts().unwrap(), 6);
        let builds_after_enable = dm.stats().cactus_rebuilds;

        // Heavy chord 0-2 kills every cut separating 0 from 2: only the
        // two cuts isolating 1 or 3 survive — a structure-crossing
        // insert with λ unchanged, resolved by local repair, no rebuild.
        dm.insert_edge(0, 2, 5).unwrap();
        assert_eq!(dm.count_min_cuts().unwrap(), 2);
        assert_eq!(dm.stats().cactus_repairs, 1);
        assert_eq!(dm.stats().cactus_rebuilds, builds_after_enable);

        // Now 0 and 2 share a cactus node: a parallel edge between them
        // is absorbed without a rebuild.
        let builds = dm.stats().cactus_rebuilds;
        assert!(dm.cactus().unwrap().same_node(0, 2));
        dm.insert_edge(0, 2, 1).unwrap();
        assert_eq!(dm.stats().cactus_rebuilds, builds, "absorbed, no rebuild");
        assert_eq!(dm.stats().cactus_absorbed, 1);
        assert_eq!(dm.count_min_cuts().unwrap(), 2);

        // Deleting 1-2 leaves vertex 1 hanging: λ = 1, one unique cut.
        // The cut {1} separated the endpoints, so λ dropped by exactly w
        // and the separating cuts survive: local repair again.
        dm.delete_edge(1, 2).unwrap();
        assert_eq!(dm.lambda(), 1);
        assert_eq!(dm.count_min_cuts().unwrap(), 1);
        assert_eq!(dm.stats().cactus_repairs, 2);
        let side = dm.min_cut_separating(1, 3).unwrap().unwrap();
        assert!(side[1] && !side[3]);
        assert_eq!(materialize(dm.graph()).cut_value(&side), 1);
        assert_eq!(dm.min_cut_separating(0, 2).unwrap(), None);

        // Every step after enabling kept the cactus in lock-step: a
        // from-scratch build over the current graph agrees.
        let fresh = CactusBuilder::new()
            .build_with_lambda(&materialize(dm.graph()), dm.lambda())
            .unwrap();
        assert_eq!(
            fresh.count_min_cuts(),
            dm.count_min_cuts().unwrap(),
            "maintained == rebuilt"
        );
        assert_eq!(
            dm.stats().cactus_rebuilds,
            builds_after_enable,
            "every structure-crossing update resolved via local repair"
        );
        assert_eq!(dm.stats().repair_fallbacks, 0);
        assert!(dm.stats().to_json().contains("\"cactus_rebuilds\""));
        assert!(dm.stats().to_json().contains("\"cactus_repairs\""));
    }

    #[test]
    fn rebuild_only_mode_maintains_the_identical_structure() {
        // The A/B knob: with repair off every structure-crossing update
        // rebuilds, and the maintained family must be identical.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let mut on = DynamicMinCut::new(g.clone(), "noi-viecut", SolveOptions::new()).unwrap();
        let mut off = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new()).unwrap();
        on.enable_cactus().unwrap();
        off.enable_cactus().unwrap();
        off.set_cactus_repair(false);
        for op in [
            TraceOp::Insert { u: 0, v: 2, w: 5 },
            TraceOp::Delete { u: 1, v: 2 },
            TraceOp::Insert { u: 1, v: 3, w: 1 },
        ] {
            on.apply(&op).unwrap();
            off.apply(&op).unwrap();
            assert_eq!(on.lambda(), off.lambda(), "{op:?}");
            assert_eq!(
                on.cactus().unwrap().enumerate_min_cuts(usize::MAX),
                off.cactus().unwrap().enumerate_min_cuts(usize::MAX),
                "{op:?}"
            );
        }
        assert!(on.stats().cactus_repairs > 0, "repair mode repaired");
        assert_eq!(off.stats().cactus_repairs, 0, "rebuild-only never repairs");
        assert_eq!(off.stats().repair_fallbacks, 0, "no attempts counted");
    }

    #[test]
    fn rebuild_clears_poison_and_resumes_service() {
        let (g, l) = known::two_communities(6, 6, 1, 2, 1); // bridge (0,6)
        let mut dm = DynamicMinCut::new(g, "noi", SolveOptions::new()).unwrap();
        dm.enable_cactus().unwrap();
        assert_eq!(dm.lambda(), l);

        // Poison: the crossing insert mutates, then the re-solve trips
        // on the zero budget.
        dm.options_mut().time_budget = Some(std::time::Duration::ZERO);
        dm.insert_edge(1, 7, 1).unwrap_err();
        assert!(dm.poisoned().is_some());
        assert!(dm.check_consistent().is_err());

        // Fix the cause, rebuild from the current graph: poison clears,
        // λ reflects the stuck mutation, and service resumes — cactus
        // included.
        dm.options_mut().time_budget = None;
        let report = dm.rebuild().unwrap();
        assert!(dm.poisoned().is_none());
        assert_eq!(report.lambda, l + 1, "the poisoned insert did stick");
        assert_eq!(dm.lambda(), l + 1);
        assert_eq!(dm.graph().cut_value(dm.witness()), l + 1);
        assert!(dm.count_min_cuts().unwrap() >= 1);
        let r = dm.insert_edge(2, 8, 1).unwrap();
        assert_eq!(r.lambda, l + 2, "subsequent updates serve again");

        // A rebuild that fails re-poisons instead of serving stale state.
        dm.options_mut().time_budget = Some(std::time::Duration::ZERO);
        dm.insert_edge(3, 9, 1).unwrap_err();
        assert!(dm.rebuild().is_err(), "zero budget still fails");
        assert!(dm.poisoned().is_some());
    }

    #[test]
    fn unknown_solver_fails_at_construction() {
        let (g, _) = known::cycle_graph(4, 1);
        assert!(matches!(
            DynamicMinCut::new(g, "no-such-solver", SolveOptions::new()),
            Err(MinCutError::UnknownSolver { .. })
        ));
    }

    #[test]
    fn too_few_vertices_fails_at_construction() {
        let g = CsrGraph::from_edges(1, &[]);
        assert!(matches!(
            DynamicMinCut::new(g, "noi", SolveOptions::new()),
            Err(MinCutError::TooFewVertices { n: 1 })
        ));
    }
}
