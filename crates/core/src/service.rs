//! [`MinCutService`]: the batch serving layer over the [`Session`] API.
//!
//! The paper's evaluation (§4) sweeps many instances × algorithm
//! configurations; a serving deployment sees the same shape of traffic —
//! bursts of `(graph, solver, options)` jobs, many of them repeats or
//! close relatives of each other. This module turns the one-graph
//! [`Session`](crate::Session) into a multi-query service:
//!
//! * **Batching** — a batch of [`BatchJob`]s runs concurrently on a pool
//!   of self-scheduling workers ([`ServiceConfig::concurrency`]); slow
//!   jobs don't serialise the queue because workers pull the next index
//!   from a shared atomic cursor rather than owning a static slice.
//! * **Caching** — results are memoised in a fingerprint-keyed cut
//!   cache built on [`mincut_ds::ShardedMap`] (the §3.2 concurrent-table
//!   design): the key is [`CsrGraph::fingerprint`] plus the resolved
//!   solver instance configuration, so a repeat submission is served
//!   without re-solving. The cache persists across batches for the
//!   lifetime of the service.
//! * **Bound sharing** — jobs that share a graph (same fingerprint) or a
//!   declared [`BatchJob::family`] reuse the best cut found so far as
//!   [`SolveOptions::initial_bound`] for later jobs, the paper's λ̂
//!   seeding (§3.1.1) applied across a whole sweep. Cross-graph family
//!   bounds are re-evaluated on the receiving graph before use
//!   (`cut_value` of the witness side), so exactness is never lost.
//! * **Dynamic graphs** — [`MinCutService::register_dynamic`] hosts a
//!   mutating graph behind a [`DynamicMinCut`] maintainer; updates and
//!   queries are served with `(origin_fingerprint, epoch)` cache keys,
//!   so a mutation can never be answered from a stale entry, and every
//!   epoch advance is tallied in [`CacheStats::invalidations`].
//! * **Budgets and policies** — an optional per-batch wall-clock budget
//!   clamps every job's [`SolveOptions::time_budget`] to the remaining
//!   batch time; [`ErrorPolicy::FailFast`] skips the rest of a batch
//!   after the first failure, [`ErrorPolicy::Continue`] reports per-job
//!   outcomes independently.
//!
//! ```
//! use std::sync::Arc;
//! use mincut_core::{BatchJob, MinCutService, ServiceConfig, SolveOptions};
//! use mincut_graph::CsrGraph;
//!
//! let g = Arc::new(CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 1), (2, 3, 2), (3, 0, 1)]));
//! // One worker makes the cache-hit count deterministic for this doc
//! // test; concurrent identical jobs may race the first insertion.
//! let service = MinCutService::new(ServiceConfig::new().concurrency(1));
//! let jobs = vec![
//!     BatchJob::new(g.clone(), "noi-viecut"),
//!     BatchJob::new(g.clone(), "stoer-wagner"),
//!     BatchJob::new(g.clone(), "noi-viecut"), // repeat: served from cache
//! ];
//! let report = service.run_batch(&jobs);
//! assert!(report.all_ok());
//! assert_eq!(report.stats.cache_hits, 1);
//! for job in &report.jobs {
//!     assert_eq!(job.status.outcome().unwrap().cut.value, 2);
//! }
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mincut_ds::ShardedMap;
use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, NodeId};

use crate::cactus::Cactus;
use crate::dynamic::{DynamicMinCut, DynamicStats, TraceOp, UpdateReport};
use crate::error::MinCutError;
use crate::options::SolveOptions;
use crate::reduce::{ReduceOutcome, ReductionPipeline};
use crate::solver::SolveOutcome;
use crate::stats::{SolveContext, SolverStats};
use crate::{MinCutResult, SolverRegistry};

/// One unit of work for [`MinCutService::run_batch`]: a graph, a solver
/// name (any registry spelling) and the options to run it under.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The instance; `Arc` so sweeps over one graph share storage.
    pub graph: Arc<CsrGraph>,
    /// Registry spelling: canonical (`NOIλ̂-VieCut`), alias
    /// (`noi-viecut`) or queue-pinned (`noi-bstack-viecut`).
    pub solver: String,
    pub opts: SolveOptions,
    /// Bound-sharing group. Jobs with the same family feed each other's
    /// [`SolveOptions::initial_bound`]; unset, jobs still share bounds
    /// with same-graph jobs (keyed by fingerprint).
    pub family: Option<String>,
    /// Caller-chosen display name carried into the [`JobReport`]
    /// (defaults to the job index).
    pub label: Option<String>,
}

impl BatchJob {
    pub fn new(graph: impl Into<Arc<CsrGraph>>, solver: impl Into<String>) -> Self {
        BatchJob {
            graph: graph.into(),
            solver: solver.into(),
            opts: SolveOptions::default(),
            family: None,
            label: None,
        }
    }

    /// Replaces the job options (builder-style).
    pub fn options(mut self, opts: SolveOptions) -> Self {
        self.opts = opts;
        self
    }

    pub fn family(mut self, family: impl Into<String>) -> Self {
        self.family = Some(family.into());
        self
    }

    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// What a batch does after a job fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Every job runs; failures are reported per job.
    #[default]
    Continue,
    /// Jobs not yet started when a failure lands are skipped.
    FailFast,
}

/// Tuning knobs of a [`MinCutService`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads pulling jobs from the batch queue; 0 means all
    /// available cores. Each job may additionally use its own
    /// [`SolveOptions::threads`] for the parallel solvers.
    pub concurrency: usize,
    pub error_policy: ErrorPolicy,
    /// Wall-clock budget for a whole batch. Running jobs have their
    /// per-job budgets clamped to the remaining batch time; jobs that
    /// start after it expires are skipped.
    pub batch_budget: Option<Duration>,
    /// Serve repeat submissions from the fingerprint-keyed cut cache.
    pub cache: bool,
    /// Entry cap for the cut cache: once reached, new results are no
    /// longer memoised (existing entries keep serving) so a long-lived
    /// service fed a stream of distinct graphs cannot grow without
    /// bound. [`MinCutService::clear_cache`] resets it.
    pub cache_capacity: usize,
    /// Reuse the best cut found so far as the initial bound of later
    /// jobs in the same family / on the same graph.
    pub share_bounds: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            concurrency: 0,
            error_policy: ErrorPolicy::Continue,
            batch_budget: None,
            cache: true,
            cache_capacity: 1 << 16,
            share_bounds: true,
        }
    }
}

impl ServiceConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn concurrency(mut self, workers: usize) -> Self {
        self.concurrency = workers;
        self
    }

    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.error_policy = policy;
        self
    }

    pub fn batch_budget(mut self, budget: Duration) -> Self {
        self.batch_budget = Some(budget);
        self
    }

    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache = enabled;
        self
    }

    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    pub fn share_bounds(mut self, enabled: bool) -> Self {
        self.share_bounds = enabled;
        self
    }
}

/// Terminal state of one batch job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Ran the solver; fresh result.
    Solved(SolveOutcome),
    /// Served from the cut cache without running a solver.
    Cached(SolveOutcome),
    Failed(MinCutError),
    /// Never ran: fail-fast after an earlier failure, or the batch
    /// budget expired before the job started.
    Skipped {
        reason: String,
    },
}

impl JobStatus {
    /// The outcome, if the job produced one (fresh or cached).
    pub fn outcome(&self) -> Option<&SolveOutcome> {
        match self {
            JobStatus::Solved(o) | JobStatus::Cached(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_ok(&self) -> bool {
        self.outcome().is_some()
    }

    pub fn from_cache(&self) -> bool {
        matches!(self, JobStatus::Cached(_))
    }

    pub fn error(&self) -> Option<&MinCutError> {
        match self {
            JobStatus::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-job row of a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Index into the submitted batch (reports keep submission order).
    pub index: usize,
    /// [`BatchJob::label`], or the index rendered as text.
    pub label: String,
    /// Resolved instance name (e.g. `NOIλ̂-BQueue-VieCut`), or the
    /// requested spelling when resolution itself failed.
    pub solver: String,
    pub status: JobStatus,
    /// Wall-clock spent on this job inside the service (≈0 for cache
    /// hits and skips).
    pub seconds: f64,
}

/// Aggregate counters for one batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchStats {
    pub jobs: usize,
    /// Jobs solved by running a solver.
    pub solved: usize,
    /// Jobs served from the cut cache.
    pub cache_hits: usize,
    pub failed: usize,
    pub skipped: usize,
    /// Jobs that started with a bound donated by an earlier job.
    pub bound_reuses: usize,
    /// Jobs served a precomputed kernel from the kernel cache (same
    /// graph fingerprint and reduction configuration: the batch
    /// kernelized that graph exactly once).
    pub kernel_reuses: usize,
    /// Worker threads the batch ran on.
    pub concurrency: usize,
    /// End-to-end wall-clock of the batch.
    pub wall_seconds: f64,
    /// Sum of per-job solve times (> `wall_seconds` when batching wins).
    pub solver_seconds: f64,
}

impl BatchStats {
    /// Serialises the report as a single JSON object (the offline build
    /// has no JSON crate, mirroring [`SolverStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"jobs\":{},\"solved\":{},\"cache_hits\":{},\"failed\":{},\"skipped\":{},\
             \"bound_reuses\":{},\"kernel_reuses\":{},\"concurrency\":{},\
             \"wall_seconds\":{:.9},\"solver_seconds\":{:.9}}}",
            self.jobs,
            self.solved,
            self.cache_hits,
            self.failed,
            self.skipped,
            self.bound_reuses,
            self.kernel_reuses,
            self.concurrency,
            self.wall_seconds,
            self.solver_seconds
        )
    }
}

/// Everything [`MinCutService::run_batch`] returns: per-job rows in
/// submission order plus the aggregate counters.
#[derive(Clone, Debug)]
pub struct BatchReport {
    pub jobs: Vec<JobReport>,
    pub stats: BatchStats,
}

impl BatchReport {
    /// Whether every job produced an outcome (none failed or skipped).
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.status.is_ok())
    }

    /// Cut values in submission order (`None` for failed/skipped jobs).
    pub fn values(&self) -> Vec<Option<EdgeWeight>> {
        self.jobs
            .iter()
            .map(|j| j.status.outcome().map(|o| o.cut.value))
            .collect()
    }
}

/// Cumulative cut-cache counters (lifetime of the service).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub entries: usize,
    /// Entries invalidated by a dynamic-graph mutation: each epoch
    /// advance removes the previous epoch's cached result (the
    /// `(fingerprint, epoch)` key scheme means it could never be served
    /// again), so a long update stream cannot saturate the cache with
    /// dead entries.
    pub invalidations: u64,
}

/// The memoised result of one (graph, solver configuration) pair.
///
/// The stored fingerprint/config reject collisions of the *derived*
/// 64-bit map key; `n`/`m` additionally guard against a collision of the
/// fingerprint itself (FNV-1a is not cryptographic — two distinct graphs
/// of equal size colliding is astronomically unlikely for benign inputs
/// but cheap to narrow further).
#[derive(Clone)]
struct CacheEntry {
    fingerprint: u64,
    config: String,
    n: usize,
    m: usize,
    value: EdgeWeight,
    side: Option<Vec<bool>>,
}

struct CutCache {
    map: ShardedMap<u64, CacheEntry>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    invalidations: AtomicU64,
}

impl CutCache {
    fn new() -> Self {
        CutCache {
            map: ShardedMap::new(6),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn key(fingerprint: u64, config: &str) -> u64 {
        // FNV-1a over the config string, folded into the fingerprint.
        mincut_ds::hash::fnv1a_bytes(
            fingerprint ^ mincut_ds::hash::FNV1A_OFFSET,
            config.as_bytes(),
        )
    }

    fn lookup(
        &self,
        fingerprint: u64,
        config: &str,
        n: usize,
        m: usize,
    ) -> Option<(EdgeWeight, Option<Vec<bool>>)> {
        let found = self
            .map
            .get_cloned(&Self::key(fingerprint, config))
            .filter(|e| e.fingerprint == fingerprint && e.config == config && e.n == n && e.m == m)
            .map(|e| (e.value, e.side));
        match found {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mincut_obs::metrics().counter("service.cache.hits").inc();
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mincut_obs::metrics().counter("service.cache.misses").inc();
                None
            }
        }
    }

    fn insert(
        &self,
        fingerprint: u64,
        config: &str,
        (n, m): (usize, usize),
        value: EdgeWeight,
        side: Option<Vec<bool>>,
        capacity: usize,
    ) {
        // Soft cap (concurrent inserts may overshoot by a few entries):
        // a full cache stops memoising instead of growing unboundedly.
        if self.map.len() >= capacity {
            return;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let entry = CacheEntry {
            fingerprint,
            config: config.to_string(),
            n,
            m,
            value,
            side,
        };
        self.map
            .merge_insert(Self::key(fingerprint, config), entry, |slot, new| {
                *slot = new
            });
    }

    /// Reclaims the entry a mutation made stale: the epoch-keyed scheme
    /// guarantees `(fingerprint, config)` can never be served again, so
    /// the slot (and its O(n) witness) goes back to the cache budget.
    fn invalidate(&self, fingerprint: u64, config: &str) {
        if self.map.remove(&Self::key(fingerprint, config)).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            mincut_obs::metrics()
                .counter("service.cache.invalidations")
                .inc();
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.map.len(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Best cut discovered so far within one bound-sharing group.
#[derive(Clone)]
struct SharedBound {
    value: EdgeWeight,
    side: Option<Arc<Vec<bool>>>,
    /// Fingerprint and size of the graph the bound was found on:
    /// sideless bounds only transfer to the graph they came from
    /// (fingerprint + size match); sided bounds are always re-costed on
    /// the receiving graph, so they are collision-proof by construction.
    fingerprint: u64,
    n: usize,
    m: usize,
}

/// Mutable state shared by the workers of one running batch.
struct BatchState<'a> {
    jobs: &'a [BatchJob],
    next: AtomicUsize,
    results: Vec<Mutex<Option<JobReport>>>,
    failed: AtomicBool,
    bound_reuses: AtomicUsize,
    kernel_reuses: AtomicUsize,
    bounds: Mutex<std::collections::HashMap<String, SharedBound>>,
    deadline: Option<Instant>,
}

/// Opaque identifier of a dynamic graph hosted by a [`MinCutService`]
/// (see [`MinCutService::register_dynamic`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DynamicHandle(u64);

/// One hosted dynamic graph: the maintainer plus its epoch-less cache
/// configuration prefix.
struct DynamicEntry {
    maintainer: Mutex<DynamicMinCut>,
    /// Cache-key prefix identifying the solver configuration; the
    /// current epoch is appended per lookup/insert.
    config: String,
}

impl DynamicEntry {
    fn epoch_config(&self, epoch: u64) -> String {
        format!("{}|epoch={epoch}", self.config)
    }
}

/// The batch serving layer: see the [module docs](self).
pub struct MinCutService {
    config: ServiceConfig,
    cache: CutCache,
    /// Kernelized-graph cache: fingerprint (+ reduction configuration) →
    /// the shared [`ReduceOutcome`], so batch jobs on the same graph
    /// kernelize once. Persists across batches, like the cut cache.
    kernels: ShardedMap<u64, Arc<ReduceOutcome>>,
    /// Hosted dynamic graphs ([`MinCutService::register_dynamic`]).
    dynamic: Mutex<std::collections::HashMap<u64, Arc<DynamicEntry>>>,
    next_dynamic: AtomicU64,
    /// Cactus cache for dynamic graphs with cactus maintenance on:
    /// keyed like the cut cache (`(origin_fingerprint, epoch)` folded
    /// into one key, with a `|cactus` marker) and tallied into the same
    /// [`CacheStats`]. Mutations invalidate the previous epoch's entry
    /// exactly like cut entries.
    cacti: ShardedMap<u64, Arc<Cactus>>,
}

impl Default for MinCutService {
    fn default() -> Self {
        MinCutService::new(ServiceConfig::default())
    }
}

impl MinCutService {
    pub fn new(config: ServiceConfig) -> Self {
        MinCutService {
            config,
            cache: CutCache::new(),
            kernels: ShardedMap::new(4),
            dynamic: Mutex::new(std::collections::HashMap::new()),
            next_dynamic: AtomicU64::new(0),
            cacti: ShardedMap::new(4),
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Cumulative cache counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every memoised result, kernel and cactus (counters kept).
    pub fn clear_cache(&self) {
        self.cache.map.clear();
        self.kernels.clear();
        self.cacti.clear();
    }

    /// Runs one job outside a batch (no skips, same cache and bounds).
    pub fn run_one(&self, job: &BatchJob) -> JobReport {
        self.run_batch(std::slice::from_ref(job))
            .jobs
            .pop()
            .unwrap()
    }

    // -----------------------------------------------------------------
    // Dynamic graphs: epoch-keyed serving over a DynamicMinCut.
    // -----------------------------------------------------------------

    /// Hosts a mutable graph: runs the initial solve and returns a
    /// handle for [`MinCutService::dynamic_update`] /
    /// [`MinCutService::dynamic_lambda`]. Results are memoised in the
    /// same cut cache as batch jobs, but keyed by
    /// `(origin_fingerprint, epoch)` — a mutation *cannot* be served a
    /// stale entry, because the epoch in the key changes with it (the
    /// staleness hazard a bare [`CsrGraph::fingerprint`] key would
    /// have). Each epoch advance evicts the now-unservable previous
    /// entry and counts it in [`CacheStats::invalidations`].
    pub fn register_dynamic(
        &self,
        graph: impl Into<DeltaGraph>,
        solver: &str,
        opts: SolveOptions,
    ) -> Result<DynamicHandle, MinCutError> {
        let instance = SolverRegistry::global()
            .resolve(solver)?
            .instance_name(&opts);
        let config = format!(
            "dyn|{instance}|seed={}|red={}",
            opts.seed,
            opts.reductions.cache_key()
        );
        let maintainer = DynamicMinCut::new(graph, solver, opts)?;
        let entry = Arc::new(DynamicEntry {
            maintainer: Mutex::new(maintainer),
            config,
        });
        self.cache_dynamic_state(&entry);
        let id = self.next_dynamic.fetch_add(1, Ordering::Relaxed);
        self.dynamic.lock().unwrap().insert(id, entry);
        Ok(DynamicHandle(id))
    }

    /// Like [`MinCutService::register_dynamic`], but the maintainer
    /// also keeps the cactus of *all* minimum cuts current across
    /// mutations ([`DynamicMinCut::enable_cactus`]); serve it with
    /// [`MinCutService::dynamic_cactus`].
    pub fn register_dynamic_with_cactus(
        &self,
        graph: impl Into<DeltaGraph>,
        solver: &str,
        opts: SolveOptions,
    ) -> Result<DynamicHandle, MinCutError> {
        let handle = self.register_dynamic(graph, solver, opts)?;
        let entry = self.dynamic_entry(handle)?;
        if let Err(e) = entry.maintainer.lock().unwrap().enable_cactus() {
            let _ = self.unregister_dynamic(handle);
            return Err(e);
        }
        Ok(handle)
    }

    /// Applies one trace operation to a hosted dynamic graph. Mutations
    /// advance the epoch: the previous epoch's cut-cache entry *and*
    /// cactus-cache entry are both evicted (and counted as invalidated)
    /// and the new `(λ, witness)` is memoised under the new
    /// `(fingerprint, epoch)` key. A failed re-solve is surfaced, never
    /// cached: the stale entries are still evicted (the mutation stuck
    /// even though the solve did not), but the poisoned state is not
    /// memoised — recover with [`MinCutService::dynamic_rebuild`].
    pub fn dynamic_update(
        &self,
        handle: DynamicHandle,
        op: &TraceOp,
    ) -> Result<UpdateReport, MinCutError> {
        let entry = self.dynamic_entry(handle)?;
        let mut maintainer = entry.maintainer.lock().unwrap();
        let before = maintainer.epoch();
        let result = maintainer.apply(op);
        if maintainer.epoch() != before && self.config.cache {
            let fingerprint = maintainer.graph().origin_fingerprint();
            let stale = entry.epoch_config(before);
            self.cache.invalidate(fingerprint, &stale);
            if self
                .cacti
                .remove(&Self::cactus_key(fingerprint, &stale))
                .is_some()
            {
                self.cache.invalidations.fetch_add(1, Ordering::Relaxed);
                mincut_obs::metrics()
                    .counter("service.cache.invalidations")
                    .inc();
            }
            drop(maintainer);
            // Skips poisoned maintainers internally (check_consistent).
            self.cache_dynamic_state(&entry);
        }
        result
    }

    /// Recovers a hosted maintainer that a failed re-solve poisoned:
    /// re-solves from the current [`DeltaGraph`] state
    /// ([`DynamicMinCut::rebuild`]), clearing the poison, and memoises
    /// the fresh `(λ, witness)` under the current epoch's key. Safe to
    /// call on a healthy maintainer (it is just a from-scratch solve).
    pub fn dynamic_rebuild(&self, handle: DynamicHandle) -> Result<UpdateReport, MinCutError> {
        let entry = self.dynamic_entry(handle)?;
        let report = entry.maintainer.lock().unwrap().rebuild()?;
        self.cache_dynamic_state(&entry);
        Ok(report)
    }

    /// Serves the current λ (and whether it came from the epoch-keyed
    /// cut cache rather than the maintainer).
    pub fn dynamic_lambda(&self, handle: DynamicHandle) -> Result<(EdgeWeight, bool), MinCutError> {
        let entry = self.dynamic_entry(handle)?;
        let maintainer = entry.maintainer.lock().unwrap();
        maintainer.check_consistent()?;
        let g = maintainer.graph();
        if self.config.cache {
            let config = entry.epoch_config(g.epoch());
            if let Some((value, _)) =
                self.cache
                    .lookup(g.origin_fingerprint(), &config, g.n(), g.m())
            {
                return Ok((value, true));
            }
            let lambda = maintainer.lambda();
            drop(maintainer);
            self.cache_dynamic_state(&entry);
            Ok((lambda, false))
        } else {
            Ok((maintainer.lambda(), false))
        }
    }

    /// Serves the cactus of all minimum cuts of a hosted dynamic graph
    /// (and whether it came from the epoch-keyed cactus cache). The
    /// handle must have been registered with
    /// [`MinCutService::register_dynamic_with_cactus`] — without
    /// maintenance this is [`MinCutError::CactusUnavailable`].
    pub fn dynamic_cactus(
        &self,
        handle: DynamicHandle,
    ) -> Result<(Arc<Cactus>, bool), MinCutError> {
        let entry = self.dynamic_entry(handle)?;
        let maintainer = entry.maintainer.lock().unwrap();
        maintainer.check_consistent()?;
        let g = maintainer.graph();
        let key = Self::cactus_key(g.origin_fingerprint(), &entry.epoch_config(g.epoch()));
        if self.config.cache {
            if let Some(cactus) = self.cacti.get_cloned(&key) {
                if cactus.n() == g.n() && cactus.lambda() == maintainer.lambda() {
                    self.cache.hits.fetch_add(1, Ordering::Relaxed);
                    mincut_obs::metrics().counter("service.cache.hits").inc();
                    return Ok((cactus, true));
                }
            }
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            mincut_obs::metrics().counter("service.cache.misses").inc();
        }
        let cactus = Arc::new(
            maintainer
                .cactus()
                .ok_or_else(|| MinCutError::CactusUnavailable {
                    message: "register the graph with register_dynamic_with_cactus".to_string(),
                })?
                .clone(),
        );
        if self.config.cache && self.cacti.len() < self.config.cache_capacity {
            self.cache.insertions.fetch_add(1, Ordering::Relaxed);
            self.cacti
                .merge_insert(key, Arc::clone(&cactus), |slot, new| *slot = new);
        }
        Ok((cactus, false))
    }

    /// Batch separating queries answered from *one* cactus fetch: for
    /// each pair `(u, v)` the side of some minimum cut separating them,
    /// or `None` when no minimum cut does (same cactus node). A k-pair
    /// fan-out costs one epoch-keyed cache probe (or one clone of the
    /// maintained cactus) instead of k, which is what makes the CLI's
    /// consecutive `qs` stream ops cheap.
    pub fn min_cuts_separating_many(
        &self,
        handle: DynamicHandle,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Option<Vec<bool>>>, MinCutError> {
        let (cactus, _) = self.dynamic_cactus(handle)?;
        pairs
            .iter()
            .map(|&(u, v)| {
                let n = cactus.n();
                if (u as usize) >= n || (v as usize) >= n {
                    return Err(MinCutError::InvalidUpdate {
                        message: format!("separating query ({u}, {v}) out of range for n = {n}"),
                    });
                }
                Ok(cactus.min_cut_separating(u, v))
            })
            .collect()
    }

    /// Cactus-cache key: the cut-cache key of the same
    /// `(origin_fingerprint, epoch)` pair with a `|cactus` marker
    /// appended, so the two caches can never collide on a config.
    fn cactus_key(fingerprint: u64, epoch_config: &str) -> u64 {
        CutCache::key(fingerprint, &format!("{epoch_config}|cactus"))
    }

    /// Lifetime counters of a hosted dynamic graph.
    pub fn dynamic_stats(&self, handle: DynamicHandle) -> Result<DynamicStats, MinCutError> {
        let entry = self.dynamic_entry(handle)?;
        let stats = entry.maintainer.lock().unwrap().stats().clone();
        Ok(stats)
    }

    /// Drops a hosted dynamic graph, returning its final counters. Its
    /// cache entries age out with the cache (the final epoch's entry
    /// stays valid — the graph can no longer mutate).
    pub fn unregister_dynamic(&self, handle: DynamicHandle) -> Result<DynamicStats, MinCutError> {
        let entry = self
            .dynamic
            .lock()
            .unwrap()
            .remove(&handle.0)
            .ok_or_else(|| MinCutError::InvalidUpdate {
                message: format!("unknown dynamic handle {:?}", handle),
            })?;
        let stats = entry.maintainer.lock().unwrap().stats().clone();
        Ok(stats)
    }

    fn dynamic_entry(&self, handle: DynamicHandle) -> Result<Arc<DynamicEntry>, MinCutError> {
        self.dynamic
            .lock()
            .unwrap()
            .get(&handle.0)
            .cloned()
            .ok_or_else(|| MinCutError::InvalidUpdate {
                message: format!("unknown dynamic handle {:?}", handle),
            })
    }

    /// Memoises the maintainer's current `(λ, witness)` under its
    /// `(origin_fingerprint, epoch)` key.
    fn cache_dynamic_state(&self, entry: &DynamicEntry) {
        if !self.config.cache {
            return;
        }
        let maintainer = entry.maintainer.lock().unwrap();
        if maintainer.check_consistent().is_err() {
            return; // never memoise a (λ, graph) pair that is out of sync
        }
        let g = maintainer.graph();
        self.cache.insert(
            g.origin_fingerprint(),
            &entry.epoch_config(g.epoch()),
            (g.n(), g.m()),
            maintainer.lambda(),
            Some(maintainer.witness().to_vec()),
            self.config.cache_capacity,
        );
    }

    /// Runs a batch of jobs and reports per-job outcomes (in submission
    /// order) plus aggregate [`BatchStats`].
    pub fn run_batch(&self, jobs: &[BatchJob]) -> BatchReport {
        let t0 = Instant::now();
        let workers = match self.config.concurrency {
            0 => crate::options::hardware_threads(),
            w => w,
        }
        .min(jobs.len().max(1));
        let mut batch_span = mincut_obs::span("service/batch");
        batch_span.arg("jobs", jobs.len());
        batch_span.arg("workers", workers);

        let state = BatchState {
            jobs,
            next: AtomicUsize::new(0),
            results: (0..jobs.len()).map(|_| Mutex::new(None)).collect(),
            failed: AtomicBool::new(false),
            bound_reuses: AtomicUsize::new(0),
            kernel_reuses: AtomicUsize::new(0),
            bounds: Mutex::new(std::collections::HashMap::new()),
            deadline: self.config.batch_budget.map(|b| t0 + b),
        };

        if workers <= 1 {
            self.work(&state);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| self.work(&state));
                }
            });
        }

        let mut reports = Vec::with_capacity(jobs.len());
        for slot in &state.results {
            reports.push(slot.lock().unwrap().take().expect("every job reported"));
        }
        let mut stats = BatchStats {
            jobs: jobs.len(),
            concurrency: workers,
            bound_reuses: state.bound_reuses.load(Ordering::Relaxed),
            kernel_reuses: state.kernel_reuses.load(Ordering::Relaxed),
            wall_seconds: t0.elapsed().as_secs_f64(),
            ..Default::default()
        };
        for r in &reports {
            stats.solver_seconds += r.seconds;
            match &r.status {
                JobStatus::Solved(_) => stats.solved += 1,
                JobStatus::Cached(_) => stats.cache_hits += 1,
                JobStatus::Failed(_) => stats.failed += 1,
                JobStatus::Skipped { .. } => stats.skipped += 1,
            }
        }
        let m = mincut_obs::metrics();
        m.counter("service.batch.runs").inc();
        m.counter("service.batch.jobs").add(stats.jobs as u64);
        m.counter("service.batch.solved").add(stats.solved as u64);
        m.counter("service.batch.failed").add(stats.failed as u64);
        m.counter("service.batch.skipped").add(stats.skipped as u64);
        batch_span.arg("solved", stats.solved);
        batch_span.arg("failed", stats.failed);
        BatchReport {
            jobs: reports,
            stats,
        }
    }

    /// Worker loop: pull the next unclaimed job index until the queue is
    /// drained.
    fn work(&self, state: &BatchState<'_>) {
        loop {
            let i = state.next.fetch_add(1, Ordering::Relaxed);
            if i >= state.jobs.len() {
                return;
            }
            let mut job_span = mincut_obs::span("service/job");
            job_span.arg("index", i);
            let report = self.execute(i, &state.jobs[i], state);
            job_span.arg_display("solver", &report.solver);
            drop(job_span);
            mincut_obs::metrics()
                .histogram("service.job.micros")
                .record((report.seconds * 1e6) as u64);
            if let JobStatus::Failed(e) = &report.status {
                state.failed.store(true, Ordering::Relaxed);
                mincut_obs::flight().record(
                    "service",
                    format!("batch job {} ({}) failed: {e}", report.index, report.label),
                );
            }
            *state.results[i].lock().unwrap() = Some(report);
        }
    }

    fn execute(&self, index: usize, job: &BatchJob, state: &BatchState<'_>) -> JobReport {
        let t0 = Instant::now();
        let label = job.label.clone().unwrap_or_else(|| format!("job-{index}"));
        let report = |solver: String, status: JobStatus, t0: Instant| JobReport {
            index,
            label: label.clone(),
            solver,
            status,
            seconds: t0.elapsed().as_secs_f64(),
        };

        if self.config.error_policy == ErrorPolicy::FailFast && state.failed.load(Ordering::Relaxed)
        {
            return report(
                job.solver.clone(),
                JobStatus::Skipped {
                    reason: "fail-fast: an earlier job in the batch failed".into(),
                },
                t0,
            );
        }

        // Clamp the job budget to the remaining batch budget.
        let mut opts = job.opts.clone();
        if let Some(deadline) = state.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return report(
                    job.solver.clone(),
                    JobStatus::Skipped {
                        reason: "batch time budget exhausted".into(),
                    },
                    t0,
                );
            }
            opts.time_budget = Some(opts.time_budget.map_or(remaining, |b| b.min(remaining)));
        }

        let solver = match SolverRegistry::global().resolve(&job.solver) {
            Ok(s) => s,
            Err(e) => return report(job.solver.clone(), JobStatus::Failed(e), t0),
        };
        let instance = solver.instance_name(&opts);
        let g = job.graph.as_ref();

        let needs_fingerprint = self.config.cache || self.config.share_bounds;
        let fingerprint = if needs_fingerprint {
            g.fingerprint()
        } else {
            0
        };
        // Bounds are tracked per graph (fingerprint group) and, when the
        // job declares one, per family — so a cross-graph family bound
        // never shadows an exact same-graph one.
        let fp_group = format!("fp:{fingerprint:016x}");
        // The cache key is the resolved instance name (which encodes the
        // queue, thread count, ε, repetitions) plus the fields that can
        // change the result independently of the name.
        let config_key = format!(
            "{instance}|seed={}|witness={}|red={}",
            opts.seed,
            opts.witness,
            opts.reductions.cache_key()
        );

        if self.config.cache {
            if let Some((value, side)) = self.cache.lookup(fingerprint, &config_key, g.n(), g.m()) {
                if self.config.share_bounds {
                    self.offer_bound(state, &fp_group, job, value, side.clone(), fingerprint);
                }
                let mut stats = SolverStats::new(instance.clone(), g.n(), g.m());
                stats.record_lambda(value);
                stats.total_seconds = t0.elapsed().as_secs_f64();
                let cut = MinCutResult {
                    value,
                    side: if opts.witness { side } else { None },
                };
                return report(instance, JobStatus::Cached(SolveOutcome { cut, stats }), t0);
            }
        }

        // Only the NOI family reads `initial_bound`; donating a bound to
        // anyone else would cost an O(m) re-cost and inflate the
        // bound-reuse telemetry without affecting the solve.
        if self.config.share_bounds && solver.capabilities().uses_initial_bound {
            self.adopt_bound(state, &fp_group, job, g, fingerprint, &mut opts);
        }

        // Kernelized-graph reuse: jobs sharing a graph (and reduction
        // configuration) kernelize once; the shared `ReduceOutcome` fans
        // out through `solve_with_kernel`. Gated on the caching layer.
        let mut kernel_reused = false;
        let kernel: Option<Arc<ReduceOutcome>> = if self.config.cache
            && g.n() >= 2
            && opts.reductions.is_enabled()
            && solver.capabilities().kernelizable
        {
            match self.kernel_for(fingerprint, g, &opts) {
                Ok((k, reused)) => {
                    if reused {
                        kernel_reused = true;
                        state.kernel_reuses.fetch_add(1, Ordering::Relaxed);
                    }
                    k
                }
                Err(e) => return report(instance, JobStatus::Failed(e), t0),
            }
        } else {
            None
        };

        let solved = match &kernel {
            Some(k) => solver.solve_with_kernel(g, &opts, k).map(|mut outcome| {
                if kernel_reused {
                    // The donor job already accounts for the pipeline's
                    // wall time; zero it here so per-pass seconds summed
                    // over the batch count the one run exactly once.
                    for pass in &mut outcome.stats.reductions {
                        pass.seconds = 0.0;
                    }
                }
                outcome
            }),
            None => solver.solve(g, &opts),
        };
        match solved {
            Ok(outcome) => {
                if self.config.cache {
                    self.cache.insert(
                        fingerprint,
                        &config_key,
                        (g.n(), g.m()),
                        outcome.cut.value,
                        outcome.cut.side.clone(),
                        self.config.cache_capacity,
                    );
                }
                if self.config.share_bounds {
                    self.offer_bound(
                        state,
                        &fp_group,
                        job,
                        outcome.cut.value,
                        outcome.cut.side.clone(),
                        fingerprint,
                    );
                }
                report(instance, JobStatus::Solved(outcome), t0)
            }
            Err(e) => report(instance, JobStatus::Failed(e), t0),
        }
    }

    /// Returns the shared kernel for `(fingerprint, reductions)`, running
    /// the pipeline on a miss. The boolean reports whether the kernel was
    /// served from the cache (a "kernelize once" reuse). Connected inputs
    /// only do useful work here, but any n ≥ 2 graph is safe.
    fn kernel_for(
        &self,
        fingerprint: u64,
        g: &CsrGraph,
        opts: &SolveOptions,
    ) -> Result<(Option<Arc<ReduceOutcome>>, bool), MinCutError> {
        let Some(pipeline) = ReductionPipeline::from_options(&opts.reductions)? else {
            return Ok((None, false));
        };
        let key = mincut_ds::hash::fnv1a_bytes(
            fingerprint ^ mincut_ds::hash::FNV1A_OFFSET,
            opts.reductions.cache_key().as_bytes(),
        );
        if let Some(k) = self.kernels.get_cloned(&key) {
            // The n/m check guards against a fingerprint collision; the
            // pipeline is deterministic, so an entry that matches is
            // exactly what this job would compute.
            if (k.original_n, k.original_m) == (g.n(), g.m()) {
                return Ok((Some(k), true));
            }
        }
        let mut scratch = SolverStats::scratch();
        let mut ctx = SolveContext::with_budget(&mut scratch, opts.time_budget);
        let red = Arc::new(pipeline.run(g, None, &mut ctx)?);
        if self.kernels.len() < self.config.cache_capacity {
            self.kernels
                .merge_insert(key, red.clone(), |slot, new| *slot = new);
        }
        Ok((Some(red), false))
    }

    /// Publishes a finished cut into its bound-sharing groups (the graph's
    /// fingerprint group, plus the declared family) where it beats the
    /// best recorded so far.
    fn offer_bound(
        &self,
        state: &BatchState<'_>,
        fp_group: &str,
        job: &BatchJob,
        value: EdgeWeight,
        side: Option<Vec<bool>>,
        fingerprint: u64,
    ) {
        let side = side.map(Arc::new);
        let mut bounds = state.bounds.lock().unwrap();
        for group in [Some(fp_group), job.family.as_deref()]
            .into_iter()
            .flatten()
        {
            let better = bounds.get(group).is_none_or(|b| value < b.value);
            if better {
                bounds.insert(
                    group.to_string(),
                    SharedBound {
                        value,
                        side: side.clone(),
                        fingerprint,
                        n: job.graph.n(),
                        m: job.graph.m(),
                    },
                );
            }
        }
    }

    /// Seeds `opts.initial_bound` from the best cut of the graph's own
    /// fingerprint group (preferred) or the declared family, if that is
    /// sound for this job's graph:
    ///
    /// * bounds carrying a witness side are always re-costed here with
    ///   [`CsrGraph::cut_value`] — the injected bound is the value of an
    ///   actual cut of *this* graph by construction, so exactness is
    ///   preserved even across graphs (and even under a fingerprint
    ///   collision). For a genuinely identical graph the re-cost equals
    ///   the stored value;
    /// * sideless bounds (witness-off donors) cannot be re-validated, so
    ///   they transfer only to a graph with the same fingerprint *and*
    ///   size, and only into witness-off runs.
    fn adopt_bound(
        &self,
        state: &BatchState<'_>,
        fp_group: &str,
        job: &BatchJob,
        g: &CsrGraph,
        fingerprint: u64,
        opts: &mut SolveOptions,
    ) {
        let bound = {
            let bounds = state.bounds.lock().unwrap();
            match bounds
                .get(fp_group)
                .or_else(|| job.family.as_deref().and_then(|f| bounds.get(f)))
            {
                Some(b) => b.clone(),
                None => return,
            }
        };
        let candidate: Option<(EdgeWeight, Option<Vec<bool>>)> = match &bound.side {
            Some(side) if side.len() == g.n() && g.is_proper_cut(side) => {
                Some((g.cut_value(side), Some(side.as_ref().clone())))
            }
            Some(_) => None,
            None if !opts.witness
                && bound.fingerprint == fingerprint
                && (bound.n, bound.m) == (g.n(), g.m()) =>
            {
                Some((bound.value, None))
            }
            None => None,
        };
        let Some((value, side)) = candidate else {
            return;
        };
        let improves = match &opts.initial_bound {
            Some((existing, _)) => value < *existing,
            None => true,
        };
        if improves {
            opts.initial_bound = Some((value, side));
            state.bound_reuses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn graphs() -> Vec<(Arc<CsrGraph>, EdgeWeight)> {
        vec![
            {
                let (g, l) = known::two_communities(8, 9, 2, 2, 1);
                (Arc::new(g), l)
            },
            {
                let (g, l) = known::ring_of_cliques(5, 5, 2, 1);
                (Arc::new(g), l)
            },
            {
                let (g, l) = known::cycle_graph(9, 3);
                (Arc::new(g), l)
            },
        ]
    }

    #[test]
    fn batch_matches_serial_session_loop() {
        for concurrency in [1, 4] {
            let service = MinCutService::new(ServiceConfig::new().concurrency(concurrency));
            let jobs: Vec<BatchJob> = graphs()
                .into_iter()
                .flat_map(|(g, _)| {
                    ["noi-viecut", "stoer-wagner", "parcut"]
                        .into_iter()
                        .map(move |s| {
                            BatchJob::new(g.clone(), s)
                                .options(SolveOptions::new().seed(3).threads(2))
                        })
                })
                .collect();
            let report = service.run_batch(&jobs);
            assert!(report.all_ok());
            assert_eq!(report.stats.jobs, jobs.len());
            for (job, row) in jobs.iter().zip(&report.jobs) {
                let serial = crate::Session::new(&job.graph)
                    .options(job.opts.clone())
                    .run(&job.solver)
                    .unwrap();
                assert_eq!(
                    row.status.outcome().unwrap().cut.value,
                    serial.cut.value,
                    "{}",
                    row.solver
                );
            }
        }
    }

    #[test]
    fn repeat_submissions_hit_the_cache() {
        // One worker: identical jobs running concurrently could all miss
        // the not-yet-filled cache, making hit counts nondeterministic.
        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, l) = known::two_communities(8, 8, 2, 2, 1);
        let jobs = vec![BatchJob::new(g, "noi-viecut"); 3];
        let first = service.run_batch(&jobs);
        assert_eq!(first.stats.solved, 1);
        assert_eq!(first.stats.cache_hits, 2, "in-batch repeats are served");
        let second = service.run_batch(&jobs);
        assert_eq!(second.stats.solved, 0);
        assert_eq!(second.stats.cache_hits, 3, "cross-batch repeats are served");
        for row in first.jobs.iter().chain(&second.jobs) {
            let o = row.status.outcome().unwrap();
            assert_eq!(o.cut.value, l);
            assert!(o.cut.verify(&jobs[0].graph), "{}", row.label);
        }
        let cs = service.cache_stats();
        assert_eq!(cs.hits, 5);
        assert_eq!(cs.insertions, 1);
        assert_eq!(cs.entries, 1);
    }

    #[test]
    fn cache_distinguishes_configurations_and_graphs() {
        let service = MinCutService::default();
        let (a, _) = known::cycle_graph(8, 2);
        let (b, _) = known::cycle_graph(9, 2);
        let a = Arc::new(a);
        let jobs = vec![
            BatchJob::new(a.clone(), "noi-viecut"),
            BatchJob::new(a.clone(), "stoer-wagner"),
            BatchJob::new(a.clone(), "noi-viecut").options(SolveOptions::new().seed(9)),
            BatchJob::new(b, "noi-viecut"),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        assert_eq!(report.stats.cache_hits, 0, "four distinct cache keys");
        assert_eq!(service.cache_stats().entries, 4);
    }

    #[test]
    fn same_graph_jobs_kernelize_once() {
        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, l) = known::two_communities(10, 10, 2, 2, 1);
        let g = Arc::new(g);
        // Distinct solvers: no cut-cache hits possible, but the kernel is
        // shared — only the first job runs the reduction pipeline.
        let jobs = vec![
            BatchJob::new(g.clone(), "noi"),
            BatchJob::new(g.clone(), "stoer-wagner"),
            BatchJob::new(g.clone(), "parcut"),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        assert_eq!(report.stats.cache_hits, 0);
        assert_eq!(
            report.stats.kernel_reuses, 2,
            "first job kernelizes, the other two reuse"
        );
        for row in &report.jobs {
            let o = row.status.outcome().unwrap();
            assert_eq!(o.cut.value, l, "{}", row.solver);
            assert!(
                o.stats.kernel_n < g.n(),
                "{}: kernel telemetry must flow through solve_with_kernel",
                row.solver
            );
        }
        // Resubmission is served by the cut cache before the kernel cache.
        let again = service.run_batch(&jobs);
        assert_eq!(again.stats.cache_hits, 3);
        assert_eq!(again.stats.kernel_reuses, 0);
        assert!(again.stats.to_json().contains("\"kernel_reuses\":0"));
    }

    #[test]
    fn same_graph_jobs_share_bounds() {
        let service = MinCutService::new(ServiceConfig::new().concurrency(1).cache(false));
        let (g, l) = known::two_communities(10, 10, 2, 2, 1);
        let g = Arc::new(g);
        let jobs = vec![
            BatchJob::new(g.clone(), "stoer-wagner"),
            BatchJob::new(g.clone(), "noi"),
            BatchJob::new(g.clone(), "noi-heap"),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        assert!(
            report.stats.bound_reuses >= 1,
            "later same-graph jobs must adopt the first job's cut"
        );
        for row in &report.jobs {
            assert_eq!(row.status.outcome().unwrap().cut.value, l);
        }
    }

    #[test]
    fn cross_graph_family_bounds_are_recosted_and_exact() {
        // A family sweep over *different* graphs: the donated side is
        // re-costed on the receiving graph, so values stay exact even
        // though the graphs disagree about the cut's weight.
        let service = MinCutService::new(ServiceConfig::new().concurrency(1).cache(false));
        let (light, l_light) = known::two_communities(8, 8, 2, 2, 1);
        let (heavy, l_heavy) = known::two_communities(8, 8, 2, 2, 5);
        let jobs = vec![
            BatchJob::new(light, "stoer-wagner").family("sweep"),
            BatchJob::new(heavy, "noi").family("sweep"),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        assert_eq!(report.jobs[0].status.outcome().unwrap().cut.value, l_light);
        assert_eq!(report.jobs[1].status.outcome().unwrap().cut.value, l_heavy);
    }

    #[test]
    fn fail_fast_skips_the_rest_and_continue_does_not() {
        let (good, _) = known::cycle_graph(6, 1);
        let good = Arc::new(good);
        let bad = Arc::new(CsrGraph::from_edges(1, &[]));
        let mk_jobs = || {
            vec![
                BatchJob::new(bad.clone(), "noi"),
                BatchJob::new(good.clone(), "noi"),
                BatchJob::new(good.clone(), "stoer-wagner"),
            ]
        };

        let ff = MinCutService::new(
            ServiceConfig::new()
                .concurrency(1)
                .error_policy(ErrorPolicy::FailFast),
        );
        let report = ff.run_batch(&mk_jobs());
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.skipped, 2);
        assert!(matches!(
            report.jobs[0].status.error(),
            Some(MinCutError::TooFewVertices { n: 1 })
        ));

        let cont = MinCutService::new(ServiceConfig::new().concurrency(1));
        let report = cont.run_batch(&mk_jobs());
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.skipped, 0);
        assert_eq!(report.stats.solved, 2);
    }

    #[test]
    fn exhausted_batch_budget_skips_unstarted_jobs() {
        let service = MinCutService::new(
            ServiceConfig::new()
                .concurrency(1)
                .batch_budget(Duration::ZERO),
        );
        let (g, _) = known::cycle_graph(6, 1);
        let report = service.run_batch(&[BatchJob::new(g, "noi")]);
        assert_eq!(report.stats.skipped, 1);
        assert!(matches!(
            &report.jobs[0].status,
            JobStatus::Skipped { reason } if reason.contains("budget")
        ));
    }

    #[test]
    fn cache_capacity_bounds_memoisation() {
        let service = MinCutService::new(ServiceConfig::new().concurrency(1).cache_capacity(2));
        let jobs: Vec<BatchJob> = (4..9)
            .map(|n| BatchJob::new(known::cycle_graph(n, 1).0, "stoer-wagner"))
            .collect();
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        let cs = service.cache_stats();
        assert_eq!(cs.entries, 2, "cap reached: later results not memoised");
        // The two memoised graphs still serve; the rest re-solve.
        let again = service.run_batch(&jobs);
        assert_eq!(again.stats.cache_hits, 2);
        assert_eq!(again.stats.solved, 3);
    }

    #[test]
    fn dynamic_graphs_serve_epoch_keyed_results() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, l) = known::two_communities(6, 6, 1, 2, 1); // bridge (0,6), λ = 1
        let h = service
            .register_dynamic(g, "noi-viecut", SolveOptions::new().seed(1))
            .unwrap();

        // Registration memoised epoch 0; the query is a cache hit.
        assert_eq!(service.dynamic_lambda(h).unwrap(), (l, true));

        // A second bridge: epoch 1, new entry, old one counted stale.
        let r = service
            .dynamic_update(h, &TraceOp::Insert { u: 1, v: 7, w: 1 })
            .unwrap();
        assert_eq!((r.lambda, r.epoch), (2, 1));
        assert_eq!(service.dynamic_lambda(h).unwrap(), (2, true));
        let cs = service.cache_stats();
        assert_eq!(cs.invalidations, 1, "epoch 0 entry evicted");
        assert_eq!(cs.entries, 1, "only the current epoch stays cached");

        // Queries do not advance the epoch or invalidate anything.
        let r = service.dynamic_update(h, &TraceOp::Query).unwrap();
        assert_eq!((r.lambda, r.epoch, r.resolved), (2, 1, false));
        assert_eq!(service.cache_stats().invalidations, 1);

        // Crossing deletion: epoch 2, λ back to 1, no solver run.
        let r = service
            .dynamic_update(h, &TraceOp::Delete { u: 0, v: 6 })
            .unwrap();
        assert_eq!((r.lambda, r.resolved), (1, false));
        assert_eq!(service.dynamic_lambda(h).unwrap(), (1, true));
        assert_eq!(service.cache_stats().invalidations, 2);

        let stats = service.dynamic_stats(h).unwrap();
        assert_eq!(
            (stats.insertions, stats.deletions, stats.queries),
            (1, 1, 1)
        );

        let final_stats = service.unregister_dynamic(h).unwrap();
        assert_eq!(final_stats, stats);
        assert!(matches!(
            service.dynamic_lambda(h),
            Err(MinCutError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            service.unregister_dynamic(h),
            Err(MinCutError::InvalidUpdate { .. })
        ));
    }

    #[test]
    fn dynamic_cacti_are_epoch_cached_and_invalidated() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, _) = known::cycle_graph(5, 1); // λ = 2, 10 min cuts
        let h = service
            .register_dynamic_with_cactus(g, "noi-viecut", SolveOptions::new().seed(1))
            .unwrap();

        // First query memoises the epoch-0 cactus, second one hits it.
        let (c, from_cache) = service.dynamic_cactus(h).unwrap();
        assert!(!from_cache);
        assert_eq!((c.lambda(), c.count_min_cuts()), (2, 10));
        let (c2, from_cache) = service.dynamic_cactus(h).unwrap();
        assert!(from_cache);
        assert_eq!(c2.count_min_cuts(), 10);

        // A chord drops the count; the epoch-0 cactus (and λ entry)
        // are both evicted and the new epoch serves the new cactus.
        let inv0 = service.cache_stats().invalidations;
        service
            .dynamic_update(h, &TraceOp::Insert { u: 0, v: 2, w: 5 })
            .unwrap();
        assert_eq!(service.cache_stats().invalidations, inv0 + 2);
        let (c, from_cache) = service.dynamic_cactus(h).unwrap();
        assert!(!from_cache);
        assert_eq!((c.lambda(), c.count_min_cuts()), (2, 4));
        assert!(service.dynamic_cactus(h).unwrap().1);

        // Plain handles have no cactus to serve.
        let (g, _) = known::cycle_graph(5, 1);
        let plain = service
            .register_dynamic(g, "noi-viecut", SolveOptions::new().seed(1))
            .unwrap();
        assert!(matches!(
            service.dynamic_cactus(plain),
            Err(MinCutError::CactusUnavailable { .. })
        ));
    }

    #[test]
    fn long_update_streams_leak_neither_cut_nor_cactus_entries() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, _) = known::cycle_graph(6, 1);
        let h = service
            .register_dynamic_with_cactus(g, "noi-viecut", SolveOptions::new().seed(1))
            .unwrap();

        // Query after every mutation so both caches are populated at
        // every epoch — the worst case for a leak.
        let cuts0 = service.cache_stats().entries;
        let cacti0 = service.cacti.len();
        for round in 0..20u32 {
            let (u, v) = (round % 6, (round + 2) % 6);
            let op = if round % 2 == 0 {
                TraceOp::Insert { u, v, w: 1 }
            } else {
                TraceOp::Delete { u, v }
            };
            let _ = service.dynamic_update(h, &op); // failed deletes are fine
            service.dynamic_lambda(h).unwrap();
            service.dynamic_cactus(h).unwrap();
            // Only the *current* epoch's entries may live in either
            // cache: each mutation must evict, not just re-key.
            assert!(
                service.cache_stats().entries <= cuts0 + 1,
                "cut cache leaked at round {round}: {}",
                service.cache_stats().entries
            );
            assert!(
                service.cacti.len() <= cacti0 + 1,
                "cactus cache leaked at round {round}: {}",
                service.cacti.len()
            );
        }
        // Every successful mutation evicts a cut entry and (except the
        // first, which predates any cactus query) a cactus entry.
        let stats = service.cache_stats();
        assert!(
            stats.invalidations >= 15,
            "evictions must be counted: {}",
            stats.invalidations
        );
    }

    #[test]
    fn batch_separating_queries_are_served_from_one_cactus() {
        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, _) = known::two_communities(5, 5, 1, 3, 2); // bridge (0,5), λ=1
        let h = service
            .register_dynamic_with_cactus(g, "noi-viecut", SolveOptions::new().seed(1))
            .unwrap();

        let hits0 = service.cache_stats().hits;
        let answers = service
            .min_cuts_separating_many(h, &[(0, 5), (1, 2), (3, 9), (4, 4)])
            .unwrap();
        assert_eq!(answers.len(), 4);
        let side = answers[0].as_ref().expect("bridge endpoints separate");
        assert_eq!(side.iter().filter(|&&b| b).count(), 5);
        assert_eq!(side[0], side[1], "one community stays whole");
        assert_ne!(side[0], side[5]);
        assert!(answers[1].is_none(), "same clique, same cactus node");
        assert!(answers[3].is_none(), "u == v never separates");
        assert_eq!(answers[2], answers[0], "cross-bridge pairs see the cut");

        // The whole batch consumed at most one fresh fetch; a second
        // batch is pure cache hits.
        service.min_cuts_separating_many(h, &[(0, 7)]).unwrap();
        assert!(service.cache_stats().hits > hits0);

        // Out-of-range pairs fail the batch loudly instead of panicking.
        assert!(matches!(
            service.min_cuts_separating_many(h, &[(0, 99)]),
            Err(MinCutError::InvalidUpdate { .. })
        ));
    }

    #[test]
    fn poisoned_dynamic_state_is_surfaced_not_cached_and_rebuild_recovers() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().concurrency(1));
        let (g, l) = known::two_communities(6, 6, 1, 2, 1);
        let h = service
            .register_dynamic_with_cactus(g, "noi", SolveOptions::new().seed(1))
            .unwrap();
        assert_eq!(service.dynamic_lambda(h).unwrap().0, l);

        // Zero the budget so the re-solve after a crossing insert fails
        // mid-update: mutation stuck, epoch advanced, solve poisoned.
        {
            let entry = service.dynamic_entry(h).unwrap();
            entry.maintainer.lock().unwrap().options_mut().time_budget = Some(Duration::ZERO);
        }
        service
            .dynamic_update(h, &TraceOp::Insert { u: 1, v: 7, w: 1 })
            .unwrap_err();

        // The poisoned state is surfaced on every read path and never
        // memoised under the new epoch.
        assert!(service.dynamic_lambda(h).is_err());
        assert!(service.dynamic_cactus(h).is_err());
        let (fp, config, n, m) = {
            let entry = service.dynamic_entry(h).unwrap();
            let maintainer = entry.maintainer.lock().unwrap();
            let g = maintainer.graph();
            (
                g.origin_fingerprint(),
                entry.epoch_config(g.epoch()),
                g.n(),
                g.m(),
            )
        };
        assert!(
            service.cache.lookup(fp, &config, n, m).is_none(),
            "poisoned epoch must not be served from cache"
        );

        // Fix the cause and rebuild through the service: poison clears
        // and serving resumes at the post-mutation λ.
        {
            let entry = service.dynamic_entry(h).unwrap();
            entry.maintainer.lock().unwrap().options_mut().time_budget = None;
        }
        let report = service.dynamic_rebuild(h).unwrap();
        assert_eq!(report.lambda, l + 1);
        assert_eq!(service.dynamic_lambda(h).unwrap(), (l + 1, true));
        assert!(service.dynamic_cactus(h).unwrap().0.count_min_cuts() >= 1);
    }

    #[test]
    fn dynamic_cacti_work_with_the_cache_disabled() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().cache(false));
        let (g, _) = known::cycle_graph(4, 3); // λ = 6, 6 min cuts
        let h = service
            .register_dynamic_with_cactus(g, "noi-viecut", SolveOptions::new())
            .unwrap();
        assert_eq!(service.dynamic_cactus(h).unwrap().0.count_min_cuts(), 6);
        service
            .dynamic_update(h, &TraceOp::Delete { u: 0, v: 1 })
            .unwrap();
        let (c, from_cache) = service.dynamic_cactus(h).unwrap();
        assert!(!from_cache, "no cache to hit");
        assert_eq!((c.lambda(), c.count_min_cuts()), (3, 3));
        assert_eq!(service.cache_stats(), CacheStats::default());
    }

    #[test]
    fn dynamic_graphs_work_with_the_cache_disabled() {
        use crate::dynamic::TraceOp;

        let service = MinCutService::new(ServiceConfig::new().cache(false));
        let (g, l) = known::two_communities(6, 6, 1, 2, 1); // bridge (0,6), λ = 1
        let h = service
            .register_dynamic(g, "stoer-wagner", SolveOptions::new())
            .unwrap();
        assert_eq!(service.dynamic_lambda(h).unwrap(), (l, false));
        service
            .dynamic_update(h, &TraceOp::Insert { u: 1, v: 7, w: 1 })
            .unwrap();
        assert_eq!(service.dynamic_lambda(h).unwrap(), (l + 1, false));
        let cs = service.cache_stats();
        assert_eq!((cs.insertions, cs.invalidations), (0, 0));
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = MinCutService::default().run_batch(&[]);
        assert_eq!(report.stats.jobs, 0);
        assert!(report.all_ok());
        assert!(report.stats.to_json().starts_with('{'));
    }
}
