//! Per-run telemetry: the `SolverStats` report carried by every
//! [`SolveOutcome`](crate::SolveOutcome).
//!
//! The paper's evaluation is an argument about *where the work goes* —
//! priority-queue operations saved by the λ̂ cap (§3.1.2), contractions
//! unlocked by the VieCut bound (§3.1.1), bound improvements per pass.
//! These counters make that measurable on every run instead of only
//! inside the bench harness: the λ̂ trajectory, contraction and rescue
//! counts (with the accumulation path each round took), PQ operation
//! totals (harvested from the drivers' [`mincut_ds::CountingPq`]
//! instances) and named phase timings.

use std::time::Instant;

use mincut_ds::PqCounters;
use mincut_graph::{ContractionEngine, ContractionPath, EdgeWeight};

use crate::error::MinCutError;

/// Wall-clock share of one named stage of a run (e.g. `"viecut"` seeding
/// vs. the exact `"noi"` loop).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTiming {
    pub name: &'static str,
    pub seconds: f64,
}

/// Telemetry of one kernelization pass across all its rounds (the
/// reduction pipeline's per-pass share of the shrink).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReductionPassStats {
    /// Pass name as registered (`components`, `degree-bound`,
    /// `heavy-edge`, `padberg-rinaldi`).
    pub name: &'static str,
    /// Times the pass ran (the pipeline loops to a fixpoint).
    pub rounds: u64,
    /// Vertices removed by this pass's contractions, summed over rounds.
    pub vertices_removed: u64,
    /// Edges removed likewise (merged parallel edges count as removed).
    pub edges_removed: u64,
    /// Wall-clock spent in the pass, summed over rounds.
    pub seconds: f64,
}

impl ReductionPassStats {
    pub fn new(name: &'static str) -> Self {
        ReductionPassStats {
            name,
            ..Default::default()
        }
    }
}

/// Telemetry for a single solver run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolverStats {
    /// Fully-qualified instance name, e.g. `NOIλ̂-BQueue-VieCut`.
    pub algorithm: String,
    /// Which `mincut_ds::simd` kernel tier the solve ran at
    /// (`scalar` / `sse2` / `avx2`, per the `SMC_SIMD` knob and runtime
    /// feature detection).
    pub simd_tier: &'static str,
    /// Input size (vertices, edges).
    pub n: usize,
    pub m: usize,
    /// Every distinct value λ̂ took, best-first improvements in run order.
    /// The first entry is the initial bound (trivial degree cut or the
    /// supplied/VieCut bound), the last the returned cut value.
    pub lambda_trajectory: Vec<EdgeWeight>,
    /// Outer contraction rounds (CAPFOREST passes, VieCut levels, …).
    pub rounds: u64,
    /// Vertices removed by contraction across all rounds.
    pub contracted_vertices: u64,
    /// Stoer–Wagner rescue phases taken when a scan marked nothing.
    pub sw_rescues: u64,
    /// Which [`ContractionEngine`] accumulation strategy each contraction
    /// round took, in round order (the engine's density heuristic and the
    /// `SEQUENTIAL_FALLBACK_THRESHOLD` dispatch decide; both constants
    /// are exported in [`SolverStats::to_json`] so bench output can
    /// attribute hash-vs-sort wins to the rounds that took each path).
    pub contraction_paths: Vec<ContractionPath>,
    /// Priority-queue operation totals (pushes / raises / pops) across
    /// the run, including parallel workers.
    pub pq_ops: PqCounters,
    /// Named sub-phase timings.
    pub phases: Vec<PhaseTiming>,
    /// Per-pass kernelization telemetry (empty when reductions are off).
    pub reductions: Vec<ReductionPassStats>,
    /// Kernel size the solver actually ran on after kernelization.
    /// `(0, 0)` when no kernelization happened (reductions off, or the
    /// run never reached the pipeline) — check `reductions.is_empty()`
    /// to tell the modes apart.
    pub kernel_n: usize,
    pub kernel_m: usize,
    /// End-to-end wall-clock of `Solver::solve`.
    pub total_seconds: f64,
}

impl SolverStats {
    pub fn new(algorithm: String, n: usize, m: usize) -> Self {
        SolverStats {
            algorithm,
            simd_tier: mincut_ds::simd::active_tier().name(),
            n,
            m,
            ..Default::default()
        }
    }

    /// A stats sink for legacy entry points that discard telemetry.
    pub(crate) fn scratch() -> Self {
        SolverStats::default()
    }

    /// Records a λ̂ value. After the first entry only *improvements* are
    /// kept, so the vector reads as a strictly decreasing trajectory —
    /// a kernel solver re-deriving its own (worse) starting bound on the
    /// contracted graph does not pollute the record.
    pub fn record_lambda(&mut self, value: EdgeWeight) {
        if self.lambda_trajectory.last().is_none_or(|&l| value < l) {
            self.lambda_trajectory.push(value);
        }
    }

    /// Accumulates harvested priority-queue counters.
    pub fn add_pq_ops(&mut self, c: PqCounters) {
        self.pq_ops.add(c);
    }

    /// Records which accumulation path a contraction round took (read
    /// from [`ContractionEngine::last_path`] right after the round).
    pub fn record_contraction_path(&mut self, path: ContractionPath) {
        self.contraction_paths.push(path);
    }

    /// Absorbs the work counters of a nested run (e.g. VieCut's exact
    /// solve of the collapsed remainder) without adopting its λ̂
    /// trajectory, which concerns a different graph.
    pub fn absorb_work(&mut self, nested: &SolverStats) {
        self.rounds += nested.rounds;
        self.contracted_vertices += nested.contracted_vertices;
        self.sw_rescues += nested.sw_rescues;
        self.add_pq_ops(nested.pq_ops);
        self.contraction_paths
            .extend_from_slice(&nested.contraction_paths);
    }

    /// Times `f` and records it as phase `name`.
    pub fn time_phase<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let result = f(self);
        self.phases.push(PhaseTiming {
            name,
            seconds: t0.elapsed().as_secs_f64(),
        });
        result
    }

    /// Serializes the report as a single JSON object (no dependencies on
    /// a JSON crate in this offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_json_str(&mut s, "algorithm", &self.algorithm);
        push_json_str(&mut s, "simd_tier", self.simd_tier);
        s.push_str(&format!(
            "\"n\":{},\"m\":{},\"rounds\":{},\"contracted_vertices\":{},\"sw_rescues\":{},",
            self.n, self.m, self.rounds, self.contracted_vertices, self.sw_rescues
        ));
        s.push_str("\"lambda_trajectory\":[");
        for (i, l) in self.lambda_trajectory.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&l.to_string());
        }
        s.push_str("],");
        s.push_str(&format!(
            "\"pq_ops\":{{\"pushes\":{},\"raises\":{},\"pops\":{},\"total\":{}}},",
            self.pq_ops.pushes,
            self.pq_ops.raises,
            self.pq_ops.pops,
            self.pq_ops.total()
        ));
        s.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_json_str(&mut s, "name", p.name);
            s.push_str(&format!("\"seconds\":{:.9}}}", p.seconds));
        }
        s.push_str("],");
        s.push_str("\"contraction_paths\":[");
        for (i, p) in self.contraction_paths.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_string(&p.to_string()));
        }
        s.push_str("],");
        s.push_str(&format!(
            "\"contraction_dispatch\":{{\"sequential_fallback_threshold\":{},\
             \"sort_min_estimated_pairs\":{}}},",
            ContractionEngine::SEQUENTIAL_FALLBACK_THRESHOLD,
            ContractionEngine::SORT_MIN_ESTIMATED_PAIRS
        ));
        s.push_str(&format!(
            "\"kernel_n\":{},\"kernel_m\":{},",
            self.kernel_n, self.kernel_m
        ));
        s.push_str("\"reductions\":[");
        for (i, r) in self.reductions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_json_str(&mut s, "name", r.name);
            s.push_str(&format!(
                "\"rounds\":{},\"vertices_removed\":{},\"edges_removed\":{},\"seconds\":{:.9}}}",
                r.rounds, r.vertices_removed, r.edges_removed, r.seconds
            ));
        }
        s.push_str("],");
        s.push_str(&format!("\"total_seconds\":{:.9}", self.total_seconds));
        s.push('}');
        s
    }
}

/// Build-time telemetry of one cactus construction (carried by
/// [`Cactus`](crate::cactus::Cactus) and surfaced in its JSON summary).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CactusStats {
    /// Input size the cactus was built for.
    pub n: usize,
    pub m: usize,
    pub lambda: EdgeWeight,
    /// Minimum cuts enumerated (0 for the λ = 0 structural family).
    pub cuts: u64,
    /// Vertex classes — vertices never separated by any minimum cut
    /// (λ = 0: connected components).
    pub classes: usize,
    /// Wall-clock of the λ solve (0 when λ was supplied).
    pub solve_seconds: f64,
    /// Wall-clock of the all-min-cuts enumeration.
    pub enumerate_seconds: f64,
    /// Wall-clock of structure assembly plus the bijection validation.
    pub build_seconds: f64,
}

impl CactusStats {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"m\":{},\"lambda\":{},\"cuts\":{},\"classes\":{},\
             \"solve_seconds\":{:.9},\"enumerate_seconds\":{:.9},\"build_seconds\":{:.9}}}",
            self.n,
            self.m,
            self.lambda,
            self.cuts,
            self.classes,
            self.solve_seconds,
            self.enumerate_seconds,
            self.build_seconds
        )
    }
}

fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&json_string(value));
    out.push(',');
}

/// Renders `s` as a quoted, escaped JSON string literal — the one
/// escaper shared by every hand-rolled JSON emitter in the workspace
/// (this offline build carries no JSON crate).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Mutable run context threaded through the instrumented algorithm
/// drivers: the stats sink plus the optional deadline.
pub struct SolveContext<'a> {
    pub stats: &'a mut SolverStats,
    pub deadline: Option<Instant>,
    /// The budget that produced `deadline` (for error reporting).
    pub budget: Option<std::time::Duration>,
}

impl<'a> SolveContext<'a> {
    pub fn new(stats: &'a mut SolverStats) -> Self {
        SolveContext {
            stats,
            deadline: None,
            budget: None,
        }
    }

    pub fn with_budget(stats: &'a mut SolverStats, budget: Option<std::time::Duration>) -> Self {
        SolveContext {
            stats,
            deadline: budget.map(|b| Instant::now() + b),
            budget,
        }
    }

    /// Fails the run when the deadline has passed. Called between outer
    /// rounds, so overruns are bounded by one round's work.
    pub fn check_budget(&self) -> Result<(), MinCutError> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(MinCutError::TimeBudgetExceeded {
                budget: self.budget.unwrap_or_default(),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_trajectory_collapses_duplicates() {
        let mut s = SolverStats::new("x".into(), 4, 4);
        s.record_lambda(10);
        s.record_lambda(10);
        s.record_lambda(7);
        s.record_lambda(7);
        s.record_lambda(3);
        assert_eq!(s.lambda_trajectory, vec![10, 7, 3]);
    }

    #[test]
    fn json_is_well_formed_and_escapes() {
        let mut s = SolverStats::new("NOIλ̂-\"Heap\"".into(), 10, 20);
        s.record_lambda(5);
        s.time_phase("noi", |_| ());
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"Heap\\\""));
        assert!(j.contains("\"lambda_trajectory\":[5]"));
        assert!(j.contains("\"phases\":[{\"name\":\"noi\""));
    }

    #[test]
    fn budget_check_trips_after_deadline() {
        let mut s = SolverStats::scratch();
        let ctx = SolveContext::with_budget(&mut s, Some(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            ctx.check_budget(),
            Err(MinCutError::TimeBudgetExceeded { .. })
        ));
        let mut s2 = SolverStats::scratch();
        let ctx2 = SolveContext::new(&mut s2);
        assert!(ctx2.check_budget().is_ok());
    }
}
