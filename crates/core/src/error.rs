//! Structured errors for the solver front door.
//!
//! The seed code `assert!`ed its way out of malformed inputs; the session
//! API reports them as values so callers (the CLI, the bench harness,
//! services embedding the library) can react without catching panics.

use std::time::Duration;

/// Everything that can go wrong when resolving or running a solver.
#[derive(Clone, Debug, PartialEq)]
pub enum MinCutError {
    /// A cut needs two sides: graphs with fewer than two vertices have no
    /// cuts at all.
    TooFewVertices { n: usize },
    /// The requested name matches no registered solver.
    UnknownSolver {
        name: String,
        /// Canonical names of every registered solver, for the error
        /// message and for CLI suggestions.
        known: Vec<String>,
    },
    /// The [`SolveOptions`](crate::SolveOptions) carry a value a solver
    /// cannot work with (for example ε ≤ 0 for Matula).
    InvalidOptions { message: String },
    /// The optional time budget ran out before the solver finished.
    TimeBudgetExceeded { budget: Duration },
    /// A dynamic-graph update was rejected (self-loop, zero weight,
    /// out-of-range endpoint, deleting a missing edge, or an unknown
    /// dynamic handle). The graph is unchanged.
    InvalidUpdate { message: String },
    /// A line of an edge-update trace (`i u v w` / `d u v` / `q`) failed
    /// to parse, with its 1-based line number.
    TraceParse { line: usize, message: String },
    /// A cactus query (`qc` / `qs`) arrived where no cactus is
    /// maintained — e.g. `--stream` without `--cactus`, or a dynamic
    /// service handle registered without cactus maintenance.
    CactusUnavailable { message: String },
    /// A binary graph pack (`.smcpack`) was rejected: truncated file,
    /// bad magic, version skew, wrong/overflowing section lengths, or
    /// misaligned sections. Carries the rendered
    /// [`PackError`](mincut_graph::pack::PackError).
    PackFormat { message: String },
}

impl From<mincut_graph::pack::PackError> for MinCutError {
    fn from(e: mincut_graph::pack::PackError) -> Self {
        MinCutError::PackFormat {
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for MinCutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinCutError::TooFewVertices { n } => {
                write!(f, "minimum cut needs at least two vertices, got {n}")
            }
            MinCutError::UnknownSolver { name, known } => {
                write!(
                    f,
                    "unknown solver {name:?}; registered: {}",
                    known.join(", ")
                )
            }
            MinCutError::InvalidOptions { message } => {
                write!(f, "invalid solve options: {message}")
            }
            MinCutError::TimeBudgetExceeded { budget } => {
                write!(
                    f,
                    "time budget of {budget:?} exhausted before the solver finished"
                )
            }
            MinCutError::InvalidUpdate { message } => {
                write!(f, "invalid graph update: {message}")
            }
            MinCutError::TraceParse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            MinCutError::CactusUnavailable { message } => {
                write!(f, "no cactus maintained: {message}")
            }
            MinCutError::PackFormat { message } => {
                write!(f, "invalid graph pack: {message}")
            }
        }
    }
}

impl std::error::Error for MinCutError {}
