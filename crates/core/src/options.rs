//! [`SolveOptions`]: every knob of every solver, unified.
//!
//! The seed code spread these across five bespoke config structs
//! (`NoiConfig`, `ParCutConfig`, `VieCutConfig`, `KargerSteinConfig`,
//! `MatulaConfig`). The session API passes one options value to every
//! solver; each solver reads the fields it understands and ignores the
//! rest, so a configuration sweep can reuse a single options value
//! across the whole registry.

use std::time::Duration;

use mincut_ds::PqKind;
use mincut_graph::EdgeWeight;

use crate::error::MinCutError;
use crate::reduce::Reductions;

/// Unified solver configuration (builder-style).
///
/// ```
/// use mincut_core::SolveOptions;
/// use mincut_ds::PqKind;
///
/// let opts = SolveOptions::new()
///     .seed(42)
///     .pq(PqKind::BQueue)
///     .threads(4)
///     .witness(false);
/// assert_eq!(opts.seed, 42);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOptions {
    /// Seed for every randomized component (start vertices, label
    /// propagation orders, Karger–Stein contractions).
    pub seed: u64,
    /// Priority queue for the NOI scans, unless the solver name pins one
    /// (e.g. `NOIλ̂-BStack`).
    pub pq: PqKind,
    /// Worker threads for the parallel solvers.
    pub threads: usize,
    /// Independent repetitions for Monte-Carlo solvers (Karger–Stein).
    pub repetitions: usize,
    /// Approximation slack ε for Matula's (2+ε)-approximation.
    pub epsilon: f64,
    /// Optional starting bound: the value of an **actual cut** of the
    /// input (with its side, if known). Exactness is lost if the value
    /// does not correspond to a real cut.
    pub initial_bound: Option<(EdgeWeight, Option<Vec<bool>>)>,
    /// Track and return the cut side. Disable to measure value-only runs
    /// the way the paper does.
    pub witness: bool,
    /// Optional wall-clock budget; solvers check it between rounds and
    /// fail with [`MinCutError::TimeBudgetExceeded`] when it runs out.
    pub time_budget: Option<Duration>,
    /// Kernelization passes run before the solver's main loop (default:
    /// the full pipeline). See [`Reductions`] and the
    /// [`reduce`](crate::reduce) module; exactness is never affected —
    /// the pipeline maintains `λ(G) = min(λ̂, λ(kernel))`.
    pub reductions: Reductions,
}

/// Cached hardware parallelism. `available_parallelism()` re-reads
/// cgroup limits on every call (~0.5ms in containers) and
/// `SolveOptions::default()` sits on the per-solve path, so the probe
/// must run once per process.
pub(crate) fn hardware_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            seed: 0xC0FFEE,
            pq: PqKind::Heap,
            threads: hardware_threads(),
            repetitions: 16,
            epsilon: 0.5,
            initial_bound: None,
            witness: true,
            time_budget: None,
            reductions: Reductions::default(),
        }
    }
}

impl SolveOptions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn pq(mut self, pq: PqKind) -> Self {
        self.pq = pq;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions;
        self
    }

    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    pub fn initial_bound(mut self, value: EdgeWeight, side: Option<Vec<bool>>) -> Self {
        self.initial_bound = Some((value, side));
        self
    }

    pub fn witness(mut self, witness: bool) -> Self {
        self.witness = witness;
        self
    }

    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Selects the kernelization passes (see [`Reductions`]).
    pub fn reductions(mut self, reductions: Reductions) -> Self {
        self.reductions = reductions;
        self
    }

    /// Disables kernelization (the CLI's `--no-reduce`).
    pub fn no_reductions(mut self) -> Self {
        self.reductions = Reductions::None;
        self
    }

    /// Field-level validation shared by every solver.
    pub fn validate(&self) -> Result<(), MinCutError> {
        if self.threads == 0 {
            return Err(MinCutError::InvalidOptions {
                message: "threads must be at least 1".into(),
            });
        }
        if self.repetitions == 0 {
            return Err(MinCutError::InvalidOptions {
                message: "repetitions must be at least 1".into(),
            });
        }
        if self.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(MinCutError::InvalidOptions {
                message: format!("epsilon must be positive, got {}", self.epsilon),
            });
        }
        self.reductions.validate()?;
        if self.witness && matches!(&self.initial_bound, Some((_, None))) {
            return Err(MinCutError::InvalidOptions {
                message: "initial_bound without a witness side cannot improve a witness-tracking \
                          run; supply the bound's side or disable witness tracking"
                    .into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = SolveOptions::new()
            .seed(7)
            .pq(PqKind::BStack)
            .threads(3)
            .repetitions(5)
            .epsilon(0.25)
            .witness(false)
            .time_budget(Duration::from_secs(1));
        assert_eq!(o.seed, 7);
        assert_eq!(o.pq, PqKind::BStack);
        assert_eq!(o.threads, 3);
        assert_eq!(o.repetitions, 5);
        assert_eq!(o.epsilon, 0.25);
        assert!(!o.witness);
        assert_eq!(o.time_budget, Some(Duration::from_secs(1)));
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        assert!(SolveOptions::new().threads(0).validate().is_err());
        assert!(SolveOptions::new().repetitions(0).validate().is_err());
        assert!(SolveOptions::new().epsilon(0.0).validate().is_err());
        assert!(SolveOptions::new().epsilon(f64::NAN).validate().is_err());
    }

    #[test]
    fn reduction_selections_validate() {
        assert!(SolveOptions::new().no_reductions().validate().is_ok());
        assert!(SolveOptions::new()
            .reductions(Reductions::Only(vec!["heavy-edge".into()]))
            .validate()
            .is_ok());
        assert!(SolveOptions::new()
            .reductions(Reductions::Only(vec!["bogus".into()]))
            .validate()
            .is_err());
        assert_eq!(SolveOptions::new().reductions, Reductions::All);
    }

    #[test]
    fn sideless_initial_bound_requires_witness_off() {
        // A witness-tracking run cannot adopt a bound it has no side
        // for; this used to be a panic deep inside NOI.
        assert!(SolveOptions::new()
            .initial_bound(1, None)
            .validate()
            .is_err());
        assert!(SolveOptions::new()
            .initial_bound(1, None)
            .witness(false)
            .validate()
            .is_ok());
        assert!(SolveOptions::new()
            .initial_bound(1, Some(vec![true, false]))
            .validate()
            .is_ok());
    }
}
