//! The exact minimum-cut driver of Nagamochi, Ono and Ibaraki, with the
//! paper's sequential optimisations (§3.1).
//!
//! Repeats: one CAPFOREST pass marks contractible edges → collapse the
//! marked blocks → tighten λ̂ with the trivial cuts of the contracted
//! graph → stop at two vertices. Variants:
//!
//! * **NOI-HNSS** — unbounded binary heap (the implementation of Henzinger
//!   et al. that the paper builds on);
//! * **NOIλ̂-Heap / NOIλ̂-BStack / NOIλ̂-BQueue** — priorities capped at λ̂
//!   with the three queue implementations of §3.1.3;
//! * **…-VieCut** — seed λ̂ with the result of the inexact VieCut algorithm
//!   instead of the minimum-degree bound (§3.1.1), which unlocks far more
//!   contractions per pass.

use mincut_ds::PqKind;
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::capforest::ScanWorkspace;
use crate::error::MinCutError;
use crate::stats::{SolveContext, SolverStats};
use crate::stoer_wagner::stoer_wagner_phase;
use crate::MinCutResult;

/// Configuration for [`noi_minimum_cut`].
#[derive(Clone, Debug)]
pub struct NoiConfig {
    /// Which priority queue to use.
    pub pq: PqKind,
    /// Cap queue priorities at λ̂ (the paper's central optimisation).
    pub bounded: bool,
    /// Optional initial bound (value and witness side over g's vertices),
    /// typically the VieCut result. The value must be the value of an
    /// actual cut of `g`; otherwise correctness is lost.
    pub initial_bound: Option<(EdgeWeight, Option<Vec<bool>>)>,
    /// Track and return the cut side (small overhead; benches disable it).
    pub compute_side: bool,
    /// Seed for the random start vertex of each pass.
    pub seed: u64,
}

impl Default for NoiConfig {
    fn default() -> Self {
        NoiConfig {
            pq: PqKind::Heap,
            bounded: true,
            initial_bound: None,
            compute_side: true,
            seed: 0x5eed,
        }
    }
}

impl NoiConfig {
    /// The paper's NOI-HNSS comparator: unbounded binary heap.
    pub fn hnss() -> Self {
        NoiConfig {
            pq: PqKind::Heap,
            bounded: false,
            ..Default::default()
        }
    }

    /// NOIλ̂ with the given queue.
    pub fn bounded(pq: PqKind) -> Self {
        NoiConfig {
            pq,
            bounded: true,
            ..Default::default()
        }
    }
}

/// Exact minimum cut via NOI. Requires n ≥ 2; handles disconnected inputs.
pub fn noi_minimum_cut(g: &CsrGraph, cfg: &NoiConfig) -> MinCutResult {
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    noi_minimum_cut_instrumented(g, cfg, &mut ctx).expect("NOI without a time budget cannot fail")
}

/// [`noi_minimum_cut`] feeding per-round telemetry (λ̂ trajectory,
/// contraction counts, rescue phases) into the [`SolveContext`] and
/// honoring its optional time budget between rounds.
pub fn noi_minimum_cut_instrumented(
    g: &CsrGraph,
    cfg: &NoiConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        ctx.stats.record_lambda(0);
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return Ok(MinCutResult {
            value: 0,
            side: cfg.compute_side.then_some(side),
        });
    }
    noi_minimum_cut_connected(g, cfg, ctx)
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both), skipping the redundant
/// component scan.
pub(crate) fn noi_minimum_cut_connected(
    g: &CsrGraph,
    cfg: &NoiConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Initial bound: minimum weighted degree (the trivial cut), possibly
    // beaten by a supplied bound (VieCut).
    let (dv, ddeg) = g.min_weighted_degree().expect("n >= 2");
    let mut lambda: EdgeWeight = ddeg;
    let mut best_side: Option<Vec<bool>> = cfg.compute_side.then(|| {
        let mut side = vec![false; g.n()];
        side[dv as usize] = true;
        side
    });
    if let Some((b, bside)) = &cfg.initial_bound {
        if let Some(s) = bside {
            // The contract on `initial_bound`: the value must be the value
            // of an actual cut, or correctness is lost.
            debug_assert_eq!(
                g.cut_value(s),
                *b,
                "initial bound witness must match its value"
            );
        }
        if *b < lambda {
            lambda = *b;
            if cfg.compute_side {
                best_side = Some(bside.clone().unwrap_or_else(|| {
                    panic!("initial bound without witness while compute_side is on")
                }));
            }
        }
    }

    ctx.stats.record_lambda(lambda);

    let mut engine = ContractionEngine::new();
    let mut ws = ScanWorkspace::new();
    let mut labels_buf: Vec<NodeId> = Vec::new();
    let mut current = g.clone();
    // Witness bookkeeping (per-round O(n) membership folding) is paid
    // only when a side is requested; value-only runs — how the paper
    // measures — skip it entirely.
    let mut membership = Membership::identity(if cfg.compute_side { g.n() } else { 0 });

    while current.n() > 2 {
        ctx.check_budget()?;
        ctx.stats.rounds += 1;
        let mut round_span = mincut_obs::span("noi/round");
        round_span.arg("round", ctx.stats.rounds);
        round_span.arg("n", current.n());
        round_span.arg("lambda_hat", lambda);
        let start = rng.gen_range(0..current.n() as NodeId);
        let info = ws.scan(&current, lambda, start, cfg.pq, cfg.bounded);
        ctx.stats.add_pq_ops(ws.take_ops());

        // Prefix cuts found by the scan.
        if info.lambda_hat < lambda {
            lambda = info.lambda_hat;
            ctx.stats.record_lambda(lambda);
            if cfg.compute_side {
                let len = info.best_prefix_len.expect("improvement implies witness");
                best_side = Some(membership.side_of_vertices(&ws.order()[..len]));
            }
        }

        if info.unions == 0 {
            // Bounded/parallel scans may come up empty (§3.2: "we can not
            // guarantee anymore that the algorithm actually finds a
            // contractible edge"). One Stoer–Wagner phase restores the
            // guarantee: its cut-of-phase is recorded and its last pair is
            // always safely contractible.
            ctx.stats.sw_rescues += 1;
            round_span.arg("sw_rescue", true);
            let phase = stoer_wagner_phase(&current, start);
            if phase.cut_of_phase < lambda {
                lambda = phase.cut_of_phase;
                ctx.stats.record_lambda(lambda);
                if cfg.compute_side {
                    best_side = Some(membership.side_of_vertices(&[phase.t]));
                }
            }
            ws.uf_mut().union(phase.s, phase.t);
        }

        let blocks = ws.uf_mut().dense_labels_into(&mut labels_buf);
        debug_assert!(blocks < current.n(), "every round must make progress");
        ctx.stats.contracted_vertices += (current.n() - blocks) as u64;
        let next = if cfg.compute_side {
            engine.contract_tracked(&current, &labels_buf, blocks, &mut membership)
        } else {
            engine.contract(&current, &labels_buf, blocks)
        };
        ctx.stats.record_contraction_path(engine.last_path());
        round_span.arg_display("path", engine.last_path());
        engine.recycle(std::mem::replace(&mut current, next));

        // Trivial cuts of the contracted graph (§3.2: "If the collapsed
        // graph G_C has a minimum degree of less than λ̂, we update λ̂").
        // A fully collapsed graph (n = 1) has no cuts at all.
        if let Some((v, d)) = current.min_weighted_degree() {
            if current.n() >= 2 && d < lambda {
                lambda = d;
                ctx.stats.record_lambda(lambda);
                if cfg.compute_side {
                    best_side = Some(membership.side_of_vertices(&[v]));
                }
            }
        }
    }

    // Two vertices left: the remaining cut is both vertices' degree cut,
    // already covered by the min-degree update above.
    Ok(MinCutResult {
        value: lambda,
        side: best_side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn all_variants() -> Vec<NoiConfig> {
        let mut v = vec![NoiConfig::hnss()];
        for pq in PqKind::ALL {
            v.push(NoiConfig::bounded(pq));
        }
        v
    }

    fn check_all(g: &CsrGraph, expected: EdgeWeight) {
        for cfg in all_variants() {
            let r = noi_minimum_cut(g, &cfg);
            assert_eq!(r.value, expected, "value mismatch for {cfg:?}");
            let side = r.side.expect("witness requested");
            assert!(g.is_proper_cut(&side), "improper witness for {cfg:?}");
            assert_eq!(g.cut_value(&side), expected, "witness mismatch for {cfg:?}");
        }
    }

    #[test]
    fn known_families_all_variants() {
        check_all(&known::path_graph(9, 2).0, 2);
        check_all(&known::cycle_graph(11, 3).0, 6);
        check_all(&known::complete_graph(8, 1).0, 7);
        check_all(&known::star_graph(7, 5).0, 5);
        check_all(&known::grid_graph(4, 6, 2).0, 4);
        let (g, l) = known::two_communities(7, 5, 2, 3, 1);
        check_all(&g, l);
        let (g, l) = known::ring_of_cliques(5, 4, 3, 1);
        check_all(&g, l);
        let (g, l) = known::barbell(8, 8, 2, 5);
        check_all(&g, l);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        for trial in 0..40 {
            let n = rng.gen_range(4..10);
            let mut edges = Vec::new();
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..8)));
            }
            for _ in 0..rng.gen_range(0..14) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..8)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let expected = known::brute_force_mincut(&g);
            check_all(&g, expected);
            let _ = trial;
        }
    }

    #[test]
    fn loose_initial_bound_does_not_change_result() {
        // An honest but loose initial bound (a trivial cut worse than the
        // minimum-degree cut) must not change the result.
        let (g, l) = known::two_communities(6, 6, 1, 2, 1);
        let mut side0 = vec![false; g.n()];
        side0[0] = true;
        let mut cfg = NoiConfig::bounded(PqKind::Heap);
        cfg.initial_bound = Some((g.cut_value(&side0), Some(side0)));
        let r = noi_minimum_cut(&g, &cfg);
        assert_eq!(r.value, l);
        assert_eq!(g.cut_value(&r.side.unwrap()), l);
    }

    #[test]
    fn tight_initial_bound_short_circuits_correctly() {
        // Bound exactly λ with a witness: the result must keep value λ and
        // return a valid witness (possibly the provided one).
        let (g, l) = known::two_communities(6, 6, 2, 2, 1);
        // Construct the true witness: first clique on one side.
        let mut side = vec![false; g.n()];
        side[..6].fill(true);
        assert_eq!(g.cut_value(&side), l);
        let mut cfg = NoiConfig::bounded(PqKind::BQueue);
        cfg.initial_bound = Some((l, Some(side)));
        let r = noi_minimum_cut(&g, &cfg);
        assert_eq!(r.value, l);
        assert_eq!(g.cut_value(&r.side.unwrap()), l);
    }

    #[test]
    fn disconnected_input() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)]);
        for cfg in all_variants() {
            let r = noi_minimum_cut(&g, &cfg);
            assert_eq!(r.value, 0);
            assert_eq!(g.cut_value(&r.side.unwrap()), 0);
        }
    }

    #[test]
    fn no_side_mode() {
        let (g, l) = known::cycle_graph(20, 2);
        let cfg = NoiConfig {
            compute_side: false,
            ..NoiConfig::bounded(PqKind::BStack)
        };
        let r = noi_minimum_cut(&g, &cfg);
        assert_eq!(r.value, l);
        assert!(r.side.is_none());
    }

    #[test]
    fn weighted_heavy_graph_uses_heap_fallback() {
        // Bound above MAX_BUCKET_BOUND forces the per-pass heap fallback.
        let (g, l) = known::two_communities(5, 5, 1, 1 << 30, 1 << 27);
        let cfg = NoiConfig::bounded(PqKind::BStack);
        let r = noi_minimum_cut(&g, &cfg);
        assert_eq!(r.value, l);
    }
}
