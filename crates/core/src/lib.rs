//! # mincut-core — shared-memory exact minimum cuts
//!
//! A faithful, from-scratch Rust implementation of *"Shared-memory Exact
//! Minimum Cuts"* (Henzinger, Noe, Schulz; IPDPS 2019), including every
//! algorithm the paper builds on, optimises or compares against:
//!
//! | Paper name | Here |
//! |---|---|
//! | CAPFOREST (NOI scan, λ̂-bounded queues, Lemma 3.1) | [`capforest`] |
//! | NOI-HNSS, NOIλ̂-{BStack, BQueue, Heap} (±VieCut) | [`noi`] |
//! | Parallel CAPFOREST (Algorithm 1) | [`parallel::capforest`] |
//! | ParCut (Algorithm 2) | [`parallel::mincut`] |
//! | VieCut (label propagation + Padberg–Rinaldi multilevel) | [`viecut`] |
//! | Stoer–Wagner | [`stoer_wagner`] |
//! | Karger–Stein | [`karger_stein`] |
//! | Matula (2+ε)-approximation (§5 future work) | [`matula`] |
//!
//! The flow-based comparators (Hao–Orlin/HO-CGKLS, Gomory–Hu) live in
//! the companion crate `mincut-flow` and are registered here alongside
//! the native solvers.
//!
//! ## The solver session API
//!
//! Every algorithm sits behind the object-safe [`Solver`] trait and is
//! registered by name in the [`SolverRegistry`] — the single source of
//! algorithm names for the CLI, the bench harness and the test matrix.
//! A [`Session`] resolves solvers by their paper names (§4.1) or CLI
//! spellings and returns a [`SolveOutcome`]: the cut plus a
//! [`SolverStats`] telemetry report (λ̂ trajectory, contraction counts,
//! priority-queue operation totals, phase timings).
//!
//! ```
//! use mincut_core::{Session, SolveOptions};
//! use mincut_graph::CsrGraph;
//!
//! // A square with one heavy diagonal.
//! let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]);
//!
//! // The paper's fastest sequential configuration, by CLI spelling...
//! let outcome = Session::new(&g).run("noi-viecut").unwrap();
//! assert_eq!(outcome.cut.value, 2);
//! assert!(outcome.cut.verify(&g));
//! // ...with a full telemetry report.
//! assert_eq!(*outcome.stats.lambda_trajectory.last().unwrap(), 2);
//!
//! // Queue-pinned paper spellings resolve too, and options sweep
//! // uniformly across every solver.
//! let opts = SolveOptions::new().seed(7).witness(false);
//! let bstack = Session::new(&g).options(opts).run("NOIλ̂-BStack").unwrap();
//! assert_eq!(bstack.cut.value, 2);
//! assert!(bstack.cut.side.is_none());
//! ```
//!
//! ## Kernelization
//!
//! Every solve first runs the exact reduction pipeline of the
//! [`reduce`] module (connected-component split, k-core-order degree
//! bound, heavy-edge and Padberg–Rinaldi contraction), so the algorithm
//! body only sees the kernel; λ̂ found along the way combines exactly via
//! `λ(G) = min(λ̂, λ(kernel))`. The [`SolveOptions::reductions`] knob
//! selects passes or disables the pipeline (`--no-reduce` /
//! `--reductions=<list>` on the CLI), and [`SolverStats`] reports the
//! kernel size plus per-pass removals:
//!
//! ```
//! use mincut_core::{Reductions, Session, SolveOptions};
//! use mincut_graph::generators::known;
//!
//! let (g, l) = known::two_communities(12, 12, 2, 2, 1);
//! let on = Session::new(&g).run("noi").unwrap();
//! assert_eq!(on.cut.value, l);
//! assert!(on.stats.kernel_n < g.n(), "clustered graphs kernelize");
//!
//! let off = Session::new(&g)
//!     .options(SolveOptions::new().reductions(Reductions::None))
//!     .run("noi")
//!     .unwrap();
//! assert_eq!(off.cut.value, l, "reductions never change exact results");
//! ```
//!
//! Malformed inputs are values, not panics:
//!
//! ```
//! use mincut_core::{MinCutError, Session};
//! use mincut_graph::CsrGraph;
//!
//! let singleton = CsrGraph::from_edges(1, &[]);
//! let err = Session::new(&singleton).run("noi").unwrap_err();
//! assert_eq!(err, MinCutError::TooFewVertices { n: 1 });
//! ```
//!
//! ## The batch serving layer
//!
//! [`MinCutService`] serves many `(graph, solver, options)` jobs at once:
//! batches run concurrently on self-scheduling workers, results are
//! memoised in a [`CsrGraph::fingerprint`]-keyed cut cache so repeat
//! submissions never re-solve, and jobs sharing a graph or a declared
//! family reuse the best cut found so far as their initial λ̂ bound (see
//! the [`service`] module docs):
//!
//! ```
//! use std::sync::Arc;
//! use mincut_core::{BatchJob, MinCutService, ServiceConfig};
//! use mincut_graph::CsrGraph;
//!
//! let g = Arc::new(CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]));
//! let service = MinCutService::new(ServiceConfig::new().concurrency(1));
//! let report = service.run_batch(&[
//!     BatchJob::new(g.clone(), "noi-viecut"),
//!     BatchJob::new(g.clone(), "noi-viecut"), // served from the cut cache
//! ]);
//! assert!(report.all_ok());
//! assert_eq!(report.stats.cache_hits, 1);
//! ```
//!
//! ## Dynamic updates
//!
//! Real traffic mutates its graphs. [`DynamicMinCut`] maintains
//! `(λ, witness)` exactly across edge insertions and deletions over a
//! [`DeltaGraph`](mincut_graph::DeltaGraph) overlay, re-solving — seeded
//! through [`SolveOptions::initial_bound`] — only when an update crosses
//! the witness in a way that can change the answer (see the
//! [`dynamic`] module docs for the case analysis). The service exposes
//! it with `(fingerprint, epoch)` cache keys, and the CLI as
//! `mincut --stream <trace>`:
//!
//! ```
//! use mincut_core::{DynamicMinCut, SolveOptions};
//! use mincut_graph::generators::known;
//!
//! let (g, l) = known::two_communities(8, 8, 1, 2, 1); // one unit bridge
//! let mut dyn_cut = DynamicMinCut::new(g, "noi-viecut", SolveOptions::new()).unwrap();
//! assert_eq!(dyn_cut.lambda(), l);
//!
//! // A second bridge doubles the community cut; the re-solve is seeded
//! // with the old witness at λ + w.
//! assert_eq!(dyn_cut.insert_edge(1, 9, 1).unwrap().lambda, 2);
//! // Deleting a crossing bridge is exact *without* a solver run.
//! assert_eq!(dyn_cut.delete_edge(0, 8).unwrap().lambda, 1);
//! ```
//!
//! The enum-based front door of earlier versions remains as a thin shim:
//!
//! ```
//! use mincut_core::{minimum_cut, Algorithm};
//! use mincut_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]);
//! let result = minimum_cut(&g, Algorithm::default());
//! assert_eq!(result.value, 2);
//! assert!(result.verify(&g));
//! ```

pub mod cactus;
pub mod capforest;
pub mod dynamic;
mod error;
pub mod karger_stein;
pub mod matula;
pub mod noi;
mod options;
pub mod parallel;
pub mod reduce;
mod registry;
pub mod service;
mod solver;
mod stats;
pub mod stoer_wagner;
pub mod viecut;

pub use cactus::{Cactus, CactusBuilder};
pub use dynamic::{
    materialize, parse_trace, parse_trace_op, DynamicMinCut, DynamicStats, TraceOp, UpdateReport,
};
pub use error::MinCutError;
pub use mincut_ds::PqKind;
pub use mincut_graph::Membership;
pub use options::SolveOptions;
pub use reduce::{ReduceOutcome, Reduction, ReductionPipeline, Reductions};
pub use registry::{SolverEntry, SolverRegistry};
pub use service::{
    BatchJob, BatchReport, BatchStats, CacheStats, DynamicHandle, ErrorPolicy, JobReport,
    JobStatus, MinCutService, ServiceConfig,
};
pub use solver::{Capabilities, Guarantee, Session, SolveOutcome, Solver};
pub use stats::{
    json_string, CactusStats, PhaseTiming, ReductionPassStats, SolveContext, SolverStats,
};

use mincut_graph::{CsrGraph, EdgeWeight};

/// A minimum cut: its value and (optionally) a witness side over the
/// original vertex set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCutResult {
    /// The cut value. For the exact algorithms this is λ(G); for VieCut /
    /// Karger–Stein / Matula it is the value of an actual cut ≥ λ(G) with
    /// the respective quality guarantee.
    pub value: EdgeWeight,
    /// `side[v] == true` for the vertices on one side of the cut, if
    /// witness tracking was enabled (it is, through the default options).
    pub side: Option<Vec<bool>>,
}

impl MinCutResult {
    /// Checks the witness against the graph: proper cut, value matches.
    pub fn verify(&self, g: &CsrGraph) -> bool {
        match &self.side {
            None => false,
            Some(side) => g.is_proper_cut(side) && g.cut_value(side) == self.value,
        }
    }
}

/// Algorithm selector for [`minimum_cut`], named after the variants in the
/// paper's evaluation (§4.1).
///
/// Kept as a back-compat shim: each variant maps onto a registered
/// solver family plus [`SolveOptions`]; new code should resolve solvers
/// by name through [`SolverRegistry`] or [`Session`].
#[derive(Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// NOI with an unbounded binary heap — the implementation of
    /// Henzinger, Noe, Schulz and Strash that the paper starts from.
    NoiHnss,
    /// NOI-HNSS seeded with the VieCut bound (NOI-HNSS-VieCut).
    NoiHnssVieCut,
    /// NOIλ̂: priorities capped at λ̂, with the chosen queue (§3.1.2–3.1.3).
    NoiBounded { pq: PqKind },
    /// NOIλ̂ seeded with the VieCut bound (NOIλ̂-·-VieCut) — the paper's
    /// fastest sequential configuration with `pq = Heap`.
    NoiBoundedVieCut { pq: PqKind },
    /// ParCutλ̂: the shared-memory parallel Algorithm 2.
    ParCut { pq: PqKind, threads: usize },
    /// Stoer–Wagner (comparator).
    StoerWagner,
    /// Hao–Orlin (flow-based comparator, HO-CGKLS).
    HaoOrlin,
    /// Gomory–Hu cut tree (Gusfield construction): n−1 max-flows; the
    /// classical flow reduction the paper's related work (§2.2) starts
    /// from. Far slower, but also yields *all pairwise* min cuts.
    GomoryHu,
    /// Karger–Stein random contraction (Monte-Carlo comparator).
    KargerStein { repetitions: usize },
    /// Matula's (2+ε)-approximation (inexact; §5 future-work extension).
    Matula { epsilon: f64 },
    /// VieCut (inexact multilevel heuristic; upper bound, usually exact).
    VieCut,
}

impl Default for Algorithm {
    /// The paper's recommended sequential configuration:
    /// NOIλ̂-Heap-VieCut.
    fn default() -> Self {
        Algorithm::NoiBoundedVieCut { pq: PqKind::Heap }
    }
}

impl Algorithm {
    /// The registry family this variant maps to, plus the options patch
    /// it implies.
    fn to_solver(&self, seed: u64) -> (&'static str, SolveOptions) {
        let opts = SolveOptions::new().seed(seed);
        match self {
            Algorithm::NoiHnss => ("NOI-HNSS", opts),
            Algorithm::NoiHnssVieCut => ("NOI-HNSS-VieCut", opts),
            Algorithm::NoiBounded { pq } => ("NOIλ̂", opts.pq(*pq)),
            Algorithm::NoiBoundedVieCut { pq } => ("NOIλ̂-VieCut", opts.pq(*pq)),
            Algorithm::ParCut { pq, threads } => ("ParCutλ̂", opts.pq(*pq).threads(*threads)),
            Algorithm::StoerWagner => ("StoerWagner", opts),
            Algorithm::HaoOrlin => ("HO-CGKLS", opts),
            Algorithm::GomoryHu => ("GomoryHu", opts),
            Algorithm::KargerStein { repetitions } => {
                // The seed API clamped zero to one repetition; keep that
                // instead of tripping SolveOptions validation.
                ("KargerStein", opts.repetitions((*repetitions).max(1)))
            }
            Algorithm::Matula { epsilon } => ("Matula", opts.epsilon(*epsilon)),
            Algorithm::VieCut => ("VieCut", opts),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::NoiHnss => write!(f, "NOI-HNSS"),
            Algorithm::NoiHnssVieCut => write!(f, "NOI-HNSS-VieCut"),
            Algorithm::NoiBounded { pq } => write!(f, "NOIλ̂-{pq}"),
            Algorithm::NoiBoundedVieCut { pq } => write!(f, "NOIλ̂-{pq}-VieCut"),
            Algorithm::ParCut { pq, threads } => write!(f, "ParCutλ̂-{pq}(p={threads})"),
            Algorithm::StoerWagner => write!(f, "StoerWagner"),
            Algorithm::HaoOrlin => write!(f, "HO-CGKLS"),
            Algorithm::GomoryHu => write!(f, "GomoryHu"),
            Algorithm::KargerStein { repetitions } => write!(f, "KargerStein(r={repetitions})"),
            Algorithm::Matula { epsilon } => write!(f, "Matula(ε={epsilon})"),
            Algorithm::VieCut => write!(f, "VieCut"),
        }
    }
}

/// Computes a minimum cut of `g` with the chosen algorithm and a default
/// seed. Panics if `g` has fewer than two vertices (use [`Session`] /
/// [`Solver::solve`] for error values instead). Disconnected graphs
/// yield value 0 with a component witness.
pub fn minimum_cut(g: &CsrGraph, algorithm: Algorithm) -> MinCutResult {
    minimum_cut_seeded(g, algorithm, 0xC0FFEE)
}

/// [`minimum_cut`] with an explicit seed for the randomised components
/// (start vertices, label propagation orders, Karger–Stein contractions).
pub fn minimum_cut_seeded(g: &CsrGraph, algorithm: Algorithm, seed: u64) -> MinCutResult {
    let (family, opts) = algorithm.to_solver(seed);
    let solver = SolverRegistry::global()
        .resolve(family)
        .expect("every Algorithm variant is registered");
    solver
        .solve(g, &opts)
        .unwrap_or_else(|e| panic!("minimum cut failed: {e}"))
        .cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    /// Every (family × queue) instance of the registry, the replacement
    /// for the hand-listed `exact_algorithms()` vector.
    fn registry_instances() -> Vec<(String, Box<dyn Solver>, SolveOptions)> {
        SolverRegistry::global()
            .instances()
            .into_iter()
            .map(|solver| {
                let opts = SolveOptions::new().seed(0xC0FFEE).threads(2);
                let name = solver.instance_name(&opts);
                (name, solver, opts)
            })
            .collect()
    }

    #[test]
    fn all_exact_solvers_agree_on_known_family() {
        let (g, l) = known::two_communities(9, 7, 2, 3, 1);
        for (name, solver, opts) in registry_instances() {
            if !solver.capabilities().guarantee.is_exact() {
                continue;
            }
            let out = solver
                .solve(&g, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.cut.value, l, "{name}");
            assert!(out.cut.verify(&g), "{name} witness");
        }
    }

    #[test]
    fn inexact_solvers_respect_their_guarantees() {
        let (g, l) = known::ring_of_cliques(6, 6, 2, 1);
        for (name, solver, opts) in registry_instances() {
            let guarantee = solver.capabilities().guarantee;
            if guarantee.is_exact() {
                continue;
            }
            let out = solver
                .solve(&g, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.cut.value >= l, "{name} went below λ");
            assert!(out.cut.verify(&g), "{name} must report an actual cut");
            if guarantee == Guarantee::TwoPlusEpsilon {
                let bound = ((2.0 + opts.epsilon) * l as f64).floor() as EdgeWeight;
                assert!(out.cut.value <= bound, "(2+ε) violated by {name}");
            }
        }
    }

    #[test]
    fn stats_reports_are_populated() {
        let (g, l) = known::two_communities(12, 12, 2, 2, 1);

        // Default run: the kernelization pipeline collapses this clustered
        // instance, and the stats must say so.
        let out = Session::new(&g).run("NOIλ̂-BQueue-VieCut").unwrap();
        assert_eq!(out.cut.value, l);
        let s = &out.stats;
        assert_eq!(s.algorithm, "NOIλ̂-BQueue-VieCut");
        assert_eq!((s.n, s.m), (g.n(), g.m()));
        assert_eq!(*s.lambda_trajectory.last().unwrap(), l);
        assert!(s.phases.iter().any(|p| p.name == "reduce"));
        assert!(s.kernel_n < g.n(), "clustered instance must kernelize");
        assert!(!s.reductions.is_empty(), "per-pass telemetry recorded");
        assert!(
            s.reductions.iter().any(|p| p.vertices_removed > 0),
            "some pass must report removals"
        );
        assert!(s.total_seconds >= 0.0);

        // Reductions off: the classical path with PQ/phase telemetry.
        let opts = SolveOptions::new().no_reductions();
        let out = Session::new(&g)
            .options(opts.clone())
            .run("NOIλ̂-BQueue-VieCut")
            .unwrap();
        assert_eq!(out.cut.value, l);
        let s = &out.stats;
        assert_eq!(*s.lambda_trajectory.last().unwrap(), l);
        assert!(s.pq_ops.total() > 0, "counting queues must tally ops");
        assert!(s.phases.iter().any(|p| p.name == "viecut"));
        assert!(s.phases.iter().any(|p| p.name == "noi"));
        assert!(s.reductions.is_empty());

        let par = Session::new(&g).options(opts).run("parcut").unwrap();
        assert_eq!(par.cut.value, l);
        assert!(
            par.stats.pq_ops.total() > 0,
            "worker PQ ops must be harvested"
        );
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::NoiHnss.to_string(), "NOI-HNSS");
        assert_eq!(
            Algorithm::NoiBounded { pq: PqKind::BStack }.to_string(),
            "NOIλ̂-BStack"
        );
        assert_eq!(Algorithm::default().to_string(), "NOIλ̂-Heap-VieCut");
        assert_eq!(Algorithm::HaoOrlin.to_string(), "HO-CGKLS");
        // The shim resolves every display name's family through the
        // registry under the same spelling conventions.
        for algo in [
            Algorithm::NoiHnss,
            Algorithm::default(),
            Algorithm::ParCut {
                pq: PqKind::BQueue,
                threads: 2,
            },
        ] {
            let (family, _) = algo.to_solver(1);
            assert!(SolverRegistry::global().entry(family).is_some());
        }
    }

    #[test]
    fn too_few_vertices_is_an_error_not_a_panic() {
        for n in [0, 1] {
            let g = CsrGraph::from_edges(n, &[]);
            for entry in SolverRegistry::global().entries() {
                let err = entry
                    .instantiate(None)
                    .solve(&g, &SolveOptions::new())
                    .unwrap_err();
                assert_eq!(
                    err,
                    MinCutError::TooFewVertices { n },
                    "{}",
                    entry.canonical
                );
            }
        }
    }

    #[test]
    fn disconnected_graphs_are_zero_with_witness_for_every_solver() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (3, 4, 2), (4, 5, 2)]);
        for entry in SolverRegistry::global().entries() {
            let out = entry
                .instantiate(None)
                .solve(&g, &SolveOptions::new())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.canonical));
            assert_eq!(out.cut.value, 0, "{}", entry.canonical);
            assert!(out.cut.verify(&g), "{} witness", entry.canonical);
        }
    }

    #[test]
    fn time_budget_zero_fails_fast_on_iterative_solvers() {
        let (g, _) = known::grid_graph(12, 12, 1);
        let opts = SolveOptions::new().time_budget(std::time::Duration::ZERO);
        let err = Session::new(&g).options(opts).run("noi").unwrap_err();
        assert!(matches!(err, MinCutError::TimeBudgetExceeded { .. }));
    }

    #[test]
    fn verify_rejects_bad_witnesses() {
        let (g, _) = known::cycle_graph(5, 1);
        let bad = MinCutResult {
            value: 2,
            side: Some(vec![true; 5]), // improper
        };
        assert!(!bad.verify(&g));
        let none = MinCutResult {
            value: 2,
            side: None,
        };
        assert!(!none.verify(&g));
    }
}
