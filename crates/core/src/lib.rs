//! # mincut-core — shared-memory exact minimum cuts
//!
//! A faithful, from-scratch Rust implementation of *"Shared-memory Exact
//! Minimum Cuts"* (Henzinger, Noe, Schulz; IPDPS 2019), including every
//! algorithm the paper builds on, optimises or compares against:
//!
//! | Paper name | Here |
//! |---|---|
//! | CAPFOREST (NOI scan, λ̂-bounded queues, Lemma 3.1) | [`capforest`] |
//! | NOI-HNSS, NOIλ̂-{BStack, BQueue, Heap} (±VieCut) | [`noi`] |
//! | Parallel CAPFOREST (Algorithm 1) | [`parallel::capforest`] |
//! | ParCut (Algorithm 2) | [`parallel::mincut`] |
//! | VieCut (label propagation + Padberg–Rinaldi multilevel) | [`viecut`] |
//! | Stoer–Wagner | [`stoer_wagner`] |
//! | Karger–Stein | [`karger_stein`] |
//! | Matula (2+ε)-approximation (§5 future work) | [`matula`] |
//!
//! The flow-based comparator (Hao–Orlin, HO-CGKLS) lives in the companion
//! crate `mincut-flow` and is re-exported through the unified front door
//! [`minimum_cut`].
//!
//! ## Quick start
//!
//! ```
//! use mincut_core::{minimum_cut, Algorithm};
//! use mincut_graph::CsrGraph;
//!
//! // A square with one heavy diagonal.
//! let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]);
//! let result = minimum_cut(&g, Algorithm::default());
//! assert_eq!(result.value, 2);
//! let side = result.side.unwrap();
//! assert_eq!(g.cut_value(&side), 2);
//! ```

pub mod capforest;
pub mod karger_stein;
pub mod matula;
pub mod noi;
pub mod parallel;
mod partition;
pub mod stoer_wagner;
pub mod viecut;

pub use mincut_ds::PqKind;
pub use partition::Membership;

use mincut_graph::{CsrGraph, EdgeWeight};

/// A minimum cut: its value and (optionally) a witness side over the
/// original vertex set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCutResult {
    /// The cut value. For the exact algorithms this is λ(G); for VieCut /
    /// Karger–Stein / Matula it is the value of an actual cut ≥ λ(G) with
    /// the respective quality guarantee.
    pub value: EdgeWeight,
    /// `side[v] == true` for the vertices on one side of the cut, if
    /// witness tracking was enabled (it is, through this front door).
    pub side: Option<Vec<bool>>,
}

impl MinCutResult {
    /// Checks the witness against the graph: proper cut, value matches.
    pub fn verify(&self, g: &CsrGraph) -> bool {
        match &self.side {
            None => false,
            Some(side) => g.is_proper_cut(side) && g.cut_value(side) == self.value,
        }
    }
}

/// Algorithm selector for [`minimum_cut`], named after the variants in the
/// paper's evaluation (§4.1).
#[derive(Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// NOI with an unbounded binary heap — the implementation of
    /// Henzinger, Noe, Schulz and Strash that the paper starts from.
    NoiHnss,
    /// NOI-HNSS seeded with the VieCut bound (NOI-HNSS-VieCut).
    NoiHnssVieCut,
    /// NOIλ̂: priorities capped at λ̂, with the chosen queue (§3.1.2–3.1.3).
    NoiBounded { pq: PqKind },
    /// NOIλ̂ seeded with the VieCut bound (NOIλ̂-·-VieCut) — the paper's
    /// fastest sequential configuration with `pq = Heap`.
    NoiBoundedVieCut { pq: PqKind },
    /// ParCutλ̂: the shared-memory parallel Algorithm 2.
    ParCut { pq: PqKind, threads: usize },
    /// Stoer–Wagner (comparator).
    StoerWagner,
    /// Hao–Orlin (flow-based comparator, HO-CGKLS).
    HaoOrlin,
    /// Gomory–Hu cut tree (Gusfield construction): n−1 max-flows; the
    /// classical flow reduction the paper's related work (§2.2) starts
    /// from. Far slower, but also yields *all pairwise* min cuts.
    GomoryHu,
    /// Karger–Stein random contraction (Monte-Carlo comparator).
    KargerStein { repetitions: usize },
    /// Matula's (2+ε)-approximation (inexact; §5 future-work extension).
    Matula { epsilon: f64 },
    /// VieCut (inexact multilevel heuristic; upper bound, usually exact).
    VieCut,
}

impl Default for Algorithm {
    /// The paper's recommended sequential configuration:
    /// NOIλ̂-Heap-VieCut.
    fn default() -> Self {
        Algorithm::NoiBoundedVieCut { pq: PqKind::Heap }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::NoiHnss => write!(f, "NOI-HNSS"),
            Algorithm::NoiHnssVieCut => write!(f, "NOI-HNSS-VieCut"),
            Algorithm::NoiBounded { pq } => write!(f, "NOIλ̂-{pq}"),
            Algorithm::NoiBoundedVieCut { pq } => write!(f, "NOIλ̂-{pq}-VieCut"),
            Algorithm::ParCut { pq, threads } => write!(f, "ParCutλ̂-{pq}(p={threads})"),
            Algorithm::StoerWagner => write!(f, "StoerWagner"),
            Algorithm::HaoOrlin => write!(f, "HO-CGKLS"),
            Algorithm::GomoryHu => write!(f, "GomoryHu"),
            Algorithm::KargerStein { repetitions } => write!(f, "KargerStein(r={repetitions})"),
            Algorithm::Matula { epsilon } => write!(f, "Matula(ε={epsilon})"),
            Algorithm::VieCut => write!(f, "VieCut"),
        }
    }
}

/// Computes a minimum cut of `g` with the chosen algorithm and a default
/// seed. Panics if `g` has fewer than two vertices. Disconnected graphs
/// yield value 0 with a component witness.
pub fn minimum_cut(g: &CsrGraph, algorithm: Algorithm) -> MinCutResult {
    minimum_cut_seeded(g, algorithm, 0xC0FFEE)
}

/// [`minimum_cut`] with an explicit seed for the randomised components
/// (start vertices, label propagation orders, Karger–Stein contractions).
pub fn minimum_cut_seeded(g: &CsrGraph, algorithm: Algorithm, seed: u64) -> MinCutResult {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    match algorithm {
        Algorithm::NoiHnss => noi::noi_minimum_cut(
            g,
            &noi::NoiConfig {
                seed,
                ..noi::NoiConfig::hnss()
            },
        ),
        Algorithm::NoiHnssVieCut => {
            let bound = viecut_bound(g, seed);
            noi::noi_minimum_cut(
                g,
                &noi::NoiConfig {
                    seed,
                    initial_bound: Some(bound),
                    ..noi::NoiConfig::hnss()
                },
            )
        }
        Algorithm::NoiBounded { pq } => noi::noi_minimum_cut(
            g,
            &noi::NoiConfig {
                seed,
                ..noi::NoiConfig::bounded(pq)
            },
        ),
        Algorithm::NoiBoundedVieCut { pq } => {
            let bound = viecut_bound(g, seed);
            noi::noi_minimum_cut(
                g,
                &noi::NoiConfig {
                    seed,
                    initial_bound: Some(bound),
                    ..noi::NoiConfig::bounded(pq)
                },
            )
        }
        Algorithm::ParCut { pq, threads } => parallel::mincut::parallel_minimum_cut(
            g,
            &parallel::mincut::ParCutConfig {
                pq,
                threads,
                seed,
                ..Default::default()
            },
        ),
        Algorithm::StoerWagner => stoer_wagner::stoer_wagner(g),
        Algorithm::HaoOrlin => {
            let r = mincut_flow::hao_orlin(g);
            MinCutResult {
                value: r.value,
                side: Some(r.side),
            }
        }
        Algorithm::GomoryHu => {
            let tree = mincut_flow::GomoryHuTree::build(g);
            let (value, side) = tree.global_min_cut();
            MinCutResult {
                value,
                side: Some(side.to_vec()),
            }
        }
        Algorithm::KargerStein { repetitions } => karger_stein::karger_stein(
            g,
            &karger_stein::KargerSteinConfig {
                repetitions,
                seed,
                compute_side: true,
            },
        ),
        Algorithm::Matula { epsilon } => matula::matula_approx(
            g,
            &matula::MatulaConfig {
                epsilon,
                seed,
                ..Default::default()
            },
        ),
        Algorithm::VieCut => viecut::viecut(
            g,
            &viecut::VieCutConfig {
                seed,
                ..Default::default()
            },
        ),
    }
}

fn viecut_bound(g: &CsrGraph, seed: u64) -> (EdgeWeight, Option<Vec<bool>>) {
    let vc = viecut::viecut(
        g,
        &viecut::VieCutConfig {
            seed,
            ..Default::default()
        },
    );
    (vc.value, vc.side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn exact_algorithms() -> Vec<Algorithm> {
        let mut v = vec![
            Algorithm::NoiHnss,
            Algorithm::NoiHnssVieCut,
            Algorithm::StoerWagner,
            Algorithm::HaoOrlin,
        ];
        for pq in PqKind::ALL {
            v.push(Algorithm::NoiBounded { pq });
            v.push(Algorithm::NoiBoundedVieCut { pq });
            v.push(Algorithm::ParCut { pq, threads: 2 });
        }
        v
    }

    #[test]
    fn all_exact_algorithms_agree_on_known_family() {
        let (g, l) = known::two_communities(9, 7, 2, 3, 1);
        for algo in exact_algorithms() {
            let name = algo.to_string();
            let r = minimum_cut(&g, algo);
            assert_eq!(r.value, l, "{name}");
            assert!(r.verify(&g), "{name} witness");
        }
    }

    #[test]
    fn inexact_algorithms_respect_their_guarantees() {
        let (g, l) = known::ring_of_cliques(6, 6, 2, 1);
        let vc = minimum_cut(&g, Algorithm::VieCut);
        assert!(vc.value >= l && vc.verify(&g));
        let ks = minimum_cut(&g, Algorithm::KargerStein { repetitions: 10 });
        assert!(ks.value >= l && ks.verify(&g));
        let ma = minimum_cut(&g, Algorithm::Matula { epsilon: 0.5 });
        assert!(ma.value >= l && ma.value <= (2 * l) + l / 2 && ma.verify(&g));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::NoiHnss.to_string(), "NOI-HNSS");
        assert_eq!(
            Algorithm::NoiBounded { pq: PqKind::BStack }.to_string(),
            "NOIλ̂-BStack"
        );
        assert_eq!(Algorithm::default().to_string(), "NOIλ̂-Heap-VieCut");
        assert_eq!(Algorithm::HaoOrlin.to_string(), "HO-CGKLS");
    }

    #[test]
    fn verify_rejects_bad_witnesses() {
        let (g, _) = known::cycle_graph(5, 1);
        let bad = MinCutResult {
            value: 2,
            side: Some(vec![true; 5]), // improper
        };
        assert!(!bad.verify(&g));
        let none = MinCutResult {
            value: 2,
            side: None,
        };
        assert!(!none.verify(&g));
    }
}
