//! Matula's (2+ε)-approximation of the minimum cut.
//!
//! Matula observed that running the Nagamochi–Ono–Ibaraki contraction with
//! the *scaled-down* threshold σ = δ/(2+ε) — instead of the exact bound
//! λ̂ — contracts so many edges per pass that the whole algorithm finishes
//! in linear time, while the best minimum degree seen across the passes is
//! at most (2+ε)·λ. The paper names applying its sequential and parallel
//! optimisations to this algorithm as future work (§5); this module is
//! that extension: it reuses the bounded CAPFOREST machinery (and
//! therefore any of the three priority queues).

use mincut_ds::PqKind;
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::capforest::ScanWorkspace;
use crate::error::MinCutError;
use crate::stats::{SolveContext, SolverStats};
use crate::stoer_wagner::stoer_wagner_phase;
use crate::MinCutResult;

/// Configuration for [`matula_approx`].
#[derive(Clone, Debug)]
pub struct MatulaConfig {
    /// Approximation slack ε > 0; the result is ≤ (2+ε)·λ.
    pub epsilon: f64,
    /// Queue used by the scan passes (future-work extension of §5: the
    /// paper's queue optimisations applied to Matula's algorithm).
    pub pq: PqKind,
    pub seed: u64,
    pub compute_side: bool,
}

impl Default for MatulaConfig {
    fn default() -> Self {
        MatulaConfig {
            epsilon: 0.5,
            pq: PqKind::Heap,
            seed: 0x2a,
            compute_side: true,
        }
    }
}

/// (2+ε)-approximate minimum cut in near-linear time. The returned value
/// is always an actual cut of `g` with value ≤ (2+ε)·λ(G).
/// Requires n ≥ 2; handles disconnected inputs.
pub fn matula_approx(g: &CsrGraph, cfg: &MatulaConfig) -> MinCutResult {
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    matula_approx_instrumented(g, cfg, &mut ctx).expect("Matula without a time budget cannot fail")
}

/// [`matula_approx`] recording per-pass telemetry into the
/// [`SolveContext`] and honoring its time budget between passes.
pub fn matula_approx_instrumented(
    g: &CsrGraph,
    cfg: &MatulaConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        ctx.stats.record_lambda(0);
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return Ok(MinCutResult {
            value: 0,
            side: cfg.compute_side.then_some(side),
        });
    }
    matula_approx_connected(g, cfg, ctx)
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both), skipping the redundant
/// component scan.
pub(crate) fn matula_approx_connected(
    g: &CsrGraph,
    cfg: &MatulaConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut engine = ContractionEngine::new();
    let mut ws = ScanWorkspace::new();
    let mut labels_buf: Vec<NodeId> = Vec::new();
    let mut current = g.clone();
    // Witness bookkeeping only when a side is requested (as in NOI).
    let mut membership = Membership::identity(if cfg.compute_side { g.n() } else { 0 });
    let mut best = EdgeWeight::MAX;
    let mut best_side: Option<Vec<bool>> = None;

    while current.n() >= 2 {
        ctx.check_budget()?;
        // The trivial cut of the current graph is the approximation anchor.
        let (dv, delta) = current.min_weighted_degree().expect("n >= 2");
        if delta < best {
            best = delta;
            ctx.stats.record_lambda(best);
            if cfg.compute_side {
                best_side = Some(membership.side_of_vertices(&[dv]));
            }
        }
        if current.n() == 2 {
            break;
        }
        ctx.stats.rounds += 1;
        // Scaled threshold: contract everything certified ≥ δ/(2+ε).
        // Integer connectivities mean `q(e) ≥ δ/(2+ε)` is equivalent to
        // `q(e) ≥ ⌈δ/(2+ε)⌉`; rounding *down* here would contract edges
        // below the real threshold and void the guarantee (a destroyed
        // minimum cut must satisfy λ ≥ δ/(2+ε), which is what bounds the
        // answer δ ≤ (2+ε)·λ).
        let sigma = ((delta as f64) / (2.0 + cfg.epsilon)).ceil() as EdgeWeight;
        let sigma = sigma.max(1);
        let start = rng.gen_range(0..current.n() as NodeId);
        let info = ws.scan(&current, sigma, start, cfg.pq, true);
        ctx.stats.add_pq_ops(ws.take_ops());
        // Prefix cuts seen by the scan are real cuts; they can only help.
        // (info.lambda_hat below σ without a witness never happens, but
        // info.lambda_hat == σ < best is NOT an improvement — σ is a
        // threshold, not a cut.)
        if let Some(len) = info.best_prefix_len {
            if info.lambda_hat < best {
                best = info.lambda_hat;
                ctx.stats.record_lambda(best);
                if cfg.compute_side {
                    best_side = Some(membership.side_of_vertices(&ws.order()[..len]));
                }
            }
        }
        if info.unions == 0 {
            // Degenerate weighted corner (σ can sit below every crossing
            // point): a Stoer–Wagner phase guarantees progress and its
            // phase cut keeps the approximation anchored.
            ctx.stats.sw_rescues += 1;
            let phase = stoer_wagner_phase(&current, start);
            if phase.cut_of_phase < best {
                best = phase.cut_of_phase;
                ctx.stats.record_lambda(best);
                if cfg.compute_side {
                    best_side = Some(membership.side_of_vertices(&[phase.t]));
                }
            }
            ws.uf_mut().union(phase.s, phase.t);
        }
        let blocks = ws.uf_mut().dense_labels_into(&mut labels_buf);
        ctx.stats.contracted_vertices += (current.n() - blocks) as u64;
        let next = if cfg.compute_side {
            engine.contract_tracked(&current, &labels_buf, blocks, &mut membership)
        } else {
            engine.contract(&current, &labels_buf, blocks)
        };
        ctx.stats.record_contraction_path(engine.last_path());
        engine.recycle(std::mem::replace(&mut current, next));
    }

    Ok(MinCutResult {
        value: best,
        side: best_side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    #[test]
    fn every_queue_kind_scans_and_respects_the_guarantee() {
        // Regression: the scan used to hardcode the binary heap and
        // silently ignore `MatulaConfig::pq`.
        let (g, l) = known::two_communities(10, 11, 2, 2, 1);
        for pq in PqKind::ALL {
            let r = matula_approx(
                &g,
                &MatulaConfig {
                    pq,
                    ..Default::default()
                },
            );
            assert!(r.value >= l, "{pq}");
            let bound = ((2.0 + 0.5) * l as f64).floor() as EdgeWeight;
            assert!(r.value <= bound, "{pq}: (2+ε) violated");
            let side = r.side.unwrap();
            assert!(
                g.is_proper_cut(&side) && g.cut_value(&side) == r.value,
                "{pq}"
            );
        }
    }

    fn check_approx(g: &CsrGraph, lambda: EdgeWeight, epsilon: f64) {
        let r = matula_approx(
            g,
            &MatulaConfig {
                epsilon,
                ..Default::default()
            },
        );
        assert!(r.value >= lambda, "approximation may not undershoot λ");
        let bound = ((2.0 + epsilon) * lambda as f64).floor() as EdgeWeight;
        assert!(
            r.value <= bound,
            "(2+ε) guarantee violated: {} > {bound} (λ = {lambda})",
            r.value
        );
        let side = r.side.unwrap();
        assert!(g.is_proper_cut(&side));
        assert_eq!(g.cut_value(&side), r.value);
    }

    #[test]
    fn guarantee_on_known_families() {
        check_approx(&known::cycle_graph(50, 2).0, 4, 0.5);
        check_approx(&known::grid_graph(10, 10, 1).0, 2, 0.5);
        check_approx(&known::complete_graph(12, 1).0, 11, 1.0);
        let (g, l) = known::two_communities(12, 12, 2, 2, 1);
        check_approx(&g, l, 0.25);
        let (g, l) = known::ring_of_cliques(6, 5, 2, 1);
        check_approx(&g, l, 0.5);
    }

    #[test]
    fn guarantee_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(55);
        for _ in 0..25 {
            let n = rng.gen_range(4..10);
            let mut edges = Vec::new();
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..6)));
            }
            for _ in 0..rng.gen_range(0..12) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..6)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let lambda = known::brute_force_mincut(&g);
            check_approx(&g, lambda, 0.5);
        }
    }

    #[test]
    fn often_finds_exact_cut_on_community_graphs() {
        // Not guaranteed, but documents typical behaviour the paper notes
        // for bound-driven contraction on clustered inputs.
        let (g, l) = known::barbell(10, 10, 2, 3);
        let r = matula_approx(&g, &MatulaConfig::default());
        assert!(r.value <= 2 * l);
    }
}
