//! The Stoer–Wagner minimum cut algorithm.
//!
//! The simpler cousin of Nagamochi–Ono–Ibaraki (§2.2 of the paper): each
//! *phase* computes a maximum-adjacency order; the last vertex `t`'s
//! weighted degree is the *cut of the phase* (a valid cut isolating `t`),
//! and the last two vertices `s, t` are guaranteed to have
//! λ(G, s, t) = cut-of-the-phase, so contracting them preserves every
//! other cut. n−1 phases give the minimum.
//!
//! The paper shows this algorithm is far slower in practice than NOI
//! (experiments of Jünger et al.), so here it serves two roles: a
//! comparator, and — one phase at a time — the *guaranteed-progress
//! fallback* used by the NOI and ParCut drivers when a (bounded /
//! early-terminated) CAPFOREST pass marks no edge (§3.3, Algorithm 2
//! lines 4–6 use plain CAPFOREST; a Stoer–Wagner phase is the classical
//! equivalent with an unconditional guarantee).

use mincut_ds::{BinaryHeapPq, MaxPq};
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership, NodeId};

use crate::error::MinCutError;
use crate::stats::{SolveContext, SolverStats};
use crate::MinCutResult;

/// Result of one maximum-adjacency phase. Public (doc-hidden) so the
/// `hotpath` bench baseline can reconstruct the pre-rewrite NOI loop,
/// rescue phase included; not part of the supported API surface.
#[doc(hidden)]
pub struct SwPhase {
    /// Second-to-last vertex of the order.
    pub s: NodeId,
    /// Last vertex of the order; `cut_of_phase` isolates it.
    pub t: NodeId,
    /// Weighted degree of `t` = λ(G, s, t).
    pub cut_of_phase: EdgeWeight,
}

/// Runs one maximum-adjacency phase from `start`. Requires a connected
/// graph with at least two vertices (callers contract components away).
/// Public (doc-hidden) for the `hotpath` bench baseline only.
#[doc(hidden)]
pub fn stoer_wagner_phase(g: &CsrGraph, start: NodeId) -> SwPhase {
    let n = g.n();
    debug_assert!(n >= 2);
    let mut q = BinaryHeapPq::new();
    q.reset(n, u64::MAX);
    let mut visited = vec![false; n];
    q.push(start, 0);
    let (mut s, mut t) = (start, start);
    let mut last_key = 0;
    let mut scanned = 0usize;
    while let Some((x, key)) = q.pop_max() {
        visited[x as usize] = true;
        scanned += 1;
        s = t;
        t = x;
        last_key = key;
        for (y, w) in g.arcs(x) {
            if !visited[y as usize] {
                if q.contains(y) {
                    q.raise(y, q.priority(y) + w);
                } else {
                    q.push(y, w);
                }
            }
        }
    }
    debug_assert_eq!(scanned, n, "phase requires a connected graph");
    debug_assert_eq!(last_key, g.weighted_degree(t));
    SwPhase {
        s,
        t,
        cut_of_phase: last_key,
    }
}

/// Full Stoer–Wagner minimum cut. Handles disconnected inputs (returns 0
/// with a component witness). Requires n ≥ 2.
pub fn stoer_wagner(g: &CsrGraph) -> MinCutResult {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return MinCutResult {
            value: 0,
            side: Some(side),
        };
    }
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    stoer_wagner_connected(g, &mut ctx).expect("Stoer-Wagner without a time budget cannot fail")
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both). Feeds per-phase telemetry
/// into the [`SolveContext`] and honors its time budget between phases.
pub(crate) fn stoer_wagner_connected(
    g: &CsrGraph,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    let mut membership = Membership::identity(g.n());
    let mut best = EdgeWeight::MAX;
    let mut best_side: Option<Vec<bool>> = None;
    while current.n() >= 2 {
        ctx.check_budget()?;
        ctx.stats.rounds += 1;
        let phase = stoer_wagner_phase(&current, 0);
        if phase.cut_of_phase < best {
            best = phase.cut_of_phase;
            ctx.stats.record_lambda(best);
            best_side = Some(membership.side_of_vertices(&[phase.t]));
        }
        if current.n() == 2 {
            break;
        }
        ctx.stats.contracted_vertices += 1;
        let next = engine.contract_edge_tracked(&current, phase.s, phase.t, &mut membership);
        engine.recycle(std::mem::replace(&mut current, next));
    }
    Ok(MinCutResult {
        value: best,
        side: best_side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn check(g: &CsrGraph, expected: EdgeWeight) {
        let r = stoer_wagner(g);
        assert_eq!(r.value, expected);
        let side = r.side.expect("witness");
        assert!(g.is_proper_cut(&side));
        assert_eq!(g.cut_value(&side), expected);
    }

    #[test]
    fn known_families() {
        check(&known::path_graph(6, 2).0, 2);
        check(&known::cycle_graph(8, 3).0, 6);
        check(&known::complete_graph(7, 2).0, 12);
        check(&known::grid_graph(3, 5, 1).0, 2);
        let (g, l) = known::two_communities(6, 4, 2, 3, 1);
        check(&g, l);
        let (g, l) = known::ring_of_cliques(5, 3, 4, 1);
        check(&g, l);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..50 {
            let n = rng.gen_range(3..9);
            let mut edges = Vec::new();
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..7)));
            }
            for _ in 0..rng.gen_range(0..10) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..7)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let expected = known::brute_force_mincut(&g);
            check(&g, expected);
            let _ = trial;
        }
    }

    #[test]
    fn phase_guarantee_on_triangle() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 5), (1, 2, 1), (0, 2, 2)]);
        let p = stoer_wagner_phase(&g, 0);
        // λ(G, s, t) for the phase's last two vertices equals the phase cut.
        let (st_cut, _) = mincut_flow::min_st_cut(&g, p.s, p.t);
        assert_eq!(st_cut, p.cut_of_phase);
    }

    #[test]
    fn disconnected_returns_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 2), (2, 3, 2)]);
        let r = stoer_wagner(&g);
        assert_eq!(r.value, 0);
        assert_eq!(g.cut_value(&r.side.unwrap()), 0);
    }
}
