//! Padberg–Rinaldi local tests for contractible edges.
//!
//! Padberg and Rinaldi's heuristics identify edges whose contraction
//! preserves at least one minimum cut, using only local information.
//! VieCut runs a linear-work pass of these tests after every cluster
//! contraction (§2.4). The tests implemented here, for an edge
//! `e = (u, v)` with weight `c(e)` and the current upper bound λ̂:
//!
//! 1. `c(e) ≥ λ̂` — any cut separating u and v costs at least `c(e)`;
//!    exact-safe for cuts below λ̂.
//! 2. `2·c(e) ≥ min(c(u), c(v))` — safe w.r.t. *non-trivial* minimum cuts
//!    (moving the lighter endpoint across a separating cut never makes it
//!    worse). Trivial cuts are covered because the caller keeps
//!    λ̂ ≤ min-degree at all times.
//! 3. `c(e) + Σ_{x ∈ N(u) ∩ N(v)} min(c(u,x), c(v,x)) ≥ λ̂` — every cut
//!    separating u and v also pays, for each common neighbour x, the
//!    cheaper of its two triangle edges (x lands on one side); exact-safe
//!    for cuts below λ̂.
//!
//! The fourth Padberg–Rinaldi condition (a triangle/degree hybrid) is
//! deliberately omitted: VieCut only needs *upper-bound validity*, which
//! is structural (every value it reports is the value of a real cut), and
//! tests 1–3 already capture nearly all contractions on the benchmark
//! families. DESIGN.md records this as a documented deviation.

use mincut_ds::UnionFind;
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

/// Degree budget for the triangle test: the sorted-list intersection of
/// test 3 costs `deg(u) + deg(v)` per edge, which degenerates to
/// `Σ_v deg(v)²` on hub-heavy graphs. Past this bound the test is skipped
/// — it only costs contraction opportunities, never correctness (VieCut
/// is a heuristic; the linear-work discipline mirrors the reference
/// implementation's bounded passes).
const TRIANGLE_DEGREE_BUDGET: usize = 256;

/// One pass of the tests over all edges. Marks contractible edges in `uf`;
/// returns the number of successful unions.
pub fn padberg_rinaldi_pass(g: &CsrGraph, lambda_hat: EdgeWeight, uf: &mut UnionFind) -> usize {
    let mut unions = 0;
    for u in 0..g.n() as NodeId {
        let du = g.weighted_degree(u);
        for (v, w) in g.arcs(u) {
            if u >= v {
                continue;
            }
            let dv = g.weighted_degree(v);
            // Test 1 and 2 are edge-local.
            if w >= lambda_hat || 2 * w >= du.min(dv) {
                if uf.union(u, v) {
                    unions += 1;
                }
                continue;
            }
            // Test 3: aggregate triangle bound via sorted-list intersection.
            if g.degree(u) + g.degree(v) > TRIANGLE_DEGREE_BUDGET {
                continue;
            }
            let bound = w + common_neighbor_min_sum(g, u, v);
            if bound >= lambda_hat && uf.union(u, v) {
                unions += 1;
            }
        }
    }
    unions
}

/// `Σ_{x ∈ N(u) ∩ N(v)} min(c(u,x), c(v,x))` by merging the two sorted
/// adjacency lists.
fn common_neighbor_min_sum(g: &CsrGraph, u: NodeId, v: NodeId) -> EdgeWeight {
    let nu = g.neighbors(u);
    let wu = g.neighbor_weights(u);
    let nv = g.neighbors(v);
    let wv = g.neighbor_weights(v);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sum = 0;
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += wu[i].min(wv[j]);
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    #[test]
    fn heavy_edge_contracts_under_test1() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 10), (1, 2, 1), (0, 2, 1)]);
        let mut uf = UnionFind::new(3);
        let unions = padberg_rinaldi_pass(&g, 5, &mut uf);
        assert!(unions >= 1);
        assert!(uf.same(0, 1), "the weight-10 edge must be marked");
    }

    #[test]
    fn triangle_test_fires() {
        // Edge (0,1) weight 2, common neighbour 2 with min(3,3) = 3:
        // bound 5 ≥ λ̂ = 5 even though c(e) < λ̂ and degrees are large.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 2),
                (0, 2, 3),
                (1, 2, 3),
                (0, 3, 9),
                (1, 4, 9),
                (2, 3, 1),
                (2, 4, 1),
            ],
        );
        let mut uf = UnionFind::new(5);
        padberg_rinaldi_pass(&g, 5, &mut uf);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn pass_preserves_minimum_cut_value_on_known_family() {
        // Contract everything a pass marks, recompute λ on the contracted
        // graph, and check the known minimum survives (tests are safe as
        // long as λ̂ starts at the min-degree bound).
        let (g, l) = known::two_communities(8, 8, 2, 3, 1);
        let lambda_hat = g.min_weighted_degree().unwrap().1;
        let mut uf = UnionFind::new(g.n());
        let unions = padberg_rinaldi_pass(&g, lambda_hat, &mut uf);
        assert!(unions > 0, "cliques must contract");
        let (labels, blocks) = uf.dense_labels();
        let c = mincut_graph::contract::contract(&g, &labels, blocks);
        assert!(c.n() >= 2);
        let r = crate::stoer_wagner::stoer_wagner(&c);
        assert_eq!(r.value, l, "min cut must survive the PR pass");
    }

    #[test]
    fn no_unions_when_lambda_hat_unreachable() {
        // Sparse path with tiny weights, λ̂ huge but min degree huger:
        // only test 2 could fire; avoid it by giving the path uniform
        // degrees where 2c(e) < min degree.
        let g = CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 0, 2)]);
        let mut uf = UnionFind::new(4);
        // min degree 4, 2*c(e) = 4 >= 4 — test 2 fires. Use λ̂ = 4 anyway
        // to document that cycles DO contract under test 2.
        let unions = padberg_rinaldi_pass(&g, u64::MAX, &mut uf);
        assert!(unions > 0);
        // Now a weighted star: 2c(e) = 2 < min degree... leaf degree = 1,
        // so min(c(u),c(v)) = 1 and test 2 fires again. Local tests are
        // genuinely aggressive on degenerate graphs; verify safety instead:
        let (labels, blocks) = uf.dense_labels();
        let c = mincut_graph::contract::contract(&g, &labels, blocks);
        if c.n() >= 2 {
            let r = crate::stoer_wagner::stoer_wagner(&c);
            assert!(r.value >= 4);
        }
    }
}
