//! Shared-memory parallel label propagation (Raghavan et al.), the
//! clustering engine inside VieCut (§2.4).
//!
//! Every vertex starts in its own cluster; in each iteration every vertex
//! adopts the label with the largest incident edge-weight sum among its
//! neighbours. Vertices are processed in a random order, in parallel
//! chunks; label reads are intentionally unsynchronised (the algorithm is
//! a heuristic — racy reads only change which near-optimal clustering is
//! found, mirroring the asynchronous implementation the paper builds on).

use std::sync::atomic::{AtomicU32, Ordering};

use mincut_ds::hash::FxHashMap;
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs `iterations` rounds of label propagation; returns dense cluster
/// labels in `[0, count)` and the cluster count.
///
/// Above this vertex count the per-chunk flat tally (two O(n) arrays per
/// chunk task) would dominate the arc work, so large graphs keep the
/// degree-bounded hash tally instead. Both tallies choose identical
/// labels (the running best depends only on arc order), so the switch is
/// invisible to callers.
const FLAT_TALLY_MAX_N: usize = 1 << 16;

/// Below this many arcs the chunked parallel machinery loses outright:
/// the shim spawns scoped threads per `par_chunks` call and the shared
/// label array ping-pongs between cores, which measures ~5× slower than
/// a plain sequential pass at a few thousand vertices on a 2-core box.
/// Such graphs take [`label_propagation_sequential`] instead — same
/// visit order, same tally, no atomics — which is also the path the SIMD
/// label gather needs (a plain `&[u32]` table; gathering through
/// `AtomicU32`s that other workers may be storing to would be UB).
const PAR_LP_MIN_ARCS: usize = 1 << 20;

/// The per-vertex tally is a flat epoch-stamped array indexed by label —
/// one L1-friendly indexed add per arc instead of the hash probe the
/// previous implementation paid (labels converge to a handful of hot
/// slots after the first iteration, so the accesses stay cache-resident).
/// The flat array is sized O(n) per chunk task, so graphs past
/// [`FLAT_TALLY_MAX_N`] use the hash tally. The running best is evaluated
/// incrementally in arc order either way, exactly what the old
/// implementation did, so the chosen labels are bit-identical
/// (`flat_tally_matches_hash_tally` pins this against the frozen baseline
/// [`label_propagation_hash_tally`]).
///
/// Graphs under [`PAR_LP_MIN_ARCS`] run the sequential SIMD path; at one
/// rayon worker it is bit-identical to the chunked path (chunks run
/// inline in order there, so both are the same sequential visit order).
pub fn label_propagation(g: &CsrGraph, iterations: usize, seed: u64) -> (Vec<NodeId>, usize) {
    let n = g.n();
    if n == 0 {
        return (Vec::new(), 0);
    }
    if n <= FLAT_TALLY_MAX_N
        && (g.num_arcs() < PAR_LP_MIN_ARCS || rayon::current_num_threads() == 1)
    {
        return label_propagation_sequential(g, iterations, seed);
    }
    let labels: Vec<AtomicU32> = (0..n as NodeId).map(AtomicU32::new).collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..iterations {
        // New shuffle each round, as in the reference implementation.
        order = mincut_graph::generators::random_permutation(n, &mut rng)
            .into_iter()
            .map(|p| order[p as usize])
            .collect();
        const CHUNK: usize = 1 << 10;
        if n <= FLAT_TALLY_MAX_N {
            order.par_chunks(CHUNK).for_each(|chunk| {
                // Per-chunk scratch: `tally[l]` is valid iff `stamp[l]`
                // holds the current vertex's epoch, so no clearing
                // between vertices. One allocation per chunk, amortised
                // over up to CHUNK vertices' arcs.
                let mut tally: Vec<EdgeWeight> = vec![0; n];
                let mut stamp: Vec<u32> = vec![0; n];
                let mut epoch = 0u32;
                for (i, &v) in chunk.iter().enumerate() {
                    // Pull the next vertex's arc stream into cache while
                    // this one's tally runs.
                    if let Some(&next) = chunk.get(i + 1) {
                        g.prefetch_arcs(next);
                    }
                    epoch += 1;
                    let mut best_label = labels[v as usize].load(Ordering::Relaxed);
                    let mut best_weight = 0;
                    for (u, w) in g.arcs(v) {
                        let lu = labels[u as usize].load(Ordering::Relaxed);
                        let li = lu as usize;
                        let e = if stamp[li] == epoch { tally[li] + w } else { w };
                        tally[li] = e;
                        stamp[li] = epoch;
                        if e > best_weight || (e == best_weight && lu < best_label) {
                            best_weight = e;
                            best_label = lu;
                        }
                    }
                    if best_weight > 0 {
                        labels[v as usize].store(best_label, Ordering::Relaxed);
                    }
                }
            });
        } else {
            order.par_chunks(CHUNK).for_each(|chunk| {
                let mut tally: FxHashMap<NodeId, EdgeWeight> = FxHashMap::default();
                for &v in chunk {
                    tally.clear();
                    let mut best_label = labels[v as usize].load(Ordering::Relaxed);
                    let mut best_weight = 0;
                    for (u, w) in g.arcs(v) {
                        let lu = labels[u as usize].load(Ordering::Relaxed);
                        let e = tally.entry(lu).or_insert(0);
                        *e += w;
                        if *e > best_weight || (*e == best_weight && lu < best_label) {
                            best_weight = *e;
                            best_label = lu;
                        }
                    }
                    if best_weight > 0 {
                        labels[v as usize].store(best_label, Ordering::Relaxed);
                    }
                }
            });
        }
    }

    // Dense relabelling.
    const UNSET: NodeId = NodeId::MAX;
    let mut remap = vec![UNSET; n];
    let mut out = vec![0 as NodeId; n];
    let mut next = 0 as NodeId;
    for v in 0..n {
        let l = labels[v].load(Ordering::Relaxed) as usize;
        if remap[l] == UNSET {
            remap[l] = next;
            next += 1;
        }
        out[v] = remap[l];
    }
    (out, next as usize)
}

/// Sequential flat-tally propagation, the small-graph fast path: plain
/// `u32` labels (no atomics — nothing else writes them), one tally/stamp
/// scratch pair reused across all iterations with a continuing epoch
/// counter, the neighbour-label indirection batched through
/// [`mincut_ds::simd::gather_u32`], and the next vertex's arc stream
/// prefetched while the current tally runs.
///
/// Bit-identity with the chunked path at one worker: the chunked path
/// runs its chunks inline in order there, which is exactly this visit
/// order, and the tally updates the running best in identical arc order
/// (the gather only hoists the label loads — within one vertex's scan no
/// label can change).
fn label_propagation_sequential(
    g: &CsrGraph,
    iterations: usize,
    seed: u64,
) -> (Vec<NodeId>, usize) {
    let n = g.n();
    let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut tally: Vec<EdgeWeight> = vec![0; n];
    let mut stamp: Vec<u32> = vec![0; n];
    let mut gathered: Vec<u32> = Vec::new();
    let mut epoch = 0u32;
    for _ in 0..iterations {
        order = mincut_graph::generators::random_permutation(n, &mut rng)
            .into_iter()
            .map(|p| order[p as usize])
            .collect();
        for (i, &v) in order.iter().enumerate() {
            if let Some(&next) = order.get(i + 1) {
                g.prefetch_arcs(next);
            }
            epoch += 1;
            let (nbrs, wts) = g.arc_slices(v);
            gathered.resize(nbrs.len(), 0);
            mincut_ds::simd::gather_u32(&labels, nbrs, &mut gathered);
            let mut best_label = labels[v as usize];
            let mut best_weight = 0;
            for (&lu, &w) in gathered.iter().zip(wts) {
                let li = lu as usize;
                let e = if stamp[li] == epoch { tally[li] + w } else { w };
                tally[li] = e;
                stamp[li] = epoch;
                if e > best_weight || (e == best_weight && lu < best_label) {
                    best_weight = e;
                    best_label = lu;
                }
            }
            if best_weight > 0 {
                labels[v as usize] = best_label;
            }
        }
    }
    const UNSET: NodeId = NodeId::MAX;
    let mut remap = vec![UNSET; n];
    let mut out = vec![0 as NodeId; n];
    let mut next = 0 as NodeId;
    for v in 0..n {
        let l = labels[v] as usize;
        if remap[l] == UNSET {
            remap[l] = next;
            next += 1;
        }
        out[v] = remap[l];
    }
    (out, next as usize)
}

/// The pre-rewrite tally loop, frozen verbatim: a hash-map probe per arc.
/// Kept (doc-hidden) so the `hotpath` bench baseline can reconstruct the
/// old VieCut seeding path; produces labels identical to
/// [`label_propagation`] (asserted by `flat_tally_matches_hash_tally`).
#[doc(hidden)]
pub fn label_propagation_hash_tally(
    g: &CsrGraph,
    iterations: usize,
    seed: u64,
) -> (Vec<NodeId>, usize) {
    let n = g.n();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let labels: Vec<AtomicU32> = (0..n as NodeId).map(AtomicU32::new).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..iterations {
        order = mincut_graph::generators::random_permutation(n, &mut rng)
            .into_iter()
            .map(|p| order[p as usize])
            .collect();
        const CHUNK: usize = 1 << 10;
        order.par_chunks(CHUNK).for_each(|chunk| {
            let mut tally: FxHashMap<NodeId, EdgeWeight> = FxHashMap::default();
            for &v in chunk {
                tally.clear();
                let mut best_label = labels[v as usize].load(Ordering::Relaxed);
                let mut best_weight = 0;
                for (u, w) in g.arcs(v) {
                    let lu = labels[u as usize].load(Ordering::Relaxed);
                    let e = tally.entry(lu).or_insert(0);
                    *e += w;
                    if *e > best_weight || (*e == best_weight && lu < best_label) {
                        best_weight = *e;
                        best_label = lu;
                    }
                }
                if best_weight > 0 {
                    labels[v as usize].store(best_label, Ordering::Relaxed);
                }
            }
        });
    }
    const UNSET: NodeId = NodeId::MAX;
    let mut remap = vec![UNSET; n];
    let mut out = vec![0 as NodeId; n];
    let mut next = 0 as NodeId;
    for v in 0..n {
        let l = labels[v].load(Ordering::Relaxed) as usize;
        if remap[l] == UNSET {
            remap[l] = next;
            next += 1;
        }
        out[v] = remap[l];
    }
    (out, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    #[test]
    fn two_cliques_become_two_clusters() {
        let (g, _) = known::two_communities(10, 10, 1, 4, 1);
        let (labels, count) = label_propagation(&g, 3, 7);
        // The two cliques must be internally uniform.
        for c in 0..2 {
            let base = labels[c * 10];
            for (v, &l) in labels.iter().enumerate().skip(c * 10).take(10) {
                assert_eq!(l, base, "clique {c} split by LP at vertex {v}");
            }
        }
        assert!(count <= 2, "at most the two cliques remain, got {count}");
    }

    #[test]
    fn labels_are_dense() {
        let (g, _) = known::grid_graph(8, 8, 1);
        let (labels, count) = label_propagation(&g, 2, 3);
        assert!(count >= 1);
        let mut seen = vec![false; count];
        for &l in &labels {
            assert!((l as usize) < count);
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every cluster id must be used");
    }

    #[test]
    fn zero_iterations_is_identity_clustering() {
        let (g, _) = known::cycle_graph(6, 1);
        let (labels, count) = label_propagation(&g, 0, 0);
        assert_eq!(count, 6);
        assert_eq!(labels, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn flat_tally_matches_hash_tally() {
        // The flat epoch-stamped array tally must produce labels
        // bit-identical to the frozen hash-tally baseline: the running
        // best depends only on arc order, which both share. All graphs
        // here fit in a single LP chunk (≤ 1024 vertices), so the whole
        // propagation is deterministic at any rayon schedule and the
        // full label vectors must agree.
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(99);
        let mut graphs = vec![
            known::two_communities(20, 24, 2, 3, 1).0,
            known::grid_graph(9, 11, 2).0,
            known::cycle_graph(64, 5).0,
        ];
        // A hub vertex with many distinct neighbour labels stresses the
        // first-iteration worst case of both tallies.
        let mut edges: Vec<(NodeId, NodeId, u64)> = (1..120)
            .map(|v| (0 as NodeId, v as NodeId, rng.gen_range(1..5)))
            .collect();
        for v in 1..119 {
            edges.push((v as NodeId, v as NodeId + 1, 1));
        }
        graphs.push(CsrGraph::from_edges(120, &edges));
        for (i, g) in graphs.iter().enumerate() {
            for iters in [1usize, 3] {
                let (a, ca) = label_propagation(g, iters, 1234 + i as u64);
                let (b, cb) = label_propagation_hash_tally(g, iters, 1234 + i as u64);
                assert_eq!(ca, cb, "graph {i}, {iters} iterations");
                assert_eq!(a, b, "graph {i}, {iters} iterations");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        let (labels, count) = label_propagation(&g, 2, 0);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
