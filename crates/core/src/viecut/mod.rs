//! VieCut — the inexact multilevel minimum-cut heuristic (§2.4) used to
//! obtain the tight upper bound λ̂ that powers the paper's exact algorithm.
//!
//! Each level: (1) cluster the graph with parallel label propagation —
//! minimum cuts rarely split a strongly connected cluster; (2) contract
//! the clusters (shared-memory parallel contraction); (3) run a
//! linear-work pass of Padberg–Rinaldi local tests to contract further.
//! Repeat until the graph is small, then solve it *exactly* with NOI.
//!
//! VieCut cannot guarantee optimality — contraction may destroy all
//! minimum cuts — but every value it reports is the value of an actual
//! cut of the input (trivial degree cuts of interim graphs, or the exact
//! solution of the final collapsed graph, both mapped back through
//! [`Membership`]). That *upper-bound validity* is all the exact drivers
//! rely on (§3.1.1: "As we set λ̂ to the result of VieCut when running
//! NOI, we can therefore guarantee a correct result").

pub mod label_propagation;

/// Moved: the Padberg–Rinaldi tests are now a shared reduction pass in
/// [`crate::reduce`] (every solver kernelizes with them, not just
/// VieCut). This module re-exports the pass for back-compat.
pub mod padberg_rinaldi {
    pub use crate::reduce::padberg_rinaldi_pass;
}

use mincut_ds::{PqKind, UnionFind};
use mincut_graph::{ContractionEngine, CsrGraph, EdgeWeight, Membership};

use crate::error::MinCutError;
use crate::noi::{noi_minimum_cut_connected, NoiConfig};
use crate::stats::{SolveContext, SolverStats};
use crate::MinCutResult;

pub use label_propagation::label_propagation;
pub use padberg_rinaldi::padberg_rinaldi_pass;

/// Configuration for [`viecut`].
#[derive(Clone, Debug)]
pub struct VieCutConfig {
    /// Label-propagation rounds per level (the reference uses 2–3).
    pub lp_iterations: usize,
    /// Solve exactly once the graph is at most this big.
    pub exact_threshold: usize,
    /// Seed for label-propagation orders and the exact solve.
    pub seed: u64,
    /// Track and return the cut side.
    pub compute_side: bool,
}

impl Default for VieCutConfig {
    fn default() -> Self {
        VieCutConfig {
            lp_iterations: 2,
            exact_threshold: 128,
            seed: 0x71ec,
            compute_side: true,
        }
    }
}

/// Runs VieCut. Returns an upper bound on λ(G) that is always the value of
/// an actual cut (witness included when `compute_side`); on the paper's
/// benchmark families it is usually λ itself. Requires n ≥ 2.
pub fn viecut(g: &CsrGraph, cfg: &VieCutConfig) -> MinCutResult {
    let mut stats = SolverStats::scratch();
    let mut ctx = SolveContext::new(&mut stats);
    viecut_instrumented(g, cfg, &mut ctx).expect("VieCut without a time budget cannot fail")
}

/// [`viecut`] feeding per-level telemetry (λ̂ trajectory, contraction
/// counts) into the [`SolveContext`] and honoring its optional time
/// budget between levels.
pub fn viecut_instrumented(
    g: &CsrGraph,
    cfg: &VieCutConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    assert!(g.n() >= 2, "minimum cut needs at least two vertices");
    let (comp, ncomp) = mincut_graph::components::connected_components(g);
    if ncomp > 1 {
        ctx.stats.record_lambda(0);
        let side = mincut_graph::components::smallest_component_side(&comp, ncomp);
        return Ok(MinCutResult {
            value: 0,
            side: cfg.compute_side.then_some(side),
        });
    }
    viecut_connected(g, cfg, ctx)
}

/// Algorithm body for inputs already known to be connected with n ≥ 2
/// (the session preflight guarantees both), skipping the redundant
/// component scan.
pub(crate) fn viecut_connected(
    g: &CsrGraph,
    cfg: &VieCutConfig,
    ctx: &mut SolveContext<'_>,
) -> Result<MinCutResult, MinCutError> {
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    // Witness bookkeeping only when a side is requested (as in NOI).
    let mut membership = Membership::identity(if cfg.compute_side { g.n() } else { 0 });
    let contract = |engine: &mut ContractionEngine,
                    current: &CsrGraph,
                    labels: &[mincut_graph::NodeId],
                    blocks: usize,
                    membership: &mut Membership| {
        if cfg.compute_side {
            engine.contract_tracked(current, labels, blocks, membership)
        } else {
            engine.contract(current, labels, blocks)
        }
    };
    let (dv, mut lambda) = {
        let (v, d) = g.min_weighted_degree().expect("n >= 2");
        (v, d)
    };
    let mut best_side: Option<Vec<bool>> = cfg.compute_side.then(|| {
        let mut s = vec![false; g.n()];
        s[dv as usize] = true;
        s
    });

    ctx.stats.record_lambda(lambda);

    let mut level_seed = cfg.seed;
    let mut uf = UnionFind::new(0);
    let mut labels_buf = Vec::new();
    while current.n() > cfg.exact_threshold {
        ctx.check_budget()?;
        ctx.stats.rounds += 1;
        let mut level_span = mincut_obs::span("viecut/level");
        level_span.arg("level", ctx.stats.rounds);
        level_span.arg("n", current.n());
        level_span.arg("lambda_hat", lambda);
        let n_before = current.n();
        // (1) cluster.
        let (labels, clusters) = label_propagation(&current, cfg.lp_iterations, level_seed);
        level_seed = level_seed.wrapping_add(0x9e37_79b9);
        if clusters == 1 {
            // The whole graph is one strongly connected cluster: there is
            // no community structure for the multilevel scheme to exploit
            // and further levels would crawl on Padberg–Rinaldi progress
            // alone. Hand straight over to the exact solver.
            break;
        }
        if clusters < current.n() {
            ctx.stats.contracted_vertices += (current.n() - clusters) as u64;
            let next = contract(&mut engine, &current, &labels, clusters, &mut membership);
            ctx.stats.record_contraction_path(engine.last_path());
            engine.recycle(std::mem::replace(&mut current, next));
            update_trivial_bound(&current, &membership, &mut lambda, &mut best_side, cfg);
            ctx.stats.record_lambda(lambda);
        }
        // (2) Padberg–Rinaldi pass on the contracted graph.
        if current.n() > cfg.exact_threshold {
            uf.reset(current.n());
            let unions = padberg_rinaldi_pass(&current, lambda, &mut uf);
            if unions > 0 && uf.count() > 1 {
                let blocks = uf.dense_labels_into(&mut labels_buf);
                ctx.stats.contracted_vertices += (current.n() - blocks) as u64;
                let next = contract(&mut engine, &current, &labels_buf, blocks, &mut membership);
                ctx.stats.record_contraction_path(engine.last_path());
                engine.recycle(std::mem::replace(&mut current, next));
                update_trivial_bound(&current, &membership, &mut lambda, &mut best_side, cfg);
                ctx.stats.record_lambda(lambda);
            }
        }
        if current.n() <= 1 {
            break; // fully collapsed: λ̂ is whatever trivial cuts we saw
        }
        // Require geometric shrinkage (the multilevel contract of the
        // reference implementation); below 5% progress the remaining work
        // is cheaper in the exact solver.
        if current.n() * 20 > n_before * 19 {
            break;
        }
    }

    // (3) exact solve of the small remainder (connected: contraction
    // preserves connectivity). Runs against a nested stats sink: its λ̂
    // trajectory concerns the collapsed graph and would pollute ours,
    // but its work counters are ours.
    if current.n() >= 2 {
        let mut remainder_span = mincut_obs::span("viecut/exact-remainder");
        remainder_span.arg("n", current.n());
        let mut nested = SolverStats::scratch();
        let exact = {
            let mut inner = SolveContext {
                stats: &mut nested,
                deadline: ctx.deadline,
                budget: ctx.budget,
            };
            noi_minimum_cut_connected(
                &current,
                &NoiConfig {
                    pq: PqKind::Heap,
                    bounded: true,
                    initial_bound: None,
                    compute_side: cfg.compute_side,
                    seed: cfg.seed,
                },
                &mut inner,
            )?
        };
        ctx.stats.absorb_work(&nested);
        if exact.value < lambda {
            lambda = exact.value;
            ctx.stats.record_lambda(lambda);
            if cfg.compute_side {
                best_side = Some(membership.side_of_bitmap(&exact.side.expect("requested")));
            }
        }
    }

    Ok(MinCutResult {
        value: lambda,
        side: best_side,
    })
}

fn update_trivial_bound(
    current: &CsrGraph,
    membership: &Membership,
    lambda: &mut EdgeWeight,
    best_side: &mut Option<Vec<bool>>,
    cfg: &VieCutConfig,
) {
    if let Some((v, d)) = current.min_weighted_degree() {
        if current.n() >= 2 && d < *lambda {
            *lambda = d;
            if cfg.compute_side {
                *best_side = Some(membership.side_of_vertices(&[v]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn check_upper_bound(g: &CsrGraph, lambda: EdgeWeight) -> EdgeWeight {
        let r = viecut(g, &VieCutConfig::default());
        assert!(r.value >= lambda, "VieCut may not go below λ");
        let side = r.side.expect("witness");
        assert!(g.is_proper_cut(&side));
        assert_eq!(
            g.cut_value(&side),
            r.value,
            "reported value must be a real cut"
        );
        r.value
    }

    #[test]
    fn exact_on_clustered_families() {
        // Community structure is VieCut's best case: it finds λ exactly.
        let (g, l) = known::two_communities(40, 40, 2, 2, 1);
        assert_eq!(check_upper_bound(&g, l), l);
        let (g, l) = known::ring_of_cliques(8, 20, 2, 1);
        assert_eq!(check_upper_bound(&g, l), l);
    }

    #[test]
    fn valid_bound_on_grids_and_cycles() {
        let (g, l) = known::grid_graph(20, 20, 1);
        check_upper_bound(&g, l);
        let (g, l) = known::cycle_graph(500, 2);
        check_upper_bound(&g, l);
    }

    #[test]
    fn small_graph_goes_straight_to_exact() {
        let (g, l) = known::two_communities(6, 5, 1, 2, 1);
        let r = viecut(&g, &VieCutConfig::default());
        assert_eq!(r.value, l); // below exact_threshold: NOI solves exactly
    }

    #[test]
    fn disconnected_reports_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 3), (2, 3, 3)]);
        let r = viecut(&g, &VieCutConfig::default());
        assert_eq!(r.value, 0);
        assert_eq!(g.cut_value(&r.side.unwrap()), 0);
    }
}
