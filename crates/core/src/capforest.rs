//! The CAPFOREST scan of Nagamochi, Ono and Ibaraki, with the paper's
//! λ̂-bounded priority queue optimisation (§3.1.2, Lemma 3.1).
//!
//! One pass scans the whole graph in maximum-adjacency-like order: it
//! repeatedly pops the vertex `x` most strongly connected (`r(x)`) to the
//! already-scanned set and raises `r(y)` by `c(x, y)` for every unscanned
//! neighbour `y`. While scanning the edge `(x, y)` the lower bound
//! `q(x, y) = r(y)` certifies `q(e) ≤ λ(G, x, y)`, so any edge whose `r`
//! value crosses the current upper bound λ̂ (`r(y) < λ̂ ≤ r(y) + c(e)`)
//! connects two vertices with connectivity ≥ λ̂ and is *marked contractible*
//! in a union-find structure (the graph itself is untouched; collapsing
//! happens in a postprocessing step, §3.2).
//!
//! The pass simultaneously tracks `α`, the value of the cut between the
//! scanned prefix and the rest, and lowers λ̂ whenever a prefix cut beats
//! it (lines 14–15 of Algorithm 1) — for the first scanned vertex this is
//! exactly the trivial degree cut.
//!
//! With the bound enabled, queue priorities are capped at λ̂
//! (`Q(y) ← min(r(y), λ̂)`): vertices whose priority already reached λ̂ stop
//! paying queue updates. Lemma 3.1 of the paper shows the marked edges are
//! still safely contractible.

use mincut_ds::{MaxPq, UnionFind};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

/// Outcome of one CAPFOREST pass.
pub struct CapforestOutcome {
    /// Union-find over the current graph's vertices; non-singleton blocks
    /// are the marked contractions.
    pub uf: UnionFind,
    /// Number of successful unions (0 means the pass found nothing; the
    /// caller falls back to a Stoer–Wagner phase for guaranteed progress).
    pub unions: usize,
    /// Possibly improved upper bound λ̂ (minimum over the input bound and
    /// all proper prefix cuts α seen during the scan).
    pub lambda_hat: EdgeWeight,
    /// Scan order of the pass (vertices in the order they were scanned).
    pub scan_order: Vec<NodeId>,
    /// If the pass improved λ̂, the length of the prefix of `scan_order`
    /// that witnesses the best cut.
    pub best_prefix_len: Option<usize>,
}

impl CapforestOutcome {
    /// The witness side of the improved bound, if any: the scanned prefix.
    pub fn best_prefix(&self) -> Option<&[NodeId]> {
        self.best_prefix_len.map(|l| &self.scan_order[..l])
    }
}

/// Runs one CAPFOREST pass over `g` starting from `start`.
///
/// * `lambda_hat` — current upper bound on the minimum cut (the trivial
///   minimum-degree bound, a VieCut result, or the bound carried over from
///   earlier passes).
/// * `bounded` — if true, queue priorities are capped at λ̂ (the paper's
///   NOIλ̂ variants); if false, priorities are exact `r` values (plain
///   NOI-HNSS). Bucket queues require `bounded` (their bucket count is the
///   priority range).
///
/// Works on disconnected graphs too: vertices unreachable from `start` are
/// simply never scanned (the parallel driver handles restarts; the
/// sequential driver pre-splits components).
pub fn capforest<P: MaxPq>(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    start: NodeId,
    bounded: bool,
) -> CapforestOutcome {
    let n = g.n();
    assert!((start as usize) < n);
    let mut uf = UnionFind::new(n);
    let mut unions = 0usize;
    let mut lambda = lambda_hat;
    let mut r = vec![0 as EdgeWeight; n];
    let mut visited = vec![false; n];
    let mut q = P::new();
    // Bucket queues allocate `max_priority + 1` buckets; the priorities we
    // feed are capped at the *initial* λ̂ (λ̂ only decreases during a pass).
    q.reset(n, if bounded { lambda_hat } else { u64::MAX });

    let mut scan_order: Vec<NodeId> = Vec::with_capacity(n);
    let mut best_prefix_len: Option<usize> = None;
    let mut alpha: i128 = 0;

    q.push(start, 0);
    while let Some((x, _)) = q.pop_max() {
        visited[x as usize] = true;
        scan_order.push(x);
        // α tracks c(scanned, unscanned): scanning x adds its edges to the
        // outside and removes the (doubled) edges into the prefix.
        alpha += g.weighted_degree(x) as i128 - 2 * r[x as usize] as i128;
        debug_assert!(alpha >= 0);
        // A proper prefix (not all of V) is a real cut; compare to λ̂.
        if scan_order.len() < n && (alpha as u64) < lambda {
            lambda = alpha as u64;
            best_prefix_len = Some(scan_order.len());
        }
        for (y, w) in g.arcs(x) {
            if visited[y as usize] {
                continue;
            }
            let ry = r[y as usize];
            // Line 17: the scanned edge certifies connectivity ≥ λ̂ exactly
            // when r(y) crosses the bound.
            if ry < lambda && lambda <= ry + w && uf.union(x, y) {
                unions += 1;
            }
            r[y as usize] = ry + w;
            let prio = if bounded {
                (ry + w).min(lambda)
            } else {
                ry + w
            };
            if q.contains(y) {
                // λ̂ may have dropped below the priority stored earlier in
                // the pass; keys are kept monotone (never lowered), which
                // only affects tie-breaking among vertices that already
                // reached the bound (see Lemma 3.1 — any such vertex is a
                // valid next scan).
                if prio > q.priority(y) {
                    q.raise(y, prio);
                }
            } else {
                q.push(y, prio);
            }
        }
    }

    CapforestOutcome {
        uf,
        unions,
        lambda_hat: lambda,
        scan_order,
        best_prefix_len,
    }
}

/// Largest bound the bucket queues accept: they allocate Θ(bound) slots,
/// so passes with a larger bound fall back to the binary heap.
pub(crate) const MAX_BUCKET_BOUND: EdgeWeight = 1 << 26;

/// One scan pass through a [`mincut_ds::CountingPq`]-wrapped queue of the
/// requested kind, so every driver (NOI, Matula) shares the same
/// bound-capped dispatch and feeds the thread-local PQ-operation counters
/// the session API harvests into `SolverStats`. Unbounded passes
/// (`bounded == false`) require the heap.
pub(crate) fn counting_capforest(
    g: &CsrGraph,
    bound: EdgeWeight,
    start: NodeId,
    pq: mincut_ds::PqKind,
    bounded: bool,
) -> CapforestOutcome {
    use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, CountingPq, PqKind};
    if !bounded {
        return capforest::<CountingPq<BinaryHeapPq>>(g, bound, start, false);
    }
    match pq {
        PqKind::BStack if bound <= MAX_BUCKET_BOUND => {
            capforest::<CountingPq<BStackPq>>(g, bound, start, true)
        }
        PqKind::BQueue if bound <= MAX_BUCKET_BOUND => {
            capforest::<CountingPq<BQueuePq>>(g, bound, start, true)
        }
        // Heap, or a bound too large for bucket arrays.
        _ => capforest::<CountingPq<BinaryHeapPq>>(g, bound, start, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq};
    use mincut_graph::generators::known;

    fn run_all_queues(g: &CsrGraph, lambda_hat: EdgeWeight) -> Vec<CapforestOutcome> {
        vec![
            capforest::<BStackPq>(g, lambda_hat, 0, true),
            capforest::<BQueuePq>(g, lambda_hat, 0, true),
            capforest::<BinaryHeapPq>(g, lambda_hat, 0, true),
            capforest::<BinaryHeapPq>(g, lambda_hat, 0, false),
        ]
    }

    #[test]
    fn scans_every_vertex_of_connected_graph() {
        let (g, _) = known::grid_graph(4, 5, 1);
        for out in run_all_queues(&g, g.min_weighted_degree().unwrap().1) {
            assert_eq!(out.scan_order.len(), g.n());
        }
    }

    #[test]
    fn first_prefix_cut_is_start_degree() {
        let (g, _) = known::star_graph(6, 3);
        // Start at a leaf: its degree 3 is a prefix cut; λ̂ = 100 improves.
        let out = capforest::<BinaryHeapPq>(&g, 100, 1, true);
        assert!(out.lambda_hat <= 3);
        let side_len = out.best_prefix_len.unwrap();
        let side = &out.scan_order[..side_len];
        let mut bits = vec![false; g.n()];
        for &v in side {
            bits[v as usize] = true;
        }
        assert_eq!(g.cut_value(&bits), out.lambda_hat);
    }

    #[test]
    fn prefix_cuts_never_beat_minimum_cut() {
        // λ̂ can never drop below λ because every α is a real cut.
        let (g, lambda) = known::two_communities(5, 5, 2, 2, 1);
        for out in run_all_queues(&g, g.min_weighted_degree().unwrap().1) {
            assert!(out.lambda_hat >= lambda);
        }
    }

    #[test]
    fn marked_edges_have_connectivity_at_least_lambda_hat() {
        // Exhaustively verify the certificate on a small weighted graph:
        // every marked pair (u, v) must have min s-t cut ≥ λ̂ at marking
        // time ≥ final λ̂... we check against the *initial* λ̂ lowered to
        // the final one, the weakest sound claim, using max-flow.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 4),
                (1, 2, 4),
                (2, 0, 4),
                (3, 4, 4),
                (4, 5, 4),
                (5, 3, 4),
                (0, 3, 1),
                (1, 4, 1),
            ],
        );
        let delta = g.min_weighted_degree().unwrap().1;
        for out in run_all_queues(&g, delta) {
            let mut uf = out.uf.clone();
            for u in 0..g.n() as NodeId {
                for v in 0..u {
                    if uf.same(u, v) {
                        let (cut, _) = mincut_flow::min_st_cut(&g, u, v);
                        assert!(
                            cut >= out.lambda_hat,
                            "marked pair ({u},{v}) has connectivity {cut} < λ̂ {}",
                            out.lambda_hat
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_scans_one_component() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let out = capforest::<BinaryHeapPq>(&g, 10, 0, true);
        assert_eq!(out.scan_order.len(), 3);
        // The full scanned component is a proper prefix with cut 0.
        assert_eq!(out.lambda_hat, 0);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let out = capforest::<BinaryHeapPq>(&g, 5, 0, true);
        assert_eq!(out.scan_order, vec![0]);
        assert_eq!(out.lambda_hat, 5); // no proper prefix exists
        assert_eq!(out.unions, 0);
    }

    #[test]
    fn unbounded_and_bounded_agree_on_lambda_when_no_capping() {
        // With λ̂ far above all priorities, bounded == unbounded behaviour.
        let (g, _) = known::grid_graph(5, 5, 2);
        let a = capforest::<BinaryHeapPq>(&g, 1_000_000, 0, true);
        let b = capforest::<BinaryHeapPq>(&g, 1_000_000, 0, false);
        assert_eq!(a.lambda_hat, b.lambda_hat);
        assert_eq!(a.scan_order, b.scan_order);
        assert_eq!(a.unions, b.unions);
    }
}
