//! The CAPFOREST scan of Nagamochi, Ono and Ibaraki, with the paper's
//! λ̂-bounded priority queue optimisation (§3.1.2, Lemma 3.1).
//!
//! One pass scans the whole graph in maximum-adjacency-like order: it
//! repeatedly pops the vertex `x` most strongly connected (`r(x)`) to the
//! already-scanned set and raises `r(y)` by `c(x, y)` for every unscanned
//! neighbour `y`. While scanning the edge `(x, y)` the lower bound
//! `q(x, y) = r(y)` certifies `q(e) ≤ λ(G, x, y)`, so any edge whose `r`
//! value crosses the current upper bound λ̂ (`r(y) < λ̂ ≤ r(y) + c(e)`)
//! connects two vertices with connectivity ≥ λ̂ and is *marked contractible*
//! in a union-find structure (the graph itself is untouched; collapsing
//! happens in a postprocessing step, §3.2).
//!
//! The pass simultaneously tracks `α`, the value of the cut between the
//! scanned prefix and the rest, and lowers λ̂ whenever a prefix cut beats
//! it (lines 14–15 of Algorithm 1) — for the first scanned vertex this is
//! exactly the trivial degree cut.
//!
//! With the bound enabled, queue priorities are capped at λ̂
//! (`Q(y) ← min(r(y), λ̂)`): vertices whose priority already reached λ̂ stop
//! paying queue updates. Lemma 3.1 of the paper shows the marked edges are
//! still safely contractible.
//!
//! # Hot-path layout
//!
//! The scan is the dominant cost of every NOI-family solver, so its state
//! lives in a persistent [`ScanScratch`] (SoA: `r` values, visited stamps,
//! the tight-edge marks folded into the union-find, the scan order) that
//! drivers pool across contraction rounds and solver calls through a
//! [`ScanWorkspace`]. Per-pass "clearing" is an epoch bump for the stamped
//! arrays and an O(1) queue [`MaxPq::reset`]; after the first pass at a
//! given size the scan performs **no heap allocation at all**
//! (`crates/core/tests/scan_alloc.rs` proves this with a counting global
//! allocator).

use mincut_ds::{MaxPq, PqCounters, UnionFind};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

/// Outcome of one standalone CAPFOREST pass (the owning variant returned
/// by [`capforest`]; pooled drivers use [`capforest_with`] + the scratch).
pub struct CapforestOutcome {
    /// Union-find over the current graph's vertices; non-singleton blocks
    /// are the marked contractions.
    pub uf: UnionFind,
    /// Number of successful unions (0 means the pass found nothing; the
    /// caller falls back to a Stoer–Wagner phase for guaranteed progress).
    pub unions: usize,
    /// Possibly improved upper bound λ̂ (minimum over the input bound and
    /// all proper prefix cuts α seen during the scan).
    pub lambda_hat: EdgeWeight,
    /// Scan order of the pass (vertices in the order they were scanned).
    pub scan_order: Vec<NodeId>,
    /// If the pass improved λ̂, the length of the prefix of `scan_order`
    /// that witnesses the best cut.
    pub best_prefix_len: Option<usize>,
    /// Queue operation tallies of the pass (zero unless `P` counts).
    pub pq_ops: PqCounters,
}

impl CapforestOutcome {
    /// The witness side of the improved bound, if any: the scanned prefix.
    pub fn best_prefix(&self) -> Option<&[NodeId]> {
        self.best_prefix_len.map(|l| &self.scan_order[..l])
    }
}

/// Plain-old-data result of a pooled pass; the heavy state (union-find,
/// scan order) stays in the [`ScanScratch`].
#[derive(Clone, Copy, Debug)]
pub struct ScanInfo {
    /// Successful unions of the pass (see [`CapforestOutcome::unions`]).
    pub unions: usize,
    /// Possibly improved upper bound λ̂.
    pub lambda_hat: EdgeWeight,
    /// Witnessing prefix length of `scratch.order()` if λ̂ improved.
    pub best_prefix_len: Option<usize>,
}

/// Persistent per-thread scan state, pooled across contraction rounds and
/// solver calls. All arrays grow to the high-water mark of the graphs
/// scanned and are never shrunk or re-zeroed: validity is tracked by an
/// epoch stamp per vertex (`SEEN` = has an `r` value, `DONE` = scanned),
/// exactly like the intrusive queues' membership stamps.
pub struct ScanScratch {
    /// Tight-edge marks of the last pass: endpoints united whenever an
    /// edge's `r` crossing certified connectivity ≥ λ̂.
    uf: UnionFind,
    /// `r(v)`: total weight from v into the scanned region. Valid iff
    /// `stamp[v] >= epoch` (0 otherwise).
    r: Vec<EdgeWeight>,
    /// `epoch` = SEEN (frontier, `r` valid), `epoch + 1` = DONE (scanned).
    stamp: Vec<u32>,
    /// Advances by 2 per pass.
    epoch: u32,
    /// Scan order of the last pass.
    order: Vec<NodeId>,
}

impl Default for ScanScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanScratch {
    pub fn new() -> Self {
        ScanScratch {
            uf: UnionFind::new(0),
            r: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            order: Vec::new(),
        }
    }

    /// Prepares for a pass over `n` vertices: bumps the epoch, grows the
    /// arrays if `n` is a new high-water mark, resets the union-find.
    fn begin_pass(&mut self, n: usize) {
        if self.epoch >= u32::MAX - 3 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 2;
        if self.r.len() < n {
            self.r.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.order.clear();
        self.uf.reset(n);
    }

    /// Scan order of the last pass.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Tight-edge marks of the last pass.
    pub fn uf_mut(&mut self) -> &mut UnionFind {
        &mut self.uf
    }
}

/// Runs one CAPFOREST pass over `g` starting from `start`, using the
/// caller's queue and scratch (both reused across passes; see the module
/// docs). Results land in `scratch` (`order`, `uf`); the returned
/// [`ScanInfo`] carries the scalars.
///
/// * `lambda_hat` — current upper bound on the minimum cut (the trivial
///   minimum-degree bound, a VieCut result, or the bound carried over from
///   earlier passes).
/// * `bounded` — if true, queue priorities are capped at λ̂ (the paper's
///   NOIλ̂ variants); if false, priorities are exact `r` values (plain
///   NOI-HNSS). Bucket queues require `bounded` (their bucket count is the
///   priority range).
///
/// Works on disconnected graphs too: vertices unreachable from `start` are
/// simply never scanned (the parallel driver handles restarts; the
/// sequential driver pre-splits components).
pub fn capforest_with<P: MaxPq>(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    start: NodeId,
    bounded: bool,
    q: &mut P,
    scratch: &mut ScanScratch,
) -> ScanInfo {
    let n = g.n();
    assert!((start as usize) < n);
    // One span per pass, not per edge: the disabled path is a single
    // relaxed load, which is what keeps the warm scan allocation-free
    // (`tests/scan_alloc.rs`) and the `hotpath` bench within noise.
    let mut _sp = mincut_obs::span("capforest/scan");
    _sp.arg("n", n);
    _sp.arg("lambda_hat", lambda_hat);
    scratch.begin_pass(n);
    let seen = scratch.epoch;
    let done = scratch.epoch + 1;
    let mut unions = 0usize;
    let mut lambda = lambda_hat;
    // Bucket queues address `max_priority + 1` buckets; the priorities we
    // feed are capped at the *initial* λ̂ (λ̂ only decreases during a pass).
    q.reset(n, if bounded { lambda_hat } else { u64::MAX });

    let mut best_prefix_len: Option<usize> = None;
    let mut alpha: i128 = 0;

    q.push(start, 0);
    scratch.stamp[start as usize] = seen;
    scratch.r[start as usize] = 0;
    while let Some((x, _)) = q.pop_max() {
        let xi = x as usize;
        scratch.stamp[xi] = done;
        scratch.order.push(x);
        // α tracks c(scanned, unscanned): scanning x adds its edges to the
        // outside and removes the (doubled) edges into the prefix.
        alpha += g.weighted_degree(x) as i128 - 2 * scratch.r[xi] as i128;
        debug_assert!(alpha >= 0);
        // A proper prefix (not all of V) is a real cut; compare to λ̂.
        if scratch.order.len() < n && (alpha as u64) < lambda {
            lambda = alpha as u64;
            best_prefix_len = Some(scratch.order.len());
        }
        // Indexed arc-slice walk instead of the zip iterator so the
        // r/stamp entries of upcoming neighbours can be prefetched a few
        // arcs ahead — those are the random, latency-bound accesses of
        // the scan (the arc stream itself is sequential and the hardware
        // prefetcher covers it). Arc order is unchanged, so the queue
        // operation stream is bit-identical to the plain loop.
        let (nbrs, wts) = g.arc_slices(x);
        const LOOKAHEAD: usize = 8;
        for j in 0..nbrs.len() {
            if let Some(&ahead) = nbrs.get(j + LOOKAHEAD) {
                mincut_ds::simd::prefetch_read(&scratch.stamp, ahead as usize);
                mincut_ds::simd::prefetch_read(&scratch.r, ahead as usize);
            }
            let (y, w) = (nbrs[j], wts[j]);
            let yi = y as usize;
            let ystamp = scratch.stamp[yi];
            if ystamp == done {
                continue;
            }
            let fresh = ystamp != seen;
            let ry = if fresh { 0 } else { scratch.r[yi] };
            // Line 17: the scanned edge certifies connectivity ≥ λ̂ exactly
            // when r(y) crosses the bound.
            if ry < lambda && lambda <= ry + w && scratch.uf.union(x, y) {
                unions += 1;
            }
            scratch.r[yi] = ry + w;
            scratch.stamp[yi] = seen;
            let prio = if bounded {
                (ry + w).min(lambda)
            } else {
                ry + w
            };
            if fresh {
                q.push(y, prio);
            } else {
                // λ̂ may have dropped below the priority stored earlier in
                // the pass; keys are kept monotone (never lowered), which
                // only affects tie-breaking among vertices that already
                // reached the bound (see Lemma 3.1 — any such vertex is a
                // valid next scan).
                if prio > q.priority(y) {
                    q.raise(y, prio);
                }
            }
        }
    }

    ScanInfo {
        unions,
        lambda_hat: lambda,
        best_prefix_len,
    }
}

/// Standalone variant of [`capforest_with`]: allocates a fresh queue and
/// scratch per call and returns an owning [`CapforestOutcome`]. Handy for
/// tests and one-shot callers; round loops should hold a
/// [`ScanWorkspace`] instead.
pub fn capforest<P: MaxPq>(
    g: &CsrGraph,
    lambda_hat: EdgeWeight,
    start: NodeId,
    bounded: bool,
) -> CapforestOutcome {
    let mut q = P::new();
    let mut scratch = ScanScratch::new();
    let info = capforest_with(g, lambda_hat, start, bounded, &mut q, &mut scratch);
    CapforestOutcome {
        uf: scratch.uf,
        unions: info.unions,
        lambda_hat: info.lambda_hat,
        scan_order: scratch.order,
        best_prefix_len: info.best_prefix_len,
        pq_ops: q.take_ops(),
    }
}

/// Largest bound the bucket queues accept: they address Θ(bound) bucket
/// slots, so passes with a larger bound fall back to the binary heap.
pub(crate) const MAX_BUCKET_BOUND: EdgeWeight = 1 << 26;

/// One solver's worth of pooled scan state: the [`ScanScratch`] plus one
/// instrumented instance of each queue implementation, so the bound-capped
/// per-pass dispatch (bucket queues only under [`MAX_BUCKET_BOUND`],
/// unbounded passes on the heap) can switch queues without dropping warm
/// allocations. Every sequential driver (NOI, Matula, the ParCut rescue
/// path) holds one workspace for the lifetime of its solve.
pub(crate) struct ScanWorkspace {
    scratch: ScanScratch,
    bstack: mincut_ds::CountingPq<mincut_ds::BStackPq>,
    bqueue: mincut_ds::CountingPq<mincut_ds::BQueuePq>,
    heap: mincut_ds::CountingPq<mincut_ds::BinaryHeapPq>,
}

impl ScanWorkspace {
    pub fn new() -> Self {
        ScanWorkspace {
            scratch: ScanScratch::new(),
            bstack: MaxPq::new(),
            bqueue: MaxPq::new(),
            heap: MaxPq::new(),
        }
    }

    /// One scan pass with the requested queue kind, sharing the
    /// bound-capped dispatch between every driver. Unbounded passes
    /// (`bounded == false`) require the heap.
    pub fn scan(
        &mut self,
        g: &CsrGraph,
        bound: EdgeWeight,
        start: NodeId,
        pq: mincut_ds::PqKind,
        bounded: bool,
    ) -> ScanInfo {
        use mincut_ds::PqKind;
        let s = &mut self.scratch;
        if !bounded {
            return capforest_with(g, bound, start, false, &mut self.heap, s);
        }
        match pq {
            PqKind::BStack if bound <= MAX_BUCKET_BOUND => {
                capforest_with(g, bound, start, true, &mut self.bstack, s)
            }
            PqKind::BQueue if bound <= MAX_BUCKET_BOUND => {
                capforest_with(g, bound, start, true, &mut self.bqueue, s)
            }
            // Heap, or a bound too large for bucket arrays.
            _ => capforest_with(g, bound, start, true, &mut self.heap, s),
        }
    }

    /// Queue-operation tallies since the last take, summed over the three
    /// queues; drivers feed this into `SolverStats` after each pass.
    pub fn take_ops(&mut self) -> PqCounters {
        let mut ops = self.bstack.take_ops();
        ops.add(self.bqueue.take_ops());
        ops.add(self.heap.take_ops());
        ops
    }

    /// Scan order of the last pass.
    pub fn order(&self) -> &[NodeId] {
        self.scratch.order()
    }

    /// Tight-edge marks of the last pass.
    pub fn uf_mut(&mut self) -> &mut UnionFind {
        self.scratch.uf_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq};
    use mincut_graph::generators::known;

    fn run_all_queues(g: &CsrGraph, lambda_hat: EdgeWeight) -> Vec<CapforestOutcome> {
        vec![
            capforest::<BStackPq>(g, lambda_hat, 0, true),
            capforest::<BQueuePq>(g, lambda_hat, 0, true),
            capforest::<BinaryHeapPq>(g, lambda_hat, 0, true),
            capforest::<BinaryHeapPq>(g, lambda_hat, 0, false),
        ]
    }

    #[test]
    fn scans_every_vertex_of_connected_graph() {
        let (g, _) = known::grid_graph(4, 5, 1);
        for out in run_all_queues(&g, g.min_weighted_degree().unwrap().1) {
            assert_eq!(out.scan_order.len(), g.n());
        }
    }

    #[test]
    fn first_prefix_cut_is_start_degree() {
        let (g, _) = known::star_graph(6, 3);
        // Start at a leaf: its degree 3 is a prefix cut; λ̂ = 100 improves.
        let out = capforest::<BinaryHeapPq>(&g, 100, 1, true);
        assert!(out.lambda_hat <= 3);
        let side_len = out.best_prefix_len.unwrap();
        let side = &out.scan_order[..side_len];
        let mut bits = vec![false; g.n()];
        for &v in side {
            bits[v as usize] = true;
        }
        assert_eq!(g.cut_value(&bits), out.lambda_hat);
    }

    #[test]
    fn prefix_cuts_never_beat_minimum_cut() {
        // λ̂ can never drop below λ because every α is a real cut.
        let (g, lambda) = known::two_communities(5, 5, 2, 2, 1);
        for out in run_all_queues(&g, g.min_weighted_degree().unwrap().1) {
            assert!(out.lambda_hat >= lambda);
        }
    }

    #[test]
    fn marked_edges_have_connectivity_at_least_lambda_hat() {
        // Exhaustively verify the certificate on a small weighted graph:
        // every marked pair (u, v) must have min s-t cut ≥ λ̂ at marking
        // time ≥ final λ̂... we check against the *initial* λ̂ lowered to
        // the final one, the weakest sound claim, using max-flow.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 4),
                (1, 2, 4),
                (2, 0, 4),
                (3, 4, 4),
                (4, 5, 4),
                (5, 3, 4),
                (0, 3, 1),
                (1, 4, 1),
            ],
        );
        let delta = g.min_weighted_degree().unwrap().1;
        for out in run_all_queues(&g, delta) {
            let mut uf = out.uf.clone();
            for u in 0..g.n() as NodeId {
                for v in 0..u {
                    if uf.same(u, v) {
                        let (cut, _) = mincut_flow::min_st_cut(&g, u, v);
                        assert!(
                            cut >= out.lambda_hat,
                            "marked pair ({u},{v}) has connectivity {cut} < λ̂ {}",
                            out.lambda_hat
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_scans_one_component() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let out = capforest::<BinaryHeapPq>(&g, 10, 0, true);
        assert_eq!(out.scan_order.len(), 3);
        // The full scanned component is a proper prefix with cut 0.
        assert_eq!(out.lambda_hat, 0);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let out = capforest::<BinaryHeapPq>(&g, 5, 0, true);
        assert_eq!(out.scan_order, vec![0]);
        assert_eq!(out.lambda_hat, 5); // no proper prefix exists
        assert_eq!(out.unions, 0);
    }

    #[test]
    fn unbounded_and_bounded_agree_on_lambda_when_no_capping() {
        // With λ̂ far above all priorities, bounded == unbounded behaviour.
        let (g, _) = known::grid_graph(5, 5, 2);
        let a = capforest::<BinaryHeapPq>(&g, 1_000_000, 0, true);
        let b = capforest::<BinaryHeapPq>(&g, 1_000_000, 0, false);
        assert_eq!(a.lambda_hat, b.lambda_hat);
        assert_eq!(a.scan_order, b.scan_order);
        assert_eq!(a.unions, b.unions);
    }

    #[test]
    fn reused_workspace_matches_fresh_passes() {
        // One workspace across many graphs and queue kinds must be
        // pass-for-pass identical to throwaway state.
        let graphs = [
            known::grid_graph(6, 7, 2).0,
            known::two_communities(8, 9, 2, 3, 1).0,
            known::ring_of_cliques(4, 5, 2, 1).0,
        ];
        let mut ws = ScanWorkspace::new();
        for round in 0..3 {
            for g in &graphs {
                let bound = g.min_weighted_degree().unwrap().1;
                for pq in mincut_ds::PqKind::ALL {
                    let info = ws.scan(g, bound, 0, pq, true);
                    let fresh = counting_capforest(g, bound, 0, pq, true);
                    assert_eq!(info.lambda_hat, fresh.lambda_hat, "round {round}");
                    assert_eq!(info.unions, fresh.unions);
                    assert_eq!(info.best_prefix_len, fresh.best_prefix_len);
                    assert_eq!(ws.order(), &fresh.scan_order[..]);
                    assert_eq!(ws.take_ops(), fresh.pq_ops);
                }
            }
        }
    }

    // Fresh-state reference for the workspace test: the same dispatch,
    // throwaway instrumented queues.
    fn counting_capforest(
        g: &CsrGraph,
        bound: EdgeWeight,
        start: NodeId,
        pq: mincut_ds::PqKind,
        bounded: bool,
    ) -> CapforestOutcome {
        use mincut_ds::{CountingPq, PqKind};
        if !bounded {
            return capforest::<CountingPq<BinaryHeapPq>>(g, bound, start, false);
        }
        match pq {
            PqKind::BStack if bound <= MAX_BUCKET_BOUND => {
                capforest::<CountingPq<BStackPq>>(g, bound, start, true)
            }
            PqKind::BQueue if bound <= MAX_BUCKET_BOUND => {
                capforest::<CountingPq<BQueuePq>>(g, bound, start, true)
            }
            _ => capforest::<CountingPq<BinaryHeapPq>>(g, bound, start, true),
        }
    }
}
