//! Proof that the observability spans are actually on the solver paths:
//! with tracing enabled, one run of each driver must leave the expected
//! span families in the sink, properly nested per track. A single
//! `#[test]` owns this binary — the span sink is process-wide, and a
//! sibling test draining it concurrently would race.

use mincut_core::parallel::{parallel_minimum_cut, ParCutConfig};
use mincut_core::viecut::{viecut, VieCutConfig};
use mincut_core::{Session, SolveOptions};
use mincut_graph::generators::known;
use mincut_obs::EventPhase;

#[test]
fn enabled_tracing_captures_every_solver_layer() {
    mincut_obs::set_tracing(true);
    let _ = mincut_obs::take_events(); // a clean slate

    let (g, lambda) = known::ring_of_cliques(6, 8, 2, 1);

    // Sequential NOI through the session (kernelization on): solve +
    // reduce + noi + capforest spans.
    let outcome = Session::new(&g)
        .options(SolveOptions::new().seed(5))
        .run("noi")
        .expect("solve");
    assert_eq!(outcome.cut.value, lambda);

    // VieCut: level spans plus the exact-remainder handoff. Needs a
    // graph above the exact threshold (128) or no level ever runs.
    let (big, big_lambda) = known::two_communities(100, 100, 2, 2, 1);
    let vc = viecut(&big, &VieCutConfig::default());
    assert!(vc.value >= big_lambda);

    // ParCut with several workers: round spans plus one named track per
    // logical worker.
    let pc = parallel_minimum_cut(
        &g,
        &ParCutConfig {
            threads: 3,
            ..Default::default()
        },
    );
    assert_eq!(pc.value, lambda);

    let (events, threads) = mincut_obs::take_events();
    mincut_obs::set_tracing(false);

    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    for name in [
        "solve",
        "reduce/pass",
        "capforest/scan",
        "noi/round",
        "viecut/level",
        "viecut/exact-remainder",
        "parcut/round",
        "parcut/worker-scan",
    ] {
        assert!(count(name) > 0, "no {name:?} span recorded");
    }

    // The solve span carries the telemetry args the exporter documents.
    let solve = events
        .iter()
        .find(|e| e.name == "solve")
        .expect("checked above");
    assert_eq!(solve.phase, EventPhase::Complete);
    for key in ["algorithm", "n", "m", "lambda"] {
        assert!(solve.arg(key).is_some(), "solve span missing arg {key:?}");
    }

    // Scoped per-round workers record on stable named tracks, not one
    // fresh track per spawned OS thread: every worker-scan span's track
    // resolves to a `parcut-worker-<i>` name, and there are at most as
    // many such tracks as configured workers.
    let worker_tracks: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "parcut/worker-scan")
        .map(|e| e.tid)
        .collect();
    assert!(!worker_tracks.is_empty());
    assert!(worker_tracks.len() <= 3, "more tracks than logical workers");
    for tid in &worker_tracks {
        let name = threads
            .iter()
            .find(|(t, _)| t == tid)
            .map(|(_, n)| n.as_str())
            .expect("every track is registered");
        assert!(
            name.starts_with("parcut-worker-"),
            "worker span on unexpected track {name:?}"
        );
    }

    // Structural soundness of everything recorded, as the exporter
    // checks it.
    mincut_obs::validate_events(&events).expect("span families must be laminar per track");
}
