//! Proof that the CAPFOREST hot path allocates nothing once warm.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up pass per (graph, queue) pair, further passes through
//! [`capforest_with`] with the pooled [`ScanScratch`] and an epoch-reset
//! queue must perform **zero** heap allocations — the whole point of the
//! intrusive-queue + scan-scratch rewrite. This file intentionally holds
//! a single `#[test]` so no sibling test can allocate concurrently and
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mincut_core::capforest::{capforest_with, ScanScratch};
use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, CountingPq, MaxPq};
use mincut_graph::generators::known;
use mincut_graph::CsrGraph;

struct CountingAllocator;

// Per-thread counter: the libtest harness thread may allocate (pipe
// buffering, timers) concurrently with the test thread, so a global
// counter would flake. Const-initialised `Cell` TLS never allocates on
// access; `try_with` tolerates teardown-phase allocations.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.try_with(|c| c.get()).unwrap_or(0)
}

fn assert_scan_allocation_free<P: MaxPq>(g: &CsrGraph, bound: u64, label: &str) {
    let mut q = P::new();
    let mut scratch = ScanScratch::new();
    // Warm-up: first pass grows every buffer to its high-water mark.
    let warm = capforest_with(g, bound, 0, true, &mut q, &mut scratch);
    // Several further passes (different starts — CAPFOREST restarts from
    // a random vertex every round) must not allocate at all.
    for start in [0u32, 1, 2, 3] {
        let before = allocations();
        let info = capforest_with(g, bound, start, true, &mut q, &mut scratch);
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{label}: warm scan from {start} allocated {} times",
            after - before
        );
        // The scan still does real work.
        assert_eq!(scratch.order().len(), g.n(), "{label}: scan incomplete");
        if start == 0 {
            assert_eq!(info.lambda_hat, warm.lambda_hat, "{label}: drifted");
        }
    }
}

#[test]
fn warm_capforest_scan_performs_zero_allocations() {
    // The scan now opens a `capforest/scan` span unconditionally; with
    // tracing off (the default — this binary never enables it) that
    // span must cost one relaxed load and allocate nothing, or every
    // assertion below would count its events. This is the disabled-path
    // zero-overhead contract of `mincut_obs`.
    assert!(
        !mincut_obs::tracing_enabled(),
        "tracing must stay disabled in the allocation test binary"
    );
    let (g, _) = known::two_communities(40, 44, 2, 3, 1);
    let bound = g.min_weighted_degree().unwrap().1;
    assert_scan_allocation_free::<BStackPq>(&g, bound, "bstack");
    assert_scan_allocation_free::<BQueuePq>(&g, bound, "bqueue");
    assert_scan_allocation_free::<BinaryHeapPq>(&g, bound, "heap");
    assert_scan_allocation_free::<CountingPq<BQueuePq>>(&g, bound, "counting-bqueue");

    // Reuse across *smaller* graphs (the NOI round loop: the graph
    // shrinks every round) must also be allocation-free with one shared
    // scratch, since every buffer is already at its high-water mark.
    let (big, _) = known::ring_of_cliques(6, 12, 2, 1);
    let (small, _) = known::grid_graph(4, 5, 2);
    let mut q: BQueuePq = MaxPq::new();
    let mut scratch = ScanScratch::new();
    let bound_big = big.min_weighted_degree().unwrap().1;
    let bound_small = small.min_weighted_degree().unwrap().1;
    let _ = capforest_with(&big, bound_big, 0, true, &mut q, &mut scratch);
    let before = allocations();
    let _ = capforest_with(&small, bound_small, 0, true, &mut q, &mut scratch);
    let _ = capforest_with(&big, bound_big, 1, true, &mut q, &mut scratch);
    assert_eq!(
        allocations() - before,
        0,
        "shrinking-graph reuse must not allocate"
    );
}
