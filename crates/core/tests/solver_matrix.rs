//! Core-crate integration: the full variant matrix (queue × bounding ×
//! VieCut seeding × parallel) on the structured instance families the
//! library ships — SBM communities, small worlds, weighted variants —
//! all agreeing pairwise.

use mincut_core::noi::{noi_minimum_cut, NoiConfig};
use mincut_core::parallel::mincut::{parallel_minimum_cut, ParCutConfig};
use mincut_core::viecut::{viecut, VieCutConfig};
use mincut_core::PqKind;
use mincut_graph::generators::{planted_partition, randomize_weights, watts_strogatz};
use mincut_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn variant_matrix(g: &CsrGraph, label: &str) {
    // Reference: unbounded heap.
    let reference = noi_minimum_cut(g, &NoiConfig::hnss());
    assert!(
        reference.side.as_ref().is_some_and(|s| g.is_proper_cut(s)
            && g.cut_value(s) == reference.value),
        "{label}: reference witness"
    );
    for pq in PqKind::ALL {
        for with_viecut in [false, true] {
            let initial_bound = with_viecut.then(|| {
                let vc = viecut(
                    g,
                    &VieCutConfig {
                        seed: 9,
                        ..Default::default()
                    },
                );
                assert!(vc.value >= reference.value, "{label}: VieCut below λ");
                (vc.value, vc.side)
            });
            let r = noi_minimum_cut(
                g,
                &NoiConfig {
                    initial_bound,
                    ..NoiConfig::bounded(pq)
                },
            );
            assert_eq!(
                r.value, reference.value,
                "{label}: NOIλ̂-{pq} viecut={with_viecut}"
            );
        }
        for threads in [1, 4] {
            let r = parallel_minimum_cut(
                g,
                &ParCutConfig {
                    pq,
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(r.value, reference.value, "{label}: ParCut-{pq} p={threads}");
            assert!(r.side.is_some_and(|s| g.cut_value(&s) == reference.value));
        }
    }
}

#[test]
fn matrix_on_planted_partition() {
    let mut rng = SmallRng::seed_from_u64(100);
    let g = planted_partition(5, 24, 0.5, 0.02, &mut rng);
    if mincut_graph::components::is_connected(&g) {
        variant_matrix(&g, "sbm");
    }
    // A weighted variant of the same topology.
    let w = randomize_weights(&g, 7, &mut rng);
    if mincut_graph::components::is_connected(&w) {
        variant_matrix(&w, "sbm-weighted");
    }
}

#[test]
fn matrix_on_small_world() {
    let mut rng = SmallRng::seed_from_u64(200);
    let g = watts_strogatz(300, 3, 0.1, &mut rng);
    variant_matrix(&g, "watts-strogatz");
    let w = randomize_weights(&g, 4, &mut rng);
    variant_matrix(&w, "watts-strogatz-weighted");
}

#[test]
fn viecut_is_exact_on_strong_communities() {
    // On well-separated SBM instances VieCut should not just bound but
    // *equal* the minimum cut (the behaviour the paper relies on: "in
    // most cases it already finds the minimum cut").
    let mut rng = SmallRng::seed_from_u64(300);
    let mut exact_hits = 0;
    let trials = 6;
    for t in 0..trials {
        let g = planted_partition(4, 32, 0.6, 0.01, &mut rng);
        if !mincut_graph::components::is_connected(&g) {
            exact_hits += 1; // both report 0
            continue;
        }
        let vc = viecut(
            &g,
            &VieCutConfig {
                seed: t,
                ..Default::default()
            },
        );
        let exact = noi_minimum_cut(&g, &NoiConfig::default());
        assert!(vc.value >= exact.value);
        if vc.value == exact.value {
            exact_hits += 1;
        }
    }
    assert!(
        exact_hits >= trials - 1,
        "VieCut found the exact cut only {exact_hits}/{trials} times on its best-case family"
    );
}
