//! Core-crate integration: the full solver matrix, driven by the
//! registry. Every registered solver family × every queue it accepts
//! runs over the structured instance families the library ships —
//! `known::` generators, SBM communities, small worlds, weighted
//! variants — asserting each family's advertised guarantee (exactness
//! or bound) and witness validity. No hand-listed algorithm vectors:
//! [`SolverRegistry::all`] names are the single source of truth.

use mincut_core::{Guarantee, Session, SolveOptions, Solver, SolverRegistry};
use mincut_graph::generators::{known, planted_partition, randomize_weights, watts_strogatz};
use mincut_graph::{CsrGraph, EdgeWeight};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every (family × queue) instance of the registry.
fn all_instances() -> Vec<(String, Box<dyn Solver>)> {
    SolverRegistry::global()
        .instances()
        .into_iter()
        .map(|s| (s.instance_name(&SolveOptions::new()), s))
        .collect()
}

/// Runs the whole matrix on one connected graph with known (or
/// reference-computed) minimum cut `lambda`, checking every solver's
/// guarantee and witness.
fn solver_matrix(g: &CsrGraph, lambda: EdgeWeight, label: &str) {
    // Few Karger-Stein repetitions: the matrix checks guarantees and
    // witnesses, not success probability (unoptimized test builds make
    // the full recursion expensive).
    let opts = SolveOptions::new().seed(0x5eed).threads(4).repetitions(3);
    for (name, solver) in all_instances() {
        let out = solver
            .solve(g, &opts)
            .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
        let caps = solver.capabilities();
        match caps.guarantee {
            Guarantee::Exact => {
                assert_eq!(out.cut.value, lambda, "{label}: {name} must be exact");
            }
            Guarantee::MonteCarlo | Guarantee::UpperBound => {
                assert!(out.cut.value >= lambda, "{label}: {name} went below λ");
            }
            Guarantee::TwoPlusEpsilon => {
                assert!(out.cut.value >= lambda, "{label}: {name} went below λ");
                let bound = ((2.0 + opts.epsilon) * lambda as f64).floor() as EdgeWeight;
                assert!(
                    out.cut.value <= bound,
                    "{label}: {name} broke its (2+ε) bound ({} > {bound})",
                    out.cut.value
                );
            }
        }
        assert!(
            out.cut.verify(g),
            "{label}: {name} must report an actual cut with a valid witness"
        );
        assert_eq!(
            *out.stats.lambda_trajectory.last().unwrap(),
            out.cut.value,
            "{label}: {name} trajectory must end at the returned value"
        );
    }

    // Witness-off runs return the same values with no side.
    let blind = SolveOptions::new()
        .seed(0x5eed)
        .threads(2)
        .repetitions(3)
        .witness(false);
    for entry in SolverRegistry::global().entries() {
        let solver = entry.instantiate(None);
        let out = solver
            .solve(g, &blind)
            .unwrap_or_else(|e| panic!("{label}/{}: {e}", entry.canonical));
        assert!(
            out.cut.side.is_none(),
            "{label}: {} leaked a witness",
            entry.canonical
        );
        if entry.caps.guarantee.is_exact() {
            assert_eq!(
                out.cut.value, lambda,
                "{label}: {} value-only run",
                entry.canonical
            );
        }
    }
}

#[test]
fn matrix_on_known_families() {
    let (g, l) = known::two_communities(9, 8, 2, 3, 1);
    solver_matrix(&g, l, "two-communities");
    let (g, l) = known::ring_of_cliques(5, 5, 2, 1);
    solver_matrix(&g, l, "ring-of-cliques");
    let (g, l) = known::grid_graph(5, 6, 2);
    solver_matrix(&g, l, "grid");
    let (g, l) = known::cycle_graph(24, 3);
    solver_matrix(&g, l, "cycle");
}

#[test]
fn matrix_on_planted_partition() {
    let mut rng = SmallRng::seed_from_u64(100);
    for trial in 0..2 {
        let g = planted_partition(5, 16, 0.5, 0.02, &mut rng);
        if !mincut_graph::components::is_connected(&g) {
            continue;
        }
        // Reference value from the default exact solver.
        let reference = Session::new(&g).run("noi").unwrap().cut.value;
        solver_matrix(&g, reference, &format!("sbm-{trial}"));
        // A weighted variant of the same topology.
        let w = randomize_weights(&g, 7, &mut rng);
        if mincut_graph::components::is_connected(&w) {
            let reference = Session::new(&w).run("noi").unwrap().cut.value;
            solver_matrix(&w, reference, &format!("sbm-weighted-{trial}"));
        }
    }
}

#[test]
fn matrix_on_small_world() {
    let mut rng = SmallRng::seed_from_u64(200);
    let g = watts_strogatz(120, 3, 0.1, &mut rng);
    let reference = Session::new(&g).run("noi-viecut").unwrap().cut.value;
    solver_matrix(&g, reference, "watts-strogatz");
    let w = randomize_weights(&g, 4, &mut rng);
    let reference = Session::new(&w).run("noi-viecut").unwrap().cut.value;
    solver_matrix(&w, reference, "watts-strogatz-weighted");
}

#[test]
fn viecut_is_exact_on_strong_communities() {
    // On well-separated SBM instances VieCut should not just bound but
    // *equal* the minimum cut (the behaviour the paper relies on: "in
    // most cases it already finds the minimum cut").
    let mut rng = SmallRng::seed_from_u64(300);
    let mut exact_hits = 0;
    let trials = 6;
    for t in 0..trials {
        let g = planted_partition(4, 32, 0.6, 0.01, &mut rng);
        if !mincut_graph::components::is_connected(&g) {
            exact_hits += 1; // both report 0
            continue;
        }
        let session = Session::new(&g).options(SolveOptions::new().seed(t));
        let vc = session.run("viecut").unwrap().cut.value;
        let exact = session.run("noi").unwrap().cut.value;
        assert!(vc >= exact);
        if vc == exact {
            exact_hits += 1;
        }
    }
    assert!(
        exact_hits >= trials - 1,
        "VieCut found the exact cut only {exact_hits}/{trials} times on its best-case family"
    );
}

#[test]
fn session_run_all_covers_every_family() {
    let (g, l) = known::two_communities(10, 10, 2, 2, 1);
    let results = Session::new(&g).run_all();
    assert_eq!(
        results.len(),
        SolverRegistry::global().names().len(),
        "run_all must cover the registry"
    );
    for (name, result) in results {
        let out = result.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.cut.value >= l, "{name}");
        assert!(out.cut.verify(&g), "{name} witness");
        assert!(out.stats.total_seconds >= 0.0);
    }
}
