//! Goldberg–Tarjan push-relabel maximum flow.
//!
//! Highest-label vertex selection, gap heuristic, and exact initial
//! distance labels from a reverse BFS — the configuration that performs
//! well on the sparse, shallow graphs of the paper's benchmark families.

use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

use crate::residual::Residual;

/// Result of a maximum-flow computation.
pub struct MaxFlowResult {
    /// The maximum s-t flow value = minimum s-t cut value.
    pub value: EdgeWeight,
    /// The final residual network (for cut extraction).
    pub(crate) residual: Residual,
    pub(crate) t: NodeId,
}

impl MaxFlowResult {
    /// A minimum s-t cut witness: `side[v] == true` for the source side.
    ///
    /// The algorithm computes a maximum *preflow* (excess parked at
    /// vertices lifted above level n is never routed back to the source —
    /// unnecessary for the value or the cut). The tight witness is
    /// therefore the complement of the sink side: every vertex that can
    /// still reach `t` in the residual network is on the sink side, all
    /// arcs into that set are saturated, and all excess outside it has
    /// height ≥ n+1, which makes the cut value exactly `excess(t)`.
    pub fn min_cut_side(&self) -> Vec<bool> {
        let mut side = self.residual.reaches_sink_side(self.t);
        for b in &mut side {
            *b = !*b;
        }
        side
    }
}

/// Computes the maximum flow between `s` and `t` in the undirected graph
/// `g`. Panics if `s == t` or either is out of range.
pub fn max_flow(g: &CsrGraph, s: NodeId, t: NodeId) -> MaxFlowResult {
    assert_ne!(s, t, "source and sink must differ");
    assert!((s as usize) < g.n() && (t as usize) < g.n());
    let mut net = Residual::new(g);
    let value = push_relabel(&mut net, s, t);
    MaxFlowResult {
        value,
        residual: net,
        t,
    }
}

/// Minimum s-t cut: value plus a witness side (source side `true`).
pub fn min_st_cut(g: &CsrGraph, s: NodeId, t: NodeId) -> (EdgeWeight, Vec<bool>) {
    let r = max_flow(g, s, t);
    let side = r.min_cut_side();
    (r.value, side)
}

/// Runs push-relabel on `net`, returns the flow value (= excess at `t`).
fn push_relabel(net: &mut Residual, s: NodeId, t: NodeId) -> EdgeWeight {
    let n = net.n();
    if n == 0 {
        return 0;
    }
    let max_h = 2 * n + 1;
    let mut height = initial_heights(net, t, n);
    height[s as usize] = n as u32;
    let mut excess = vec![0 as EdgeWeight; n];
    let mut cur = vec![0usize; n]; // current-arc pointer per vertex
                                   // Active vertex buckets by height.
    let mut active: Vec<Vec<NodeId>> = vec![Vec::new(); max_h + 1];
    let mut highest = 0usize;
    // Vertices per height level (for the gap heuristic), excluding s and t.
    let mut level_count = vec![0u32; max_h + 2];
    for v in 0..n as NodeId {
        if v != s {
            level_count[height[v as usize] as usize] += 1;
        }
    }

    macro_rules! activate {
        ($v:expr) => {{
            let v = $v;
            if v != s && v != t && excess[v as usize] > 0 {
                let h = height[v as usize] as usize;
                active[h].push(v);
                if h > highest {
                    highest = h;
                }
            }
        }};
    }

    // Saturate source arcs.
    for &a in net.out_arcs(s).to_vec().iter() {
        let w = net.to[a as usize];
        let c = net.cap[a as usize];
        if c > 0 && w != s {
            net.cap[a as usize] = 0;
            net.cap[(a ^ 1) as usize] += c;
            let had = excess[w as usize] > 0;
            excess[w as usize] += c;
            if !had {
                activate!(w);
            }
        }
    }

    while highest > 0 || !active[0].is_empty() {
        let Some(v) = active[highest].pop() else {
            if highest == 0 {
                break;
            }
            highest -= 1;
            continue;
        };
        if excess[v as usize] == 0 || v == s || v == t {
            continue;
        }
        if height[v as usize] as usize != highest {
            // Stale entry (vertex was relabelled or gapped since queueing).
            continue;
        }
        discharge(
            net,
            v,
            s,
            t,
            &mut height,
            &mut excess,
            &mut cur,
            &mut active,
            &mut highest,
            &mut level_count,
            max_h,
        );
    }
    excess[t as usize]
}

/// Exact initial labels: BFS distance to `t` in the (undirected) residual
/// graph; unreachable vertices parked at `n`.
fn initial_heights(net: &Residual, t: NodeId, n: usize) -> Vec<u32> {
    let mut h = vec![n as u32; n];
    h[t as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(t);
    while let Some(u) = queue.pop_front() {
        for &a in net.out_arcs(u) {
            // v can push towards u if arc v→u has capacity; initially all
            // arcs do, so plain BFS over the undirected structure.
            let v = net.to[a as usize];
            if h[v as usize] == n as u32 && net.cap[(a ^ 1) as usize] > 0 {
                h[v as usize] = h[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn discharge(
    net: &mut Residual,
    v: NodeId,
    s: NodeId,
    t: NodeId,
    height: &mut [u32],
    excess: &mut [EdgeWeight],
    cur: &mut [usize],
    active: &mut [Vec<NodeId>],
    highest: &mut usize,
    level_count: &mut [u32],
    max_h: usize,
) {
    let vi = v as usize;
    {
        let arcs = net.first[vi + 1] - net.first[vi];
        while cur[vi] < arcs {
            let a = net.arc_ids[net.first[vi] + cur[vi]];
            let w = net.to[a as usize];
            if net.cap[a as usize] > 0 && height[vi] == height[w as usize] + 1 {
                // Push.
                let delta = excess[vi].min(net.cap[a as usize]);
                net.cap[a as usize] -= delta;
                net.cap[(a ^ 1) as usize] += delta;
                let had = excess[w as usize] > 0;
                excess[w as usize] += delta;
                excess[vi] -= delta;
                if !had && w != s && w != t {
                    let h = height[w as usize] as usize;
                    active[h].push(w);
                    if h > *highest {
                        *highest = h;
                    }
                }
                if excess[vi] == 0 {
                    return;
                }
            } else {
                cur[vi] += 1;
            }
        }
        // Relabel.
        let old_h = height[vi] as usize;
        let mut min_h = u32::MAX;
        for &a in net.out_arcs(v) {
            if net.cap[a as usize] > 0 {
                min_h = min_h.min(height[net.to[a as usize] as usize]);
            }
        }
        let new_h = if min_h == u32::MAX {
            max_h as u32 // disconnected from everything; park at the top
        } else {
            (min_h + 1).min(max_h as u32)
        };
        level_count[old_h] -= 1;
        // Gap heuristic: if v left level `old_h` empty and old_h < n, every
        // vertex above the gap can never push to t again; lift them past n.
        let n = net.n();
        if level_count[old_h] == 0 && old_h < n {
            for u in 0..n as NodeId {
                let ui = u as usize;
                if u != s && u != t && height[ui] as usize > old_h && (height[ui] as usize) < n {
                    level_count[height[ui] as usize] -= 1;
                    height[ui] = n as u32 + 1;
                    level_count[n + 1] += 1;
                    // Re-queue lifted vertices so their excess keeps moving
                    // (back towards the source, above level n).
                    if excess[ui] > 0 {
                        active[n + 1].push(u);
                        if n + 1 > *highest {
                            *highest = n + 1;
                        }
                    }
                }
            }
        }
        height[vi] = new_h.max(height[vi]);
        level_count[height[vi] as usize] += 1;
        cur[vi] = 0;
        if height[vi] as usize >= max_h || excess[vi] == 0 {
            return;
        }
        if height[vi] as usize >= net.n() && v != s {
            // Above level n the vertex can only return excess towards the
            // source; keep discharging — it is still active.
        }
        // Re-queue at the new level and stop this discharge (highest-label
        // policy processes levels top-down).
        let h = height[vi] as usize;
        active[h].push(v);
        if h > *highest {
            *highest = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_flow_is_bottleneck() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
        let r = max_flow(&g, 0, 3);
        assert_eq!(r.value, 3);
        let side = r.min_cut_side();
        assert_eq!(g.cut_value(&side), 3);
        assert!(side[0] && !side[3]);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Two disjoint 0→3 paths with bottlenecks 2 and 4.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 3, 9),
                (0, 2, 4),
                (2, 3, 4),
                (4, 5, 1),
                (0, 4, 9),
                (5, 3, 1),
            ],
        );
        let r = max_flow(&g, 0, 3);
        assert_eq!(r.value, 2 + 4 + 1);
    }

    #[test]
    fn undirected_flow_can_reuse_both_directions() {
        // Classic undirected diamond: capacity must count both directions.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let r = max_flow(&g, 0, 3);
        assert_eq!(r.value, 2);
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 3), (2, 3, 3)]);
        let r = max_flow(&g, 0, 3);
        assert_eq!(r.value, 0);
        let side = r.min_cut_side();
        assert_eq!(g.cut_value(&side), 0);
    }

    #[test]
    fn flow_equals_brute_force_st_cut_on_small_graphs() {
        // Enumerate all s-t cuts of a fixed small graph and compare.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 3),
                (0, 2, 2),
                (1, 2, 1),
                (1, 3, 2),
                (2, 4, 3),
                (3, 4, 2),
                (1, 4, 1),
            ],
        );
        let (s, t) = (0, 4);
        let n = g.n();
        let mut best = EdgeWeight::MAX;
        for mask in 0u32..(1 << n) {
            if (mask >> s) & 1 == 1 && (mask >> t) & 1 == 0 {
                let side: Vec<bool> = (0..n).map(|v| (mask >> v) & 1 == 1).collect();
                best = best.min(g.cut_value(&side));
            }
        }
        assert_eq!(max_flow(&g, s, t).value, best);
    }

    #[test]
    fn min_st_cut_side_is_proper_and_tight() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 5), (2, 3, 1), (0, 3, 2)]);
        let (value, side) = min_st_cut(&g, 0, 2);
        assert_eq!(g.cut_value(&side), value);
        assert!(side[0] && !side[2]);
        // Candidate cuts: {0} = 1+2 = 3, {0,1} = 5+2 = 7, {0,3} = 1+1 = 2.
        assert_eq!(value, 2);
    }
}
