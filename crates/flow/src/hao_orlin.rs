//! Hao–Orlin global minimum cut.
//!
//! Hao and Orlin (SODA'92) observed that the n−1 max-flow computations of
//! the Gomory–Hu reduction can share state: after each push-relabel phase
//! the sink is merged into the source side, distance labels are *kept*, and
//! a new sink is chosen, giving a total running time asymptotically equal
//! to a single push-relabel run. Two modifications keep the labels valid
//! across phases:
//!
//! * vertices are split into the *awake* set and a stack of *dormant* sets;
//!   pushes and relabels only consider awake vertices;
//! * when a vertex is the only awake one at its level, relabelling it would
//!   create a level gap, so instead it — and every awake vertex above it —
//!   is moved into a new dormant set (this subsumes the gap heuristic);
//!   likewise a vertex with no awake residual neighbours becomes dormant.
//!
//! When the awake set (minus the source side) empties, the most recent
//! dormant set is woken. Every phase ends with a maximum preflow into the
//! current sink; the vertices that can still reach the sink in the residual
//! network form one side of a cut of value `excess(t)`, a candidate for the
//! global minimum. This implementation is the Rust counterpart of the
//! paper's comparator **HO-CGKLS**.

use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

use crate::residual::Residual;

/// Result of a Hao–Orlin run.
#[derive(Clone, Debug)]
pub struct HaoOrlinResult {
    /// The global minimum cut value λ(G).
    pub value: EdgeWeight,
    /// Witness side: `side[v] == true` for vertices on one side of a
    /// minimum cut (the sink side of the best phase).
    pub side: Vec<bool>,
}

const AWAKE: u32 = u32::MAX;
const SOURCE: u32 = u32::MAX - 1;

struct Ho {
    net: Residual,
    height: Vec<u32>,
    excess: Vec<EdgeWeight>,
    cur: Vec<usize>,
    /// AWAKE, SOURCE, or the index of the dormant set holding the vertex.
    state: Vec<u32>,
    dormant: Vec<Vec<NodeId>>,
    /// Exact per-level registry of awake vertices (positions tracked).
    by_level: Vec<Vec<NodeId>>,
    pos_in_level: Vec<u32>,
    /// Active (excess > 0) awake vertices, bucketed by height; entries may
    /// be stale and are re-validated when popped.
    active: Vec<Vec<NodeId>>,
    highest: usize,
    max_h: usize,
}

impl Ho {
    fn new(g: &CsrGraph) -> Self {
        let n = g.n();
        let max_h = 2 * n + 2;
        Ho {
            net: Residual::new(g),
            height: vec![0; n],
            excess: vec![0; n],
            cur: vec![0; n],
            state: vec![AWAKE; n],
            dormant: Vec::new(),
            by_level: vec![Vec::new(); max_h + 1],
            pos_in_level: vec![0; n],
            active: vec![Vec::new(); max_h + 1],
            highest: 0,
            max_h,
        }
    }

    #[inline]
    fn is_awake(&self, v: NodeId) -> bool {
        self.state[v as usize] == AWAKE
    }

    fn level_insert(&mut self, v: NodeId) {
        let h = self.height[v as usize] as usize;
        self.pos_in_level[v as usize] = self.by_level[h].len() as u32;
        self.by_level[h].push(v);
    }

    fn level_remove(&mut self, v: NodeId) {
        let h = self.height[v as usize] as usize;
        let pos = self.pos_in_level[v as usize] as usize;
        let last = *self.by_level[h].last().expect("vertex registered");
        self.by_level[h].swap_remove(pos);
        if last != v {
            self.pos_in_level[last as usize] = pos as u32;
        }
    }

    /// Registers an awake excess-carrying vertex in the active buckets.
    /// Entries are re-validated when popped, so duplicates and entries for
    /// the current sink are harmless.
    fn activate(&mut self, v: NodeId) {
        if self.excess[v as usize] > 0 && self.is_awake(v) {
            let h = self.height[v as usize] as usize;
            self.active[h].push(v);
            if h > self.highest {
                self.highest = h;
            }
        }
    }

    /// Moves every awake vertex with height ≥ `from_level` into a new
    /// dormant set (the paper's level-gap handling).
    fn put_to_sleep_from(&mut self, from_level: usize) {
        let mut set = Vec::new();
        let idx = self.dormant.len() as u32;
        for h in from_level..=self.max_h {
            while let Some(v) = self.by_level[h].pop() {
                self.state[v as usize] = idx;
                set.push(v);
            }
        }
        debug_assert!(!set.is_empty());
        self.dormant.push(set);
    }

    /// Moves a single vertex into a fresh dormant set.
    fn put_to_sleep_single(&mut self, v: NodeId) {
        self.level_remove(v);
        self.state[v as usize] = self.dormant.len() as u32;
        self.dormant.push(vec![v]);
    }

    /// Wakes the most recent dormant set; returns false if none exists.
    fn wake_latest(&mut self) -> bool {
        let Some(set) = self.dormant.pop() else {
            return false;
        };
        for v in set {
            self.state[v as usize] = AWAKE;
            self.level_insert(v);
            self.activate(v);
        }
        true
    }

    /// Number of awake vertices at the height of `v` (for the unique-level
    /// test).
    #[inline]
    fn level_population(&self, h: usize) -> usize {
        self.by_level[h].len()
    }

    /// Saturates all residual out-arcs of `v`, crediting the heads.
    fn saturate_out_arcs(&mut self, v: NodeId) {
        for idx in self.net.first[v as usize]..self.net.first[v as usize + 1] {
            let a = self.net.arc_ids[idx];
            let w = self.net.to[a as usize];
            let c = self.net.cap[a as usize];
            if c > 0 && self.state[w as usize] != SOURCE {
                self.net.cap[a as usize] = 0;
                self.net.cap[(a ^ 1) as usize] += c;
                self.excess[w as usize] += c;
                self.activate(w);
            }
        }
    }

    /// One max-preflow phase towards sink `t` over the awake vertices.
    /// Active buckets persist across phases; every entry is re-validated
    /// when popped (awake, not the sink, excess, height current).
    fn phase(&mut self, t: NodeId) {
        loop {
            let Some(v) = self.active[self.highest].pop() else {
                if self.highest == 0 {
                    break;
                }
                self.highest -= 1;
                continue;
            };
            if !self.is_awake(v)
                || v == t
                || self.excess[v as usize] == 0
                || self.height[v as usize] as usize != self.highest
            {
                continue; // stale entry
            }
            self.discharge(v);
        }
    }

    fn discharge(&mut self, v: NodeId) {
        let vi = v as usize;
        debug_assert!(self.excess[vi] > 0);
        {
            let arcs = self.net.first[vi + 1] - self.net.first[vi];
            while self.cur[vi] < arcs {
                let a = self.net.arc_ids[self.net.first[vi] + self.cur[vi]];
                let w = self.net.to[a as usize];
                if self.net.cap[a as usize] > 0
                    && self.is_awake(w)
                    && self.height[vi] == self.height[w as usize] + 1
                {
                    let delta = self.excess[vi].min(self.net.cap[a as usize]);
                    self.net.cap[a as usize] -= delta;
                    self.net.cap[(a ^ 1) as usize] += delta;
                    let had = self.excess[w as usize] > 0;
                    self.excess[w as usize] += delta;
                    self.excess[vi] -= delta;
                    if !had {
                        self.activate(w);
                    }
                    if self.excess[vi] == 0 {
                        return;
                    }
                } else {
                    self.cur[vi] += 1;
                }
            }
            // Out of admissible arcs: relabel or sleep.
            let h = self.height[vi] as usize;
            if self.level_population(h) == 1 {
                // v is alone on its level: relabelling would create a gap,
                // so v and everything above go dormant together.
                self.put_to_sleep_from(h);
                return;
            }
            let mut min_h = u32::MAX;
            for idx in self.net.first[vi]..self.net.first[vi + 1] {
                let a = self.net.arc_ids[idx];
                if self.net.cap[a as usize] > 0 {
                    let w = self.net.to[a as usize];
                    if self.is_awake(w) {
                        min_h = min_h.min(self.height[w as usize]);
                    }
                }
            }
            if min_h == u32::MAX {
                // No awake residual neighbour at all.
                self.put_to_sleep_single(v);
                return;
            }
            let new_h = (min_h + 1).min(self.max_h as u32);
            debug_assert!(new_h as usize > h);
            self.level_remove(v);
            self.height[vi] = new_h;
            self.level_insert(v);
            self.cur[vi] = 0;
            if new_h as usize >= self.max_h {
                return;
            }
            // Highest-label policy: re-queue and let the scheduler pick.
            let hh = new_h as usize;
            self.active[hh].push(v);
            if hh > self.highest {
                self.highest = hh;
            }
        }
    }

    /// Awake vertex with minimum height (the next sink), if any.
    fn min_awake(&self) -> Option<NodeId> {
        for h in 0..=self.max_h {
            if let Some(&v) = self.by_level[h].first() {
                return Some(v);
            }
        }
        None
    }
}

/// Computes the global minimum cut of `g` with the Hao–Orlin algorithm.
///
/// Requires n ≥ 2. For disconnected graphs the result is 0 with a connected
/// component as witness.
pub fn hao_orlin(g: &CsrGraph) -> HaoOrlinResult {
    let n = g.n();
    assert!(n >= 2, "minimum cut needs at least two vertices");
    let mut _sp = mincut_obs::span("flow/hao_orlin");
    _sp.arg("n", n);
    _sp.arg("m", g.m());
    let mut ho = Ho::new(g);

    // Source: vertex 0, lifted to level n.
    let s: NodeId = 0;
    ho.state[s as usize] = SOURCE;
    ho.height[s as usize] = n as u32;
    for v in 0..n as NodeId {
        if v != s {
            ho.level_insert(v);
        }
    }

    let mut best_value = EdgeWeight::MAX;
    let mut best_side: Vec<bool> = Vec::new();
    let mut t = ho.min_awake().expect("n >= 2");
    ho.saturate_out_arcs(s);
    let mut in_source = 1usize;

    while in_source < n {
        ho.phase(t);
        // Candidate cut: everything that can still reach t in the residual
        // network is on t's side; all arcs into that side are saturated so
        // its value is exactly excess(t) — but we recompute it from the
        // original weights, which makes the candidate *unconditionally*
        // a valid cut even if an implementation detail were off.
        let side = ho.net.reaches_sink_side(t);
        let value = g.cut_value(&side);
        debug_assert_eq!(
            value, ho.excess[t as usize],
            "phase cut must equal sink excess"
        );
        if value < best_value && side.iter().any(|&b| !b) {
            best_value = value;
            best_side = side;
        }

        // Merge t into the source side and pick the next sink.
        ho.level_remove(t);
        ho.state[t as usize] = SOURCE;
        in_source += 1;
        if in_source == n {
            break;
        }
        ho.saturate_out_arcs(t);
        match ho.min_awake() {
            Some(next) => t = next,
            None => {
                let woke = ho.wake_latest();
                debug_assert!(woke, "non-source vertices remain but none awake");
                t = ho.min_awake().expect("woken set is non-empty");
            }
        }
    }

    debug_assert!(best_value != EdgeWeight::MAX);
    HaoOrlinResult {
        value: best_value,
        side: best_side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mincut_graph::generators::known;

    fn check(g: &CsrGraph, expected: EdgeWeight) {
        let r = hao_orlin(g);
        assert_eq!(r.value, expected, "value mismatch");
        assert!(g.is_proper_cut(&r.side), "witness must be a proper cut");
        assert_eq!(g.cut_value(&r.side), expected, "witness value mismatch");
    }

    #[test]
    fn known_families() {
        check(&known::path_graph(7, 3).0, 3);
        check(&known::cycle_graph(9, 2).0, 4);
        check(&known::complete_graph(6, 1).0, 5);
        check(&known::star_graph(5, 4).0, 4);
        check(&known::grid_graph(3, 4, 2).0, 4);
        let (g, l) = known::two_communities(6, 5, 2, 3, 1);
        check(&g, l);
        let (g, l) = known::ring_of_cliques(4, 4, 2, 1);
        check(&g, l);
    }

    #[test]
    fn matches_brute_force_on_random_small_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for trial in 0..60 {
            let n = rng.gen_range(4..10);
            let extra = rng.gen_range(0..12);
            let mut edges = Vec::new();
            // Random connected base + extra random weighted edges.
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..6)));
            }
            for _ in 0..extra {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..6)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let expected = known::brute_force_mincut(&g);
            let got = hao_orlin(&g);
            assert_eq!(got.value, expected, "trial {trial}, graph {g:?}");
            assert_eq!(g.cut_value(&got.side), expected, "trial {trial} witness");
        }
    }

    #[test]
    fn disconnected_graph_reports_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 5), (2, 3, 5)]);
        let r = hao_orlin(&g);
        assert_eq!(r.value, 0);
        assert!(g.is_proper_cut(&r.side));
        assert_eq!(g.cut_value(&r.side), 0);
    }

    #[test]
    fn two_vertices() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 42)]);
        check(&g, 42);
    }
}
