//! # mincut-flow — maximum flow and flow-based global minimum cut
//!
//! The flow-based side of the paper's evaluation:
//!
//! * [`push_relabel`](crate::max_flow) — the Goldberg–Tarjan push-relabel
//!   maximum-flow algorithm (highest-label selection, gap heuristic, exact
//!   initial distance labels), operating on undirected
//!   [`mincut_graph::CsrGraph`]s;
//! * [`hao_orlin`] — the Hao–Orlin global minimum cut algorithm, which runs
//!   n−1 flow phases while *retaining* distance labels and parking
//!   irrelevant vertices in dormant sets. This is the Rust counterpart of
//!   the paper's comparator **HO-CGKLS** (the `ho` variant of Chekuri,
//!   Goldberg, Karger, Levine and Stein).
//!
//! Also exposes [`min_st_cut`], used by the test suites to validate the
//! connectivity lower bounds `q(e) ≤ λ(G, u, v)` that CAPFOREST certifies,
//! and [`dinic_max_flow`] / [`enumerate_min_st_sides`] — a conservation
//! max flow whose residual closed sets enumerate *every* minimum s-t cut
//! (the per-pair primitive behind the cactus subsystem of `mincut-core`).

mod dinic;
mod gomory_hu;
mod hao_orlin;
mod push_relabel;

pub mod residual;

pub use dinic::{dinic_max_flow, enumerate_min_st_sides};
pub use gomory_hu::GomoryHuTree;
pub use hao_orlin::{hao_orlin, HaoOrlinResult};
pub use push_relabel::{max_flow, min_st_cut, MaxFlowResult};
pub use residual::Residual;
