//! Residual network representation shared by push-relabel and Hao–Orlin.

use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

/// Residual network of an undirected graph.
///
/// Every undirected edge `{u, v}` with weight `c` becomes the arc pair
/// `2k: u→v` and `2k+1: v→u`, both with initial residual capacity `c`
/// (pushing `f` along one direction adds `f` to the other — the standard
/// undirected-flow encoding). `rev(a) = a ^ 1`.
pub struct Residual {
    /// Out-arc index: arcs of vertex `v` are `arc_ids[first[v]..first[v+1]]`.
    pub first: Vec<usize>,
    pub arc_ids: Vec<u32>,
    /// Arc head, indexed by arc id.
    pub to: Vec<NodeId>,
    /// Residual capacity, indexed by arc id (mutated by the algorithms).
    pub cap: Vec<EdgeWeight>,
    /// Original capacity, retained for flow extraction by downstream
    /// tooling and debugging sessions.
    #[allow(dead_code)]
    pub orig_cap: Vec<EdgeWeight>,
}

impl Residual {
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.n();
        let m = g.m();
        let mut to = vec![0 as NodeId; 2 * m];
        let mut cap = vec![0 as EdgeWeight; 2 * m];
        let mut deg = vec![0usize; n + 1];
        for (k, (u, v, w)) in g.edges().enumerate() {
            to[2 * k] = v;
            to[2 * k + 1] = u;
            cap[2 * k] = w;
            cap[2 * k + 1] = w;
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        let mut first = deg;
        for i in 0..n {
            first[i + 1] += first[i];
        }
        let mut cursor = first.clone();
        let mut arc_ids = vec![0u32; 2 * m];
        for (k, (u, v, _)) in g.edges().enumerate() {
            arc_ids[cursor[u as usize]] = (2 * k) as u32;
            cursor[u as usize] += 1;
            arc_ids[cursor[v as usize]] = (2 * k + 1) as u32;
            cursor[v as usize] += 1;
        }
        let orig_cap = cap.clone();
        Residual {
            first,
            arc_ids,
            to,
            cap,
            orig_cap,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.first.len() - 1
    }

    /// Arc ids leaving `v`.
    #[inline]
    pub fn out_arcs(&self, v: NodeId) -> &[u32] {
        &self.arc_ids[self.first[v as usize]..self.first[v as usize + 1]]
    }

    /// The side of all vertices that can *reach* `t` through residual arcs
    /// (reverse-residual BFS). `side[v] == true` means v is on t's side.
    pub fn reaches_sink_side(&self, t: NodeId) -> Vec<bool> {
        let n = self.n();
        let mut side = vec![false; n];
        side[t as usize] = true;
        let mut stack = vec![t];
        while let Some(u) = stack.pop() {
            // v reaches u iff the residual arc v→u has capacity; from u's
            // perspective that arc is the reverse of an out arc u→v.
            for &a in self.out_arcs(u) {
                let v = self.to[a as usize];
                if !side[v as usize] && self.cap[(a ^ 1) as usize] > 0 {
                    side[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        side
    }

    /// The side of all vertices reachable *from* `s` through residual arcs
    /// (forward BFS). `side[v] == true` means v is on s's side. The tight
    /// cut witness for preflows is [`Residual::reaches_sink_side`]; this
    /// forward variant is kept for flow decomposition tooling.
    #[allow(dead_code)]
    pub fn source_side(&self, s: NodeId) -> Vec<bool> {
        let n = self.n();
        let mut side = vec![false; n];
        side[s as usize] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &a in self.out_arcs(u) {
                let v = self.to[a as usize];
                if !side[v as usize] && self.cap[a as usize] > 0 {
                    side[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_pairing_and_adjacency() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 4), (1, 2, 5)]);
        let r = Residual::new(&g);
        assert_eq!(r.n(), 3);
        assert_eq!(r.to.len(), 4);
        // Vertex 1 has two out arcs, heads 0 and 2 in some order.
        let mut heads: Vec<NodeId> = r.out_arcs(1).iter().map(|&a| r.to[a as usize]).collect();
        heads.sort_unstable();
        assert_eq!(heads, vec![0, 2]);
        // Reverse arcs point back.
        for &a in r.out_arcs(1) {
            let head = r.to[a as usize];
            assert_eq!(r.to[(a ^ 1) as usize], {
                // reverse of 1→head is head→1
                1
            });
            let _ = head;
        }
    }

    #[test]
    fn sink_side_on_saturated_cut() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        let mut r = Residual::new(&g);
        // Saturate the 0→1 arc manually: cut {0} | {1,2}.
        for &a in r.out_arcs(0).to_vec().iter() {
            if r.to[a as usize] == 1 {
                r.cap[a as usize] = 0;
            }
        }
        let side = r.reaches_sink_side(2);
        assert_eq!(side, vec![false, true, true]);
    }
}
