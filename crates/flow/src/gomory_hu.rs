//! Gomory–Hu cut trees (Gusfield's algorithm).
//!
//! Gomory and Hu observed that all `n·(n−1)/2` pairwise minimum cuts of a
//! graph are represented by a single weighted tree computable with n−1
//! maximum-flow calls — the reduction that made global minimum cut a
//! flow problem for three decades (§2.2 of the paper: "this result by
//! Gomory and Hu was used to find better algorithms for global minimum
//! cut using improved maximum flow algorithms"). Hao–Orlin (this crate's
//! [`crate::hao_orlin`]) is the end point of that line; the tree remains
//! the right tool when *all-pairs* connectivity is needed.
//!
//! Gusfield's simplification avoids the contraction steps of the original
//! construction: all flows run on the input graph, and the tree is
//! rewired in place. The tree satisfies, for every pair `(u, v)`:
//! λ(G, u, v) = min weight on the tree path between u and v.

use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

use crate::push_relabel::max_flow;

/// A Gomory–Hu (cut-equivalent) tree.
#[derive(Clone, Debug)]
pub struct GomoryHuTree {
    /// Parent of every vertex (vertex 0 is the root, its entries unused).
    parent: Vec<NodeId>,
    /// Weight of the tree edge `(v, parent[v])` = λ(G, v, parent[v]).
    weight: Vec<EdgeWeight>,
    /// Depth of every vertex, for path-minimum queries.
    depth: Vec<u32>,
    /// Witness side of the overall lightest cut (global minimum).
    min_side: Vec<bool>,
}

impl GomoryHuTree {
    /// Builds the tree with n−1 push-relabel max-flow computations.
    /// Requires n ≥ 2.
    pub fn build(g: &CsrGraph) -> GomoryHuTree {
        let n = g.n();
        assert!(n >= 2, "cut tree needs at least two vertices");
        let mut parent = vec![0 as NodeId; n];
        let mut weight = vec![0 as EdgeWeight; n];
        let mut best = EdgeWeight::MAX;
        let mut min_side = vec![false; n];

        for i in 1..n as NodeId {
            let t = parent[i as usize];
            let r = max_flow(g, i, t);
            let side = r.min_cut_side(); // the side containing the source i
            weight[i as usize] = r.value;
            // Re-home later vertices that fell on i's side of the cut.
            for j in (i + 1)..n as NodeId {
                if side[j as usize] && parent[j as usize] == t {
                    parent[j as usize] = i;
                }
            }
            // Gusfield's tree rotation: if t's own parent is on i's side,
            // i takes t's place in the tree. (When t is the root, pt == t
            // sits on the sink side and the branch is skipped naturally.)
            let pt = parent[t as usize];
            if pt != t && side[pt as usize] {
                parent[i as usize] = pt;
                parent[t as usize] = i;
                weight[i as usize] = weight[t as usize];
                weight[t as usize] = r.value;
            }
            if r.value < best {
                best = r.value;
                min_side = side;
            }
        }

        // Depths for path queries.
        let mut depth = vec![u32::MAX; n];
        depth[0] = 0;
        for v in 0..n as NodeId {
            resolve_depth(v, &parent, &mut depth);
        }
        GomoryHuTree {
            parent,
            weight,
            depth,
            min_side,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// λ(G, u, v): minimum weight on the tree path between u and v.
    pub fn min_cut_between(&self, u: NodeId, v: NodeId) -> EdgeWeight {
        assert_ne!(u, v, "pairwise connectivity needs distinct vertices");
        let (mut a, mut b) = (u, v);
        let mut best = EdgeWeight::MAX;
        while a != b {
            if self.depth[a as usize] >= self.depth[b as usize] {
                best = best.min(self.weight[a as usize]);
                a = self.parent[a as usize];
            } else {
                best = best.min(self.weight[b as usize]);
                b = self.parent[b as usize];
            }
        }
        best
    }

    /// The global minimum cut: the lightest tree edge (Gomory–Hu
    /// property), with its witness side.
    pub fn global_min_cut(&self) -> (EdgeWeight, &[bool]) {
        let best = (1..self.n()).map(|v| self.weight[v]).min().expect("n >= 2");
        (best, &self.min_side)
    }

    /// Tree edges `(v, parent[v], λ(G, v, parent[v]))` for v ≠ root.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        (1..self.n() as NodeId).map(move |v| (v, self.parent[v as usize], self.weight[v as usize]))
    }
}

fn resolve_depth(v: NodeId, parent: &[NodeId], depth: &mut [u32]) -> u32 {
    if depth[v as usize] != u32::MAX {
        return depth[v as usize];
    }
    let d = resolve_depth(parent[v as usize], parent, depth) + 1;
    depth[v as usize] = d;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_relabel::min_st_cut;
    use mincut_graph::generators::known;

    fn assert_all_pairs(g: &CsrGraph) {
        let tree = GomoryHuTree::build(g);
        for u in 0..g.n() as NodeId {
            for v in 0..u {
                let expected = min_st_cut(g, u, v).0;
                assert_eq!(
                    tree.min_cut_between(u, v),
                    expected,
                    "pair ({u},{v}) in {g:?}"
                );
            }
        }
    }

    #[test]
    fn all_pairs_on_known_families() {
        assert_all_pairs(&known::path_graph(6, 3).0);
        assert_all_pairs(&known::cycle_graph(7, 2).0);
        assert_all_pairs(&known::star_graph(6, 4).0);
        assert_all_pairs(&known::complete_graph(6, 2).0);
        assert_all_pairs(&known::grid_graph(3, 3, 1).0);
        assert_all_pairs(&known::two_communities(4, 4, 2, 3, 1).0);
    }

    #[test]
    fn all_pairs_on_random_weighted_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2718);
        for _ in 0..20 {
            let n = rng.gen_range(3..9);
            let mut edges = Vec::new();
            for v in 1..n as NodeId {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..7)));
            }
            for _ in 0..rng.gen_range(0..10) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..7)));
                }
            }
            assert_all_pairs(&CsrGraph::from_edges(n, &edges));
        }
    }

    #[test]
    fn global_min_cut_matches_lightest_edge_and_witness() {
        let (g, l) = known::two_communities(5, 6, 2, 3, 1);
        let tree = GomoryHuTree::build(&g);
        let (value, side) = tree.global_min_cut();
        assert_eq!(value, l);
        assert_eq!(g.cut_value(side), l);
        assert!(g.is_proper_cut(side));
    }

    #[test]
    fn tree_has_n_minus_1_edges() {
        let (g, _) = known::grid_graph(4, 4, 2);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.edges().count(), g.n() - 1);
        // Every tree edge weight is a real pairwise min cut.
        for (u, v, w) in tree.edges() {
            assert_eq!(min_st_cut(&g, u, v).0, w);
        }
    }
}
