//! Dinic maximum flow plus enumeration of *every* minimum s-t cut.
//!
//! The push-relabel driver of this crate computes a maximum **preflow**
//! — excess parked above level n is never routed back to the source,
//! which is enough for the flow value and one tight cut witness, but its
//! residual network does not characterise the full min-cut family. The
//! cactus subsystem of `mincut-core` needs that family: a set `S ∋ s`,
//! `t ∉ S` is a minimum s-t cut **iff** no residual arc of a maximum
//! *flow* (with conservation) leaves `S` — the closed sets of the
//! residual reachability order. This module therefore carries a small
//! Dinic implementation (level graph + blocking flow, a genuine
//! circulation-free flow) and the closed-set enumeration on top of it:
//! SCC-condense the residual arcs, mark everything reachable from `s` as
//! mandatory and everything reaching `t` as forbidden, and walk the
//! ideals of the remaining DAG sinks-first. Every leaf of that walk is a
//! distinct minimum s-t cut, so the enumeration is output-sensitive.

use mincut_graph::{CsrGraph, EdgeWeight, NodeId};

use crate::residual::Residual;

/// Computes a maximum s-t **flow** (conservation holds everywhere) with
/// Dinic's algorithm and returns `(value, residual)`. The residual's
/// closed sets containing `s` but not `t` are exactly the minimum s-t
/// cuts — feed it to [`enumerate_min_st_sides`].
pub fn dinic_max_flow(g: &CsrGraph, s: NodeId, t: NodeId) -> (EdgeWeight, Residual) {
    assert_ne!(s, t, "source and sink must differ");
    assert!((s as usize) < g.n() && (t as usize) < g.n());
    let mut _sp = mincut_obs::span("flow/dinic");
    _sp.arg("n", g.n());
    _sp.arg("s", s);
    _sp.arg("t", t);
    let mut net = Residual::new(g);
    let n = net.n();
    let mut value: EdgeWeight = 0;
    let mut level = vec![u32::MAX; n];
    let mut iter = vec![0usize; n];
    let mut queue = std::collections::VecDeque::new();
    loop {
        // Level graph by BFS over residual arcs.
        level.fill(u32::MAX);
        level[s as usize] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &a in net.out_arcs(u) {
                let v = net.to[a as usize];
                if net.cap[a as usize] > 0 && level[v as usize] == u32::MAX {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[t as usize] == u32::MAX {
            return (value, net);
        }
        // Blocking flow by iterative DFS with current-arc pointers.
        iter.fill(0);
        loop {
            let pushed = augment(&mut net, s, t, EdgeWeight::MAX, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            value += pushed;
        }
    }
}

/// One DFS augmentation along the level graph; returns the pushed amount
/// (0 when `s` can no longer reach `t` at this level structure).
fn augment(
    net: &mut Residual,
    s: NodeId,
    t: NodeId,
    limit: EdgeWeight,
    level: &[u32],
    iter: &mut [usize],
) -> EdgeWeight {
    // Explicit stack of (vertex, bottleneck so far, arc taken to get here).
    let mut path: Vec<u32> = Vec::new(); // arc ids along the current path
    let mut v = s;
    let mut bottleneck = limit;
    loop {
        if v == t {
            // Apply the augmentation along the recorded path.
            for &a in &path {
                net.cap[a as usize] -= bottleneck;
                net.cap[(a ^ 1) as usize] += bottleneck;
            }
            return bottleneck;
        }
        let vi = v as usize;
        let arcs = net.first[vi + 1] - net.first[vi];
        let mut advanced = false;
        while iter[vi] < arcs {
            let a = net.arc_ids[net.first[vi] + iter[vi]];
            let w = net.to[a as usize];
            if net.cap[a as usize] > 0 && level[w as usize] == level[vi] + 1 {
                path.push(a);
                bottleneck = bottleneck.min(net.cap[a as usize]);
                v = w;
                advanced = true;
                break;
            }
            iter[vi] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat (or give up at the source).
        if v == s {
            return 0;
        }
        let a = path.pop().expect("non-source dead end has a path arc");
        // The arc into the dead end is exhausted for this phase.
        let tail = net.to[(a ^ 1) as usize];
        iter[tail as usize] += 1;
        v = tail;
        // Recompute the bottleneck of the shortened path.
        bottleneck = limit;
        for &b in &path {
            bottleneck = bottleneck.min(net.cap[b as usize]);
        }
    }
}

/// Enumerates every minimum s-t cut of the maximum flow whose residual
/// is `net`, as source sides (`side[s] == true`). Stops after
/// `max_cuts` sides and reports truncation via the second return value —
/// callers enumerating *global* minimum cuts pass the Dinitz–Karzanov–
/// Lomonosov bound n(n−1)/2 so truncation doubles as a theory check.
pub fn enumerate_min_st_sides(
    net: &Residual,
    s: NodeId,
    t: NodeId,
    max_cuts: usize,
) -> (Vec<Vec<bool>>, bool) {
    let n = net.n();
    let (comp_of, num_comps) = residual_sccs(net);
    // Tarjan numbers SCCs sinks-first: every residual arc u→v has
    // comp_of[u] >= comp_of[v]. Build the condensation's successor lists.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); num_comps];
    for u in 0..n as NodeId {
        for &a in net.out_arcs(u) {
            if net.cap[a as usize] > 0 {
                let (cu, cv) = (comp_of[u as usize], comp_of[net.to[a as usize] as usize]);
                if cu != cv {
                    succs[cu as usize].push(cv);
                }
            }
        }
    }
    for list in &mut succs {
        list.sort_unstable();
        list.dedup();
    }
    let cs = comp_of[s as usize];
    let ct = comp_of[t as usize];
    debug_assert_ne!(cs, ct, "a residual s→t path would contradict maximality");

    // Mandatory: everything residual-reachable from s (closure forces it
    // into every cut side). Forbidden: everything reaching t (closure
    // would drag t in). Free: the rest, decided by the ideal walk.
    let mut state = vec![CompState::Free; num_comps];
    mark_forward(&succs, cs, &mut state, CompState::In);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); num_comps];
    for (c, list) in succs.iter().enumerate() {
        for &d in list {
            preds[d as usize].push(c as u32);
        }
    }
    mark_forward(&preds, ct, &mut state, CompState::Out);
    let free: Vec<u32> = (0..num_comps as u32)
        .filter(|&c| state[c as usize] == CompState::Free)
        .collect();
    // `free` is ascending = sinks-first: successors are decided before
    // their predecessors, so the include-check below is local.

    let mut included = vec![false; num_comps];
    for (c, st) in state.iter().enumerate() {
        if *st == CompState::In {
            included[c] = true;
        }
    }
    let mut sides = Vec::new();
    let mut truncated = false;
    emit_ideals(
        &free,
        0,
        &succs,
        &mut included,
        &comp_of,
        n,
        max_cuts,
        &mut sides,
        &mut truncated,
    );
    (sides, truncated)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CompState {
    In,
    Out,
    Free,
}

fn mark_forward(adj: &[Vec<u32>], start: u32, state: &mut [CompState], tag: CompState) {
    let mut stack = vec![start];
    state[start as usize] = tag;
    while let Some(c) = stack.pop() {
        for &d in &adj[c as usize] {
            if state[d as usize] == CompState::Free {
                state[d as usize] = tag;
                stack.push(d);
            }
        }
    }
}

/// Sinks-first ideal walk: at index `i` the free component `free[i]` is
/// either excluded (always valid) or included (valid iff all of its free
/// successors — all decided already — are included). Every leaf is a
/// distinct closed set, so the tree size is O(#cuts × depth).
#[allow(clippy::too_many_arguments)]
fn emit_ideals(
    free: &[u32],
    i: usize,
    succs: &[Vec<u32>],
    included: &mut Vec<bool>,
    comp_of: &[u32],
    n: usize,
    max_cuts: usize,
    sides: &mut Vec<Vec<bool>>,
    truncated: &mut bool,
) {
    if *truncated {
        return;
    }
    if i == free.len() {
        if sides.len() >= max_cuts {
            *truncated = true;
            return;
        }
        let side: Vec<bool> = (0..n).map(|v| included[comp_of[v] as usize]).collect();
        sides.push(side);
        return;
    }
    let c = free[i] as usize;
    // Exclude c.
    emit_ideals(
        free,
        i + 1,
        succs,
        included,
        comp_of,
        n,
        max_cuts,
        sides,
        truncated,
    );
    // Include c if closure permits.
    let ok = succs[c].iter().all(|&d| included[d as usize]);
    if ok {
        included[c] = true;
        emit_ideals(
            free,
            i + 1,
            succs,
            included,
            comp_of,
            n,
            max_cuts,
            sides,
            truncated,
        );
        included[c] = false;
    }
}

/// Iterative Tarjan SCC over the positive-capacity residual arcs.
/// Components are numbered in completion order, i.e. sinks-first:
/// `comp_of[u] >= comp_of[v]` for every residual arc u→v.
fn residual_sccs(net: &Residual) -> (Vec<u32>, usize) {
    let n = net.n();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut comp_of = vec![UNSEEN; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut num_comps = 0u32;
    // Explicit DFS frames: (vertex, position in its out-arc list).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            if *pos == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let arcs = net.out_arcs(v);
            let mut descended = false;
            while *pos < arcs.len() {
                let a = arcs[*pos];
                *pos += 1;
                if net.cap[a as usize] == 0 {
                    continue;
                }
                let w = net.to[a as usize] as usize;
                if index[w] == UNSEEN {
                    frames.push((w as NodeId, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[vi] = low[vi].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished.
            if low[vi] == index[vi] {
                loop {
                    let w = stack.pop().expect("root still on stack");
                    on_stack[w as usize] = false;
                    comp_of[w as usize] = num_comps;
                    if w == v {
                        break;
                    }
                }
                num_comps += 1;
            }
            frames.pop();
            if let Some(&mut (p, _)) = frames.last_mut() {
                let pi = p as usize;
                low[pi] = low[pi].min(low[vi]);
            }
        }
    }
    (comp_of, num_comps as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_min_st_sides(g: &CsrGraph, s: NodeId, t: NodeId) -> (EdgeWeight, Vec<Vec<bool>>) {
        let n = g.n();
        let mut best = EdgeWeight::MAX;
        let mut sides = Vec::new();
        for mask in 0u32..(1 << n) {
            if (mask >> s) & 1 == 1 && (mask >> t) & 1 == 0 {
                let side: Vec<bool> = (0..n).map(|v| (mask >> v) & 1 == 1).collect();
                let value = g.cut_value(&side);
                match value.cmp(&best) {
                    std::cmp::Ordering::Less => {
                        best = value;
                        sides = vec![side];
                    }
                    std::cmp::Ordering::Equal => sides.push(side),
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        (best, sides)
    }

    fn sorted(mut sides: Vec<Vec<bool>>) -> Vec<Vec<bool>> {
        sides.sort();
        sides
    }

    #[test]
    fn dinic_matches_push_relabel_values() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 3, 9),
                (0, 2, 4),
                (2, 3, 4),
                (4, 5, 1),
                (0, 4, 9),
                (5, 3, 1),
            ],
        );
        let (value, _) = dinic_max_flow(&g, 0, 3);
        assert_eq!(value, crate::max_flow(&g, 0, 3).value);
        assert_eq!(value, 7);
    }

    #[test]
    fn enumeration_matches_brute_force_on_small_graphs() {
        type Case = (usize, Vec<(NodeId, NodeId, EdgeWeight)>);
        let cases: Vec<Case> = vec![
            // Path: every edge is a separate min cut family member.
            (4, vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)]),
            // Cycle: min s-t cuts are edge pairs separating s from t.
            (
                5,
                vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)],
            ),
            // Diamond with a chord.
            (
                4,
                vec![(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1)],
            ),
            // Weighted: a single tight bottleneck.
            (4, vec![(0, 1, 5), (1, 2, 2), (2, 3, 5)]),
        ];
        for (n, edges) in cases {
            let g = CsrGraph::from_edges(n, &edges);
            for s in 0..n as NodeId {
                for t in 0..n as NodeId {
                    if s == t {
                        continue;
                    }
                    let (want_value, want_sides) = brute_min_st_sides(&g, s, t);
                    let (value, net) = dinic_max_flow(&g, s, t);
                    assert_eq!(value, want_value, "value s={s} t={t}");
                    let (sides, truncated) = enumerate_min_st_sides(&net, s, t, 1 << 16);
                    assert!(!truncated);
                    assert_eq!(
                        sorted(sides),
                        sorted(want_sides),
                        "cut family s={s} t={t} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_reports_itself() {
        // A path has exactly 3 min 0-3 cuts; cap at 2.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let (value, net) = dinic_max_flow(&g, 0, 3);
        assert_eq!(value, 1);
        let (sides, truncated) = enumerate_min_st_sides(&net, 0, 3, 2);
        assert!(truncated);
        assert_eq!(sides.len(), 2);
    }
}
