//! Property tests for the flow subsystem: max-flow/min-cut duality
//! against a brute-force cut oracle, symmetry, monotonicity under
//! capacity increases, and Hao–Orlin against Stoer-style enumeration.

use mincut_flow::{hao_orlin, max_flow, min_st_cut, GomoryHuTree};
use mincut_graph::{CsrGraph, EdgeWeight, NodeId};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..9).prop_flat_map(|n| {
        let tree_w = proptest::collection::vec(1u64..8, n - 1);
        let extra =
            proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 1u64..8), 0..(2 * n));
        (Just(n), tree_w, extra).prop_map(|(n, tree_w, extra)| {
            let mut edges = Vec::new();
            for (v, w) in (1..n as NodeId).zip(tree_w) {
                edges.push((v / 2, v, w));
            }
            for (u, v, w) in extra {
                if u != v {
                    edges.push((u, v, w));
                }
            }
            CsrGraph::from_edges(n, &edges)
        })
    })
}

fn brute_force_st_cut(g: &CsrGraph, s: NodeId, t: NodeId) -> EdgeWeight {
    let n = g.n();
    let mut best = EdgeWeight::MAX;
    for mask in 0u32..(1 << n) {
        if (mask >> s) & 1 == 1 && (mask >> t) & 1 == 0 {
            let side: Vec<bool> = (0..n).map(|v| (mask >> v) & 1 == 1).collect();
            best = best.min(g.cut_value(&side));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn max_flow_equals_brute_force_min_cut(g in small_graph(), s_raw in 0u32..16, t_raw in 0u32..16) {
        let n = g.n() as NodeId;
        let s = s_raw % n;
        let t = t_raw % n;
        prop_assume!(s != t);
        let r = max_flow(&g, s, t);
        prop_assert_eq!(r.value, brute_force_st_cut(&g, s, t));
        // The witness is tight and separates s from t.
        let side = r.min_cut_side();
        prop_assert!(side[s as usize] && !side[t as usize]);
        prop_assert_eq!(g.cut_value(&side), r.value);
    }

    #[test]
    fn max_flow_is_symmetric(g in small_graph(), s_raw in 0u32..16, t_raw in 0u32..16) {
        let n = g.n() as NodeId;
        let s = s_raw % n;
        let t = t_raw % n;
        prop_assume!(s != t);
        // Undirected graphs: λ(s, t) = λ(t, s).
        prop_assert_eq!(max_flow(&g, s, t).value, max_flow(&g, t, s).value);
    }

    #[test]
    fn adding_an_edge_never_decreases_connectivity(
        g in small_graph(),
        s_raw in 0u32..16,
        t_raw in 0u32..16,
        extra_w in 1u64..5,
    ) {
        let n = g.n() as NodeId;
        let s = s_raw % n;
        let t = t_raw % n;
        prop_assume!(s != t);
        let before = max_flow(&g, s, t).value;
        // Add an s-t edge directly: connectivity rises by exactly its
        // weight (it crosses every s-t cut).
        let mut edges: Vec<_> = g.edges().collect();
        edges.push((s, t, extra_w));
        let g2 = CsrGraph::from_edges(g.n(), &edges);
        prop_assert_eq!(max_flow(&g2, s, t).value, before + extra_w);
    }

    #[test]
    fn hao_orlin_value_is_min_over_st_cuts_from_any_source(g in small_graph()) {
        // λ(G) = min over t ≠ 0 of λ(G, 0, t) — compute via flows and
        // compare against Hao–Orlin's single run.
        let n = g.n() as NodeId;
        let expected = (1..n)
            .map(|t| min_st_cut(&g, 0, t).0)
            .min()
            .expect("n >= 2");
        let ho = hao_orlin(&g);
        prop_assert_eq!(ho.value, expected);
        prop_assert_eq!(g.cut_value(&ho.side), ho.value);
    }

    #[test]
    fn gomory_hu_tree_is_flow_equivalent(g in small_graph()) {
        let tree = GomoryHuTree::build(&g);
        let n = g.n() as NodeId;
        for u in 0..n {
            for v in 0..u {
                prop_assert_eq!(
                    tree.min_cut_between(u, v),
                    min_st_cut(&g, u, v).0,
                    "pair ({}, {})", u, v
                );
            }
        }
    }
}
