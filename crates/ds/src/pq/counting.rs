//! Operation-counting priority-queue adaptor.
//!
//! Section 3.1.2 of the paper motivates the λ̂ cap by the *number of
//! priority-queue operations*: "In practice, many vertices reach priority
//! values much higher than λ̂ and perform many priority increases until
//! they reach their final value." This adaptor wraps any [`MaxPq`] and
//! counts pushes, raises and pops so the claim can be measured directly
//! (see the `ablation_pq_ops` binary of `mincut-bench`).
//!
//! Counters are accumulated in thread-local cells: algorithm entry points
//! construct their queues internally, so the counts are harvested out of
//! band via [`take_counters`] after the run. Each worker thread tallies
//! its own operations; sum across threads for parallel totals.

use std::cell::Cell;

use super::MaxPq;

thread_local! {
    static PUSHES: Cell<u64> = const { Cell::new(0) };
    static RAISES: Cell<u64> = const { Cell::new(0) };
    static POPS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PqCounters {
    pub pushes: u64,
    pub raises: u64,
    pub pops: u64,
}

impl PqCounters {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.pushes + self.raises + self.pops
    }
}

/// Returns the current thread's counters and resets them to zero.
pub fn take_counters() -> PqCounters {
    PqCounters {
        pushes: PUSHES.with(|c| c.replace(0)),
        raises: RAISES.with(|c| c.replace(0)),
        pops: POPS.with(|c| c.replace(0)),
    }
}

/// A [`MaxPq`] that forwards to `P` while tallying operations.
pub struct CountingPq<P> {
    inner: P,
}

impl<P: MaxPq> MaxPq for CountingPq<P> {
    fn new() -> Self {
        CountingPq { inner: P::new() }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        self.inner.reset(n, max_priority);
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        PUSHES.with(|c| c.set(c.get() + 1));
        self.inner.push(v, prio);
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        // A no-op raise (equal priority) is still an operation the
        // algorithm *attempted*; the paper's savings come from never
        // attempting it, which the λ̂ cap achieves upstream.
        RAISES.with(|c| c.set(c.get() + 1));
        self.inner.raise(v, prio);
    }

    #[inline]
    fn pop_max(&mut self) -> Option<(u32, u64)> {
        let r = self.inner.pop_max();
        if r.is_some() {
            POPS.with(|c| c.set(c.get() + 1));
        }
        r
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.inner.contains(v)
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.inner.priority(v)
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::BinaryHeapPq;

    #[test]
    fn counts_operations() {
        let _ = take_counters(); // clear any prior state on this thread
        let mut q: CountingPq<BinaryHeapPq> = CountingPq::new();
        q.reset(4, 100);
        q.push(0, 5);
        q.push(1, 7);
        q.raise(0, 9);
        assert_eq!(q.pop_max(), Some((0, 9)));
        assert_eq!(q.pop_max(), Some((1, 7)));
        assert_eq!(q.pop_max(), None);
        let c = take_counters();
        assert_eq!(
            c,
            PqCounters {
                pushes: 2,
                raises: 1,
                pops: 2
            }
        );
        assert_eq!(c.total(), 5);
        // Counters were reset by the take.
        assert_eq!(take_counters(), PqCounters::default());
    }
}
