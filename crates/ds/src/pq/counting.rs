//! Operation-counting priority-queue adaptor.
//!
//! Section 3.1.2 of the paper motivates the λ̂ cap by the *number of
//! priority-queue operations*: "In practice, many vertices reach priority
//! values much higher than λ̂ and perform many priority increases until
//! they reach their final value." This adaptor wraps any [`MaxPq`] and
//! counts pushes, raises and pops so the claim can be measured directly
//! (see the `ablation_pq_ops` binary of `mincut-bench`).
//!
//! Counters are plain struct fields bumped inline — no thread-local
//! access, no atomics — and are harvested through [`MaxPq::take_ops`],
//! which the uninstrumented queues implement as a zero-returning no-op.
//! When stats are off the instrumentation is therefore *zero-cost by
//! construction*: the scan entry points are generic over `P: MaxPq`, so
//! instantiating them with a bare queue compiles the counting away
//! entirely instead of paying an always-on thread-local increment per
//! operation (the previous design).

use super::{MaxPq, PqCounters};

/// A [`MaxPq`] that forwards to `P` while tallying operations in plain
/// struct fields. Harvest (and reset) the tallies with
/// [`MaxPq::take_ops`].
pub struct CountingPq<P> {
    inner: P,
    counters: PqCounters,
}

impl<P> CountingPq<P> {
    /// The tallies accumulated since construction / the last
    /// [`MaxPq::take_ops`], without resetting them.
    pub fn ops(&self) -> PqCounters {
        self.counters
    }
}

impl<P: MaxPq> MaxPq for CountingPq<P> {
    fn new() -> Self {
        CountingPq {
            inner: P::new(),
            counters: PqCounters::default(),
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        self.inner.reset(n, max_priority);
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        self.counters.pushes += 1;
        self.inner.push(v, prio);
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        // A no-op raise (equal priority) is still an operation the
        // algorithm *attempted*; the paper's savings come from never
        // attempting it, which the λ̂ cap achieves upstream.
        self.counters.raises += 1;
        self.inner.raise(v, prio);
    }

    #[inline]
    fn pop_max(&mut self) -> Option<(u32, u64)> {
        let r = self.inner.pop_max();
        if r.is_some() {
            self.counters.pops += 1;
        }
        r
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.inner.contains(v)
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.inner.priority(v)
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn take_ops(&mut self) -> PqCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::BinaryHeapPq;

    #[test]
    fn counts_operations() {
        let mut q: CountingPq<BinaryHeapPq> = CountingPq::new();
        q.reset(4, 100);
        q.push(0, 5);
        q.push(1, 7);
        q.raise(0, 9);
        assert_eq!(q.pop_max(), Some((0, 9)));
        assert_eq!(q.pop_max(), Some((1, 7)));
        assert_eq!(q.pop_max(), None);
        assert_eq!(
            q.ops(),
            PqCounters {
                pushes: 2,
                raises: 1,
                pops: 2
            }
        );
        let c = q.take_ops();
        assert_eq!(c.total(), 5);
        // Counters were reset by the take.
        assert_eq!(q.ops(), PqCounters::default());
        assert_eq!(q.take_ops(), PqCounters::default());
    }

    #[test]
    fn bare_queues_report_zero_ops() {
        let mut q = BinaryHeapPq::new();
        q.reset(2, 10);
        q.push(0, 1);
        let _ = q.pop_max();
        assert_eq!(q.take_ops(), PqCounters::default());
    }
}
