//! Flat intrusive bucket priority queue, FIFO buckets (the paper's
//! **BQueue**).

use super::{bucket_of, MaxPq, EPOCH_LIMIT, NONE};

/// Bucket max-priority queue with FIFO buckets on a flat intrusive layout.
///
/// Identical machinery to [`super::BStackPq`] — one doubly-linked list per
/// integer priority, links stored intrusively in a flat per-vertex array,
/// epoch-stamped membership and bucket heads so [`MaxPq::reset`] is O(1) —
/// except each bucket also tracks a *tail* and insertions append there, so
/// `pop_max` returns the *oldest* element of the highest non-empty bucket.
/// The CAPFOREST scan therefore behaves closer to a breadth-first search,
/// exploring vertices discovered earlier (closer to the source) first
/// (§3.1.3); the paper finds this variant scales best in the parallel
/// algorithm because the grown regions are rounder.
///
/// `raise` unlinks from the old bucket and appends to the new one in O(1);
/// the observable pop order is identical to the lazy-deletion
/// [`super::legacy::LegacyBQueuePq`] (pinned by the differential model
/// test in `tests/pq_model.rs`).
pub struct BQueuePq {
    /// `heads[b] = [head, tail]` of bucket `b`, valid iff
    /// `head_stamp[b] == epoch`; a valid `NONE` head is an emptied bucket.
    heads: Vec<[u32; 2]>,
    head_stamp: Vec<u32>,
    /// `links[v] = [next, prev]` within v's current bucket.
    links: Vec<[u32; 2]>,
    prio: Vec<u64>,
    /// `v` is queued iff `stamp[v] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    live: usize,
    top: usize,
    max_priority: u64,
}

impl MaxPq for BQueuePq {
    fn new() -> Self {
        BQueuePq {
            heads: Vec::new(),
            head_stamp: Vec::new(),
            links: Vec::new(),
            prio: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        if self.epoch >= EPOCH_LIMIT {
            self.head_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.heads.len() < nbuckets {
            self.heads.resize(nbuckets, [NONE, NONE]);
            self.head_stamp.resize(nbuckets, 0);
        }
        if self.links.len() < n {
            self.links.resize(n, [NONE, NONE]);
            self.prio.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(
            self.stamp[v as usize] != self.epoch,
            "push of vertex already queued"
        );
        self.stamp[v as usize] = self.epoch;
        self.live += 1;
        self.prio[v as usize] = prio;
        self.link_back(v, bucket_of(prio, self.max_priority));
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(
            self.stamp[v as usize] == self.epoch,
            "raise of vertex not in queue"
        );
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return; // before any unlink/relink work
        }
        self.unlink(v, old as usize);
        self.prio[v as usize] = prio;
        self.link_back(v, bucket_of(prio, self.max_priority));
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            let head = if self.head_stamp[self.top] == self.epoch {
                self.heads[self.top][0]
            } else {
                NONE
            };
            match head {
                NONE => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
                v => {
                    let next = self.links[v as usize][0];
                    self.heads[self.top][0] = next;
                    if next != NONE {
                        self.links[next as usize][1] = NONE;
                    } else {
                        self.heads[self.top][1] = NONE;
                    }
                    self.stamp[v as usize] = self.epoch - 1;
                    self.live -= 1;
                    return Some((v, self.prio[v as usize]));
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

impl BQueuePq {
    /// Appends `v` to the back of bucket `b` (FIFO).
    #[inline]
    fn link_back(&mut self, v: u32, b: usize) {
        let tail = if self.head_stamp[b] == self.epoch {
            self.heads[b][1]
        } else {
            self.head_stamp[b] = self.epoch;
            self.heads[b] = [NONE, NONE];
            NONE
        };
        self.links[v as usize] = [NONE, tail];
        if tail != NONE {
            self.links[tail as usize][0] = v;
        } else {
            self.heads[b][0] = v;
        }
        self.heads[b][1] = v;
        if b > self.top {
            self.top = b;
        }
    }

    /// Removes `v` from bucket `b` in O(1) via its intrusive links.
    #[inline]
    fn unlink(&mut self, v: u32, b: usize) {
        let [next, prev] = self.links[v as usize];
        if prev != NONE {
            self.links[prev as usize][0] = next;
        } else {
            debug_assert_eq!(self.heads[b][0], v);
            self.heads[b][0] = next;
        }
        if next != NONE {
            self.links[next as usize][1] = prev;
        } else {
            self.heads[b][1] = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_raises() {
        let mut q = BQueuePq::new();
        q.reset(3, 10);
        q.push(0, 3);
        q.push(1, 3);
        q.raise(0, 10); // 0 arrives in bucket 10 first
        q.raise(1, 10);
        assert_eq!(q.pop_max(), Some((0, 10)));
        assert_eq!(q.pop_max(), Some((1, 10)));
    }

    #[test]
    fn interleaved_pop_and_push() {
        let mut q = BQueuePq::new();
        q.reset(5, 4);
        q.push(0, 4);
        q.push(1, 4);
        assert_eq!(q.pop_max(), Some((0, 4)));
        q.push(2, 4);
        assert_eq!(q.pop_max(), Some((1, 4)));
        assert_eq!(q.pop_max(), Some((2, 4)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn unlink_head_middle_and_tail() {
        let mut q = BQueuePq::new();
        q.reset(6, 10);
        q.push(0, 2);
        q.push(1, 2);
        q.push(2, 2);
        q.push(3, 2); // bucket 2: 0 1 2 3
        q.raise(1, 5); // middle
        q.raise(0, 5); // head
        q.raise(3, 5); // tail
                       // bucket 5 FIFO: 1, 0, 3; bucket 2: 2
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((0, 5)));
        assert_eq!(q.pop_max(), Some((3, 5)));
        assert_eq!(q.pop_max(), Some((2, 2)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn epoch_reset_is_cheap_and_complete() {
        let mut q = BQueuePq::new();
        q.reset(8, 100);
        q.push(0, 50);
        q.push(1, 100);
        q.reset(8, 40);
        assert!(q.is_empty());
        assert!(!q.contains(0) && !q.contains(1));
        q.push(0, 40);
        assert_eq!(q.pop_max(), Some((0, 40)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn survives_epoch_wraparound() {
        let mut q = BQueuePq::new();
        q.reset(4, 5);
        q.push(0, 5);
        q.epoch = EPOCH_LIMIT;
        q.reset(4, 5);
        assert!(q.is_empty());
        q.push(0, 3);
        q.push(1, 5);
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((0, 3)));
    }
}
