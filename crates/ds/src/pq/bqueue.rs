//! Deque-backed bucket priority queue (the paper's **BQueue**).

use std::collections::VecDeque;

use super::MaxPq;

/// Bucket max-priority queue with FIFO buckets.
///
/// Identical to [`super::BStackPq`] except each bucket is a `VecDeque` and
/// `pop_max` returns the *oldest* element of the highest non-empty bucket.
/// The CAPFOREST scan therefore behaves closer to a breadth-first search,
/// exploring vertices discovered earlier (closer to the source) first
/// (§3.1.3). The paper finds this variant scales best in the parallel
/// algorithm because the grown regions are rounder.
pub struct BQueuePq {
    buckets: Vec<VecDeque<u32>>,
    prio: Vec<u64>,
    in_queue: Vec<bool>,
    live: usize,
    top: usize,
    max_priority: u64,
}

impl BQueuePq {
    #[inline]
    fn bucket_of(&self, prio: u64) -> usize {
        debug_assert!(
            prio <= self.max_priority,
            "priority {prio} exceeds bucket range {}",
            self.max_priority
        );
        prio as usize
    }
}

impl MaxPq for BQueuePq {
    fn new() -> Self {
        BQueuePq {
            buckets: Vec::new(),
            prio: Vec::new(),
            in_queue: Vec::new(),
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, VecDeque::new);
        }
        self.prio.clear();
        self.prio.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(!self.in_queue[v as usize], "push of vertex already queued");
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.in_queue[v as usize] = true;
        self.buckets[b].push_back(v);
        self.live += 1;
        if b > self.top {
            self.top = b;
        }
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(self.in_queue[v as usize], "raise of vertex not in queue");
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return;
        }
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.buckets[b].push_back(v); // old entry becomes stale
        if b > self.top {
            self.top = b;
        }
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            match self.buckets[self.top].pop_front() {
                Some(v) => {
                    let vi = v as usize;
                    if self.in_queue[vi] && self.prio[vi] as usize == self.top {
                        self.in_queue[vi] = false;
                        self.live -= 1;
                        return Some((v, self.prio[vi]));
                    }
                }
                None => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.in_queue[v as usize]
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_raises() {
        let mut q = BQueuePq::new();
        q.reset(3, 10);
        q.push(0, 3);
        q.push(1, 3);
        q.raise(0, 10); // 0 arrives in bucket 10 first
        q.raise(1, 10);
        assert_eq!(q.pop_max(), Some((0, 10)));
        assert_eq!(q.pop_max(), Some((1, 10)));
    }

    #[test]
    fn interleaved_pop_and_push() {
        let mut q = BQueuePq::new();
        q.reset(5, 4);
        q.push(0, 4);
        q.push(1, 4);
        assert_eq!(q.pop_max(), Some((0, 4)));
        q.push(2, 4);
        assert_eq!(q.pop_max(), Some((1, 4)));
        assert_eq!(q.pop_max(), Some((2, 4)));
        assert_eq!(q.pop_max(), None);
    }
}
