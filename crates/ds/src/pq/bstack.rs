//! Vector-backed bucket priority queue (the paper's **BStack**).

use super::MaxPq;

/// Bucket max-priority queue with LIFO buckets.
///
/// One bucket per integer priority in `[0, max_priority]`; each bucket is a
/// `Vec` treated as a stack. `pop_max` returns the *most recently inserted*
/// element of the highest non-empty bucket, so the CAPFOREST scan immediately
/// revisits the vertex whose priority it just raised and does not fully
/// explore local regions (§3.1.3).
///
/// Priority raises use *lazy deletion*: the old entry stays in its bucket and
/// is skipped when popped (recognised by a priority mismatch). Since
/// CAPFOREST raises each vertex at most once per incident edge, the total
/// number of stale entries is bounded by the number of scanned edges.
pub struct BStackPq {
    buckets: Vec<Vec<u32>>,
    /// Current priority per vertex (valid while `in_queue`).
    prio: Vec<u64>,
    in_queue: Vec<bool>,
    /// Number of live (non-stale, non-popped) entries.
    live: usize,
    /// Highest bucket that may contain a live entry.
    top: usize,
    max_priority: u64,
}

impl BStackPq {
    #[inline]
    fn bucket_of(&self, prio: u64) -> usize {
        debug_assert!(
            prio <= self.max_priority,
            "priority {prio} exceeds bucket range {}",
            self.max_priority
        );
        prio as usize
    }
}

impl MaxPq for BStackPq {
    fn new() -> Self {
        BStackPq {
            buckets: Vec::new(),
            prio: Vec::new(),
            in_queue: Vec::new(),
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        self.prio.clear();
        self.prio.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(!self.in_queue[v as usize], "push of vertex already queued");
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.in_queue[v as usize] = true;
        self.buckets[b].push(v);
        self.live += 1;
        if b > self.top {
            self.top = b;
        }
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(self.in_queue[v as usize], "raise of vertex not in queue");
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return;
        }
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.buckets[b].push(v); // old entry becomes stale
        if b > self.top {
            self.top = b;
        }
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            match self.buckets[self.top].pop() {
                Some(v) => {
                    let vi = v as usize;
                    if self.in_queue[vi] && self.prio[vi] as usize == self.top {
                        self.in_queue[vi] = false;
                        self.live -= 1;
                        return Some((v, self.prio[vi]));
                    }
                    // Stale entry (raised since insertion, or already popped).
                }
                None => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.in_queue[v as usize]
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_entries_are_skipped() {
        let mut q = BStackPq::new();
        q.reset(2, 10);
        q.push(0, 1);
        q.raise(0, 5);
        q.raise(0, 9);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_max(), Some((0, 9)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn top_pointer_recovers_after_drain() {
        let mut q = BStackPq::new();
        q.reset(4, 10);
        q.push(0, 10);
        q.push(1, 2);
        assert_eq!(q.pop_max(), Some((0, 10)));
        // Top must wander down to 2.
        assert_eq!(q.pop_max(), Some((1, 2)));
        // And back up on a new high push.
        q.push(2, 7);
        assert_eq!(q.pop_max(), Some((2, 7)));
    }

    #[test]
    fn zero_priority_supported() {
        let mut q = BStackPq::new();
        q.reset(1, 0);
        q.push(0, 0);
        assert_eq!(q.pop_max(), Some((0, 0)));
        assert_eq!(q.pop_max(), None);
    }
}
