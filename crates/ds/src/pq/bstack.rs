//! Flat intrusive bucket priority queue, LIFO buckets (the paper's
//! **BStack**).

use super::{bucket_of, MaxPq, EPOCH_LIMIT, NONE};

/// Bucket max-priority queue with LIFO buckets on a flat intrusive layout.
///
//  (Layout notes shared with `BQueuePq`; keep the two files in sync.)
/// One doubly-linked list per integer priority in `[0, max_priority]`,
/// stored *intrusively*: instead of a `Vec` per bucket, every vertex owns
/// a `[next, prev]` slot in one flat `links` array and each bucket is just
/// a head index. Membership, current priority and bucket heads are
/// validated by epoch stamps, so [`MaxPq::reset`] is O(1): it bumps the
/// epoch and every stale stamp silently invalidates — no O(n) zeroing, no
/// per-bucket clears, no reallocation once the arrays have grown to the
/// high-water mark.
///
/// `pop_max` returns the *most recently inserted* element of the highest
/// non-empty bucket, so the CAPFOREST scan immediately revisits the vertex
/// whose priority it just raised and does not fully explore local regions
/// (§3.1.3). `raise` unlinks the vertex from its old bucket and pushes it
/// onto the front of the new one in O(1) — true deletion, so buckets hold
/// only live entries and the pop loop never skips stale slots. The
/// observable pop order is identical to the lazy-deletion
/// [`super::legacy::LegacyBStackPq`] (pinned by the differential model
/// test in `tests/pq_model.rs`).
pub struct BStackPq {
    /// `heads[b]` is the head vertex of bucket `b`, valid iff
    /// `head_stamp[b] == epoch`; a valid `NONE` head is an emptied bucket.
    heads: Vec<u32>,
    head_stamp: Vec<u32>,
    /// `links[v] = [next, prev]` within v's current bucket.
    links: Vec<[u32; 2]>,
    /// Current priority per vertex (valid while queued).
    prio: Vec<u64>,
    /// `v` is queued iff `stamp[v] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    /// Number of queued entries.
    live: usize,
    /// Highest bucket that may be non-empty.
    top: usize,
    max_priority: u64,
}

impl MaxPq for BStackPq {
    fn new() -> Self {
        BStackPq {
            heads: Vec::new(),
            head_stamp: Vec::new(),
            links: Vec::new(),
            prio: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        if self.epoch >= EPOCH_LIMIT {
            // Epoch wrap: one full re-zero, then stamps restart. Stamps
            // are compared only for equality with the current epoch, so
            // after the wipe every slot is again "stale".
            self.head_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.heads.len() < nbuckets {
            self.heads.resize(nbuckets, NONE);
            self.head_stamp.resize(nbuckets, 0);
        }
        if self.links.len() < n {
            self.links.resize(n, [NONE, NONE]);
            self.prio.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(
            self.stamp[v as usize] != self.epoch,
            "push of vertex already queued"
        );
        self.stamp[v as usize] = self.epoch;
        self.live += 1;
        self.prio[v as usize] = prio;
        self.link_front(v, bucket_of(prio, self.max_priority));
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(
            self.stamp[v as usize] == self.epoch,
            "raise of vertex not in queue"
        );
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return; // before any unlink/relink work
        }
        self.unlink(v, old as usize);
        self.prio[v as usize] = prio;
        self.link_front(v, bucket_of(prio, self.max_priority));
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            let head = if self.head_stamp[self.top] == self.epoch {
                self.heads[self.top]
            } else {
                NONE
            };
            match head {
                NONE => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
                v => {
                    let next = self.links[v as usize][0];
                    self.heads[self.top] = next;
                    if next != NONE {
                        self.links[next as usize][1] = NONE;
                    }
                    // Un-stamp: epoch 0 never matches a current epoch.
                    self.stamp[v as usize] = self.epoch - 1;
                    self.live -= 1;
                    return Some((v, self.prio[v as usize]));
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

impl BStackPq {
    /// Pushes `v` onto the front of bucket `b` (LIFO).
    #[inline]
    fn link_front(&mut self, v: u32, b: usize) {
        let head = if self.head_stamp[b] == self.epoch {
            self.heads[b]
        } else {
            self.head_stamp[b] = self.epoch;
            NONE
        };
        self.links[v as usize] = [head, NONE];
        if head != NONE {
            self.links[head as usize][1] = v;
        }
        self.heads[b] = v;
        if b > self.top {
            self.top = b;
        }
    }

    /// Removes `v` from bucket `b` in O(1) via its intrusive links.
    #[inline]
    fn unlink(&mut self, v: u32, b: usize) {
        let [next, prev] = self.links[v as usize];
        if prev != NONE {
            self.links[prev as usize][0] = next;
        } else {
            debug_assert_eq!(self.heads[b], v);
            self.heads[b] = next;
        }
        if next != NONE {
            self.links[next as usize][1] = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raises_move_instead_of_going_stale() {
        let mut q = BStackPq::new();
        q.reset(2, 10);
        q.push(0, 1);
        q.raise(0, 5);
        q.raise(0, 9);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_max(), Some((0, 9)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn top_pointer_recovers_after_drain() {
        let mut q = BStackPq::new();
        q.reset(4, 10);
        q.push(0, 10);
        q.push(1, 2);
        assert_eq!(q.pop_max(), Some((0, 10)));
        // Top must wander down to 2.
        assert_eq!(q.pop_max(), Some((1, 2)));
        // And back up on a new high push.
        q.push(2, 7);
        assert_eq!(q.pop_max(), Some((2, 7)));
    }

    #[test]
    fn zero_priority_supported() {
        let mut q = BStackPq::new();
        q.reset(1, 0);
        q.push(0, 0);
        assert_eq!(q.pop_max(), Some((0, 0)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn unlink_middle_of_bucket() {
        let mut q = BStackPq::new();
        q.reset(4, 10);
        q.push(0, 3);
        q.push(1, 3);
        q.push(2, 3); // bucket 3 front-to-back: 2, 1, 0
        q.raise(1, 7); // unlink from the middle
        assert_eq!(q.pop_max(), Some((1, 7)));
        assert_eq!(q.pop_max(), Some((2, 3)));
        assert_eq!(q.pop_max(), Some((0, 3)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn epoch_reset_is_cheap_and_complete() {
        let mut q = BStackPq::new();
        q.reset(8, 100);
        q.push(0, 50);
        q.push(1, 100);
        // Reset without draining: everything must vanish.
        q.reset(8, 40);
        assert!(q.is_empty());
        assert!(!q.contains(0) && !q.contains(1));
        q.push(0, 40);
        assert_eq!(q.pop_max(), Some((0, 40)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn survives_epoch_wraparound() {
        let mut q = BStackPq::new();
        // Force the wrap path by faking an exhausted epoch counter.
        q.reset(4, 5);
        q.push(0, 5);
        q.epoch = EPOCH_LIMIT;
        q.reset(4, 5);
        assert!(q.is_empty());
        assert!(!q.contains(0));
        q.push(0, 3);
        q.push(1, 5);
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((0, 3)));
    }
}
