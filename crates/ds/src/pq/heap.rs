//! Addressable bottom-up binary max-heap (the paper's **Heap**).

use super::MaxPq;

const ABSENT: u32 = u32::MAX;

/// Addressable binary max-heap using the bottom-up deletion heuristic of
/// Wegener.
///
/// The heap is stored as an implicit binary tree in an array; a position
/// table makes every vertex addressable so priorities can be raised in
/// `O(log n)`. Deleting the maximum sifts the resulting hole all the way
/// down along the path of larger children and then sifts the displaced last
/// element up — on average this saves half of the comparisons of the
/// classical sift-down because the displaced element usually belongs near
/// the leaves.
///
/// Unlike the bucket queues this structure supports unbounded priorities and
/// is therefore the queue used by the plain NOI variant (NOI-HNSS) where
/// priorities are not capped at λ̂. Its `pop_max` tie-breaking favours
/// neither old nor new entries (§3.1.3: "a middle ground between the two
/// bucket priority queues").
pub struct BinaryHeapPq {
    /// Heap array of vertex ids; children of slot `i` are `2i+1`, `2i+2`.
    heap: Vec<u32>,
    /// Position of each vertex in `heap`, or `ABSENT`.
    pos: Vec<u32>,
    /// Priority of each vertex (valid while present).
    prio: Vec<u64>,
}

impl BinaryHeapPq {
    #[inline]
    fn key(&self, slot: usize) -> u64 {
        self.prio[self.heap[slot] as usize]
    }

    #[inline]
    fn place(&mut self, slot: usize, v: u32) {
        self.heap[slot] = v;
        self.pos[v as usize] = slot as u32;
    }

    /// Moves the vertex at `slot` towards the root while it beats its parent.
    fn sift_up(&mut self, mut slot: usize) {
        let v = self.heap[slot];
        let key = self.prio[v as usize];
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.key(parent) >= key {
                break;
            }
            let pv = self.heap[parent];
            self.place(slot, pv);
            slot = parent;
        }
        self.place(slot, v);
    }

    /// Bottom-up deletion of the root: sift the hole to a leaf along the
    /// larger children, drop the last element into the hole, sift it up.
    fn remove_root(&mut self) -> u32 {
        let root = self.heap[0];
        self.pos[root as usize] = ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if last == root {
            return root; // heap had exactly one element
        }
        let n = self.heap.len();
        let mut hole = 0usize;
        loop {
            let left = 2 * hole + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && self.key(right) > self.key(left) {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            self.place(hole, cv);
            hole = child;
        }
        self.place(hole, last);
        self.sift_up(hole);
        root
    }

    #[cfg(test)]
    fn assert_heap_property(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.key(parent) >= self.key(i),
                "heap property violated at slot {i}"
            );
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v as usize] as usize, i, "position table stale");
        }
    }
}

impl MaxPq for BinaryHeapPq {
    fn new() -> Self {
        BinaryHeapPq {
            heap: Vec::new(),
            pos: Vec::new(),
            prio: Vec::new(),
        }
    }

    fn reset(&mut self, n: usize, _max_priority: u64) {
        // `pos[v] != ABSENT` iff v is in `heap`, so clearing only the
        // still-queued entries restores the all-ABSENT invariant in
        // O(len) instead of re-zeroing all n slots; `prio` is only read
        // while present and needs no clearing at all.
        for &v in &self.heap {
            self.pos[v as usize] = ABSENT;
        }
        self.heap.clear();
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
            self.prio.resize(n, 0);
        }
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert_eq!(
            self.pos[v as usize], ABSENT,
            "push of vertex already queued"
        );
        self.prio[v as usize] = prio;
        let slot = self.heap.len();
        self.heap.push(v);
        self.pos[v as usize] = slot as u32;
        self.sift_up(slot);
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        let slot = self.pos[v as usize];
        debug_assert_ne!(slot, ABSENT, "raise of vertex not in queue");
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return;
        }
        self.prio[v as usize] = prio;
        self.sift_up(slot as usize);
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.heap.is_empty() {
            return None;
        }
        let v = self.remove_root();
        Some((v, self.prio[v as usize]))
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_property_maintained_through_mixed_ops() {
        let mut q = BinaryHeapPq::new();
        q.reset(64, u64::MAX);
        // Deterministic pseudo-random mix.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut present = [false; 64];
        let mut maxkey = vec![0u64; 64];
        for step in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as usize % 64;
            match step % 3 {
                0 | 1 => {
                    let p = maxkey[v].saturating_add(x % 1000);
                    if present[v] {
                        q.raise(v as u32, p);
                    } else {
                        q.push(v as u32, p);
                        present[v] = true;
                    }
                    maxkey[v] = p;
                }
                _ => {
                    if let Some((w, _)) = q.pop_max() {
                        present[w as usize] = false;
                    }
                }
            }
            q.assert_heap_property();
        }
        // Drain and verify monotone non-increasing priorities.
        let mut last = u64::MAX;
        while let Some((_, p)) = q.pop_max() {
            assert!(p <= last);
            last = p;
            q.assert_heap_property();
        }
    }

    #[test]
    fn pop_returns_global_max() {
        let mut q = BinaryHeapPq::new();
        q.reset(10, u64::MAX);
        for (v, p) in [(0u32, 5u64), (1, 17), (2, 3), (3, 17), (4, 1)] {
            q.push(v, p);
        }
        let (v1, p1) = q.pop_max().unwrap();
        assert_eq!(p1, 17);
        let (v2, p2) = q.pop_max().unwrap();
        assert_eq!(p2, 17);
        assert_ne!(v1, v2);
        assert_eq!(q.pop_max().unwrap().1, 5);
    }

    #[test]
    fn unbounded_priorities() {
        let mut q = BinaryHeapPq::new();
        q.reset(3, u64::MAX);
        q.push(0, u64::MAX - 1);
        q.push(1, u64::MAX);
        q.push(2, 0);
        assert_eq!(q.pop_max(), Some((1, u64::MAX)));
        assert_eq!(q.pop_max(), Some((0, u64::MAX - 1)));
        assert_eq!(q.pop_max(), Some((2, 0)));
    }
}
