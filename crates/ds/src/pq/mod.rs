//! Addressable max-priority queues for the CAPFOREST scan.
//!
//! The algorithm of Nagamochi, Ono and Ibaraki repeatedly pops the vertex
//! most strongly connected to the already-scanned region and raises the
//! priorities of its neighbours. The paper (§3.1.3) shows that because many
//! vertices share the maximum priority in practice, the *tie-breaking policy*
//! of the queue changes which edges become contractible, and the queue's
//! constant factors dominate the running time. Three implementations are
//! therefore provided:
//!
//! * [`BStackPq`] — bucket array, LIFO within a bucket. The scan immediately
//!   revisits the vertex whose priority was just raised, behaving
//!   depth-first-like.
//! * [`BQueuePq`] — bucket array, FIFO within a bucket. The scan explores
//!   older discoveries first, behaving breadth-first-like; the paper finds
//!   this is the best parallel variant.
//! * [`BinaryHeapPq`] — addressable binary heap with Wegener's bottom-up
//!   deletion heuristic; a neutral middle ground and the only option when
//!   priorities are unbounded (plain NOI without the λ̂ cap).
//!
//! # Flat intrusive layout
//!
//! Because the queue constants dominate the scan, the two bucket queues are
//! built for cache behaviour rather than convenience:
//!
//! * **No per-bucket containers.** A bucket is a doubly-linked list whose
//!   links live *intrusively* in one flat per-vertex `[next, prev]` array;
//!   the bucket array itself is just head (and, for FIFO, tail) indices.
//!   One allocation for all links, one for all bucket heads — no
//!   `Vec<Vec<_>>` pointer-chasing, no per-bucket reallocation churn.
//! * **O(1) raise.** A priority raise unlinks the vertex from its old
//!   bucket and relinks it into the new one; buckets contain only live
//!   entries and `pop_max` never skips stale slots. (The pre-rewrite
//!   lazy-deletion queues are preserved in [`legacy`] as the measurement
//!   baseline of the `hotpath` bench; the observable pop order is
//!   identical, which `tests/pq_model.rs` pins differentially.)
//! * **Epoch-stamped `reset`.** Vertex membership, priorities and bucket
//!   heads are validated against an epoch counter, so [`MaxPq::reset`]
//!   only bumps the epoch and grows arrays to a new high-water mark:
//!   reuse across CAPFOREST passes is O(changed), not O(n + buckets)
//!   re-zeroing. [`BinaryHeapPq::reset`] likewise clears only the
//!   positions of entries still queued.
//!
//! Priorities in CAPFOREST only ever *increase* (they accumulate edge
//! weights), which every queue enforces with a uniform monotonicity debug
//! assertion, and an equal-priority `raise` returns before touching any
//! bucket or heap state.

mod bqueue;
mod bstack;
mod counting;
mod heap;
pub mod legacy;

pub use bqueue::BQueuePq;
pub use bstack::BStackPq;
pub use counting::CountingPq;
pub use heap::BinaryHeapPq;
pub use legacy::{LegacyBQueuePq, LegacyBStackPq};

/// Sentinel index for "no vertex" in the intrusive link arrays.
pub(crate) const NONE: u32 = u32::MAX;

/// Epochs at or above this trigger a full stamp wipe on the next `reset`
/// instead of a plain increment, so stamps can never collide across an
/// epoch-counter wrap.
pub(crate) const EPOCH_LIMIT: u32 = u32::MAX - 1;

/// Bucket index of a priority, shared by both bucket queues.
#[inline]
pub(crate) fn bucket_of(prio: u64, max_priority: u64) -> usize {
    debug_assert!(
        prio <= max_priority,
        "priority {prio} exceeds bucket range {max_priority}"
    );
    prio as usize
}

/// Snapshot of the operation counters of a [`CountingPq`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PqCounters {
    pub pushes: u64,
    pub raises: u64,
    pub pops: u64,
}

impl PqCounters {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.pushes + self.raises + self.pops
    }

    /// Accumulates another snapshot (e.g. across parallel workers).
    pub fn add(&mut self, other: PqCounters) {
        self.pushes += other.pushes;
        self.raises += other.raises;
        self.pops += other.pops;
    }
}

/// Addressable max-priority queue over vertices `0..n` with `u64` priorities.
///
/// Contract required by CAPFOREST (and enforced with debug assertions):
/// * a vertex is pushed at most once between `reset`s and never re-pushed
///   after being popped;
/// * `raise` is monotone: the new priority is ≥ the current one.
pub trait MaxPq {
    /// Creates an empty queue. Call [`MaxPq::reset`] before use.
    fn new() -> Self;

    /// Prepares the queue for vertices `0..n` with priorities in
    /// `[0, max_priority]`. Reuses allocations where possible: the
    /// intrusive bucket queues and the heap make this O(changed) via
    /// epoch stamps / live-entry clears. Bucket-based queues address
    /// `max_priority + 1` buckets; heap-based queues ignore
    /// `max_priority`.
    fn reset(&mut self, n: usize, max_priority: u64);

    /// Inserts vertex `v` (not currently in the queue) with priority `prio`.
    fn push(&mut self, v: u32, prio: u64);

    /// Raises the priority of `v` (currently in the queue) to `prio`.
    /// A no-op if `prio` equals the current priority.
    fn raise(&mut self, v: u32, prio: u64);

    /// Pops a vertex with maximum priority, or `None` if empty.
    fn pop_max(&mut self) -> Option<(u32, u64)>;

    /// Whether `v` is currently in the queue.
    fn contains(&self, v: u32) -> bool;

    /// Current priority of `v`; unspecified if `v` is not in the queue.
    fn priority(&self, v: u32) -> u64;

    /// Number of elements currently in the queue.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `v` if absent, raises it otherwise. The workhorse of the
    /// CAPFOREST inner loop.
    #[inline]
    fn push_or_raise(&mut self, v: u32, prio: u64) {
        if self.contains(v) {
            self.raise(v, prio);
        } else {
            self.push(v, prio);
        }
    }

    /// Returns and resets the accumulated operation tallies. Only
    /// [`CountingPq`] actually counts; the bare queues return zeros, so
    /// generic scan drivers can harvest unconditionally at zero cost.
    #[inline]
    fn take_ops(&mut self) -> PqCounters {
        PqCounters::default()
    }
}

/// Runtime selector for the three queue implementations, mirroring the
/// algorithm variants benchmarked in the paper (NOIλ̂-BStack, NOIλ̂-BQueue,
/// NOIλ̂-Heap and the ParCut equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PqKind {
    /// Bucket queue, LIFO buckets.
    BStack,
    /// Bucket queue, FIFO buckets.
    BQueue,
    /// Addressable bottom-up binary heap.
    Heap,
}

impl PqKind {
    /// All variants, in the order used by the experiment harness.
    pub const ALL: [PqKind; 3] = [PqKind::BStack, PqKind::BQueue, PqKind::Heap];
}

impl std::fmt::Display for PqKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqKind::BStack => write!(f, "BStack"),
            PqKind::BQueue => write!(f, "BQueue"),
            PqKind::Heap => write!(f, "Heap"),
        }
    }
}

impl std::str::FromStr for PqKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bstack" => Ok(PqKind::BStack),
            "bqueue" => Ok(PqKind::BQueue),
            "heap" => Ok(PqKind::Heap),
            other => Err(format!("unknown priority queue kind: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_basic<P: MaxPq>() {
        let mut q = P::new();
        q.reset(8, 100);
        assert!(q.is_empty());
        q.push(3, 10);
        q.push(5, 40);
        q.push(1, 25);
        assert_eq!(q.len(), 3);
        assert!(q.contains(5));
        assert!(!q.contains(0));
        assert_eq!(q.pop_max(), Some((5, 40)));
        assert!(!q.contains(5));
        q.raise(3, 30);
        assert_eq!(q.pop_max(), Some((3, 30)));
        assert_eq!(q.pop_max(), Some((1, 25)));
        assert_eq!(q.pop_max(), None);
    }

    fn exercise_raise_to_same<P: MaxPq>() {
        let mut q = P::new();
        q.reset(4, 50);
        q.push(0, 7);
        q.raise(0, 7); // no-op
        assert_eq!(q.pop_max(), Some((0, 7)));
        assert!(q.is_empty());
    }

    fn exercise_reset_reuse<P: MaxPq>() {
        let mut q = P::new();
        q.reset(4, 10);
        q.push(0, 1);
        q.push(1, 2);
        let _ = q.pop_max();
        // Reset with different sizes; stale state must be gone.
        q.reset(6, 20);
        assert!(q.is_empty());
        assert!(!q.contains(0));
        assert!(!q.contains(1));
        q.push(5, 20);
        q.push(0, 0);
        assert_eq!(q.pop_max(), Some((5, 20)));
        assert_eq!(q.pop_max(), Some((0, 0)));
        assert_eq!(q.pop_max(), None);
    }

    fn exercise_many_raises<P: MaxPq>() {
        let mut q = P::new();
        q.reset(3, 1000);
        q.push(0, 0);
        q.push(1, 1);
        q.push(2, 2);
        for p in (10..=1000).step_by(10) {
            q.raise(0, p);
        }
        assert_eq!(q.priority(0), 1000);
        assert_eq!(q.pop_max(), Some((0, 1000)));
        assert_eq!(q.pop_max(), Some((2, 2)));
        assert_eq!(q.pop_max(), Some((1, 1)));
    }

    fn exercise_all<P: MaxPq>() {
        exercise_basic::<P>();
        exercise_raise_to_same::<P>();
        exercise_reset_reuse::<P>();
        exercise_many_raises::<P>();
    }

    #[test]
    fn bstack_basic() {
        exercise_all::<BStackPq>();
    }

    #[test]
    fn bqueue_basic() {
        exercise_all::<BQueuePq>();
    }

    #[test]
    fn heap_basic() {
        exercise_all::<BinaryHeapPq>();
    }

    #[test]
    fn legacy_queues_basic() {
        exercise_all::<LegacyBStackPq>();
        exercise_all::<LegacyBQueuePq>();
    }

    fn exercise_lifo_within_bucket<P: MaxPq>() {
        let mut q = P::new();
        q.reset(4, 5);
        q.push(0, 5);
        q.push(1, 5);
        q.push(2, 5);
        // LIFO: the most recently pushed max element pops first.
        assert_eq!(q.pop_max(), Some((2, 5)));
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((0, 5)));
    }

    #[test]
    fn bstack_is_lifo_within_bucket() {
        exercise_lifo_within_bucket::<BStackPq>();
        exercise_lifo_within_bucket::<LegacyBStackPq>();
    }

    fn exercise_fifo_within_bucket<P: MaxPq>() {
        let mut q = P::new();
        q.reset(4, 5);
        q.push(0, 5);
        q.push(1, 5);
        q.push(2, 5);
        // FIFO: the oldest max element pops first.
        assert_eq!(q.pop_max(), Some((0, 5)));
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((2, 5)));
    }

    #[test]
    fn bqueue_is_fifo_within_bucket() {
        exercise_fifo_within_bucket::<BQueuePq>();
        exercise_fifo_within_bucket::<LegacyBQueuePq>();
    }

    #[test]
    fn bstack_revisits_raised_vertex_first() {
        // The paper: BStack "will always next visit the element whose
        // priority it just increased".
        let mut q = BStackPq::new();
        q.reset(4, 10);
        q.push(0, 10);
        q.push(1, 10);
        q.raise(0, 10); // no-op, but even a real raise must come out first
        q.raise(1, 10);
        q.push(2, 4);
        q.raise(2, 10);
        assert_eq!(q.pop_max(), Some((2, 10)));
    }

    #[test]
    fn pqkind_parse_roundtrip() {
        for k in PqKind::ALL {
            let s = k.to_string();
            assert_eq!(s.parse::<PqKind>().unwrap(), k);
        }
        assert!("nope".parse::<PqKind>().is_err());
    }
}
