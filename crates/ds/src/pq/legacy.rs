//! The pre-intrusive bucket queues, frozen as a measurement baseline.
//!
//! These are the original `Vec<Vec<u32>>` / `Vec<VecDeque<u32>>` bucket
//! queues the workspace shipped before the cache-conscious rewrite:
//! one heap allocation *per bucket*, `reset` clears every bucket and
//! re-zeroes the full `prio`/`in_queue` arrays (O(n + buckets) per
//! CAPFOREST pass), and `raise` leaves a stale entry behind (lazy
//! deletion). They are kept verbatim so the `hotpath` bench bin of
//! `mincut-bench` can measure the rewrite against the real old code,
//! and so the differential model tests in `tests/pq_model.rs` can pin
//! the new queues' observable pop order to the old one. Do not use them
//! in solvers.

use std::collections::VecDeque;

use super::MaxPq;

/// The original Vec-of-Vecs **BStack** (LIFO buckets, lazy deletion).
pub struct LegacyBStackPq {
    buckets: Vec<Vec<u32>>,
    prio: Vec<u64>,
    in_queue: Vec<bool>,
    live: usize,
    top: usize,
    max_priority: u64,
}

impl LegacyBStackPq {
    #[inline]
    fn bucket_of(&self, prio: u64) -> usize {
        debug_assert!(
            prio <= self.max_priority,
            "priority {prio} exceeds bucket range {}",
            self.max_priority
        );
        prio as usize
    }
}

impl MaxPq for LegacyBStackPq {
    fn new() -> Self {
        LegacyBStackPq {
            buckets: Vec::new(),
            prio: Vec::new(),
            in_queue: Vec::new(),
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        self.prio.clear();
        self.prio.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(!self.in_queue[v as usize], "push of vertex already queued");
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.in_queue[v as usize] = true;
        self.buckets[b].push(v);
        self.live += 1;
        if b > self.top {
            self.top = b;
        }
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(self.in_queue[v as usize], "raise of vertex not in queue");
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return;
        }
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.buckets[b].push(v); // old entry becomes stale
        if b > self.top {
            self.top = b;
        }
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            match self.buckets[self.top].pop() {
                Some(v) => {
                    let vi = v as usize;
                    if self.in_queue[vi] && self.prio[vi] as usize == self.top {
                        self.in_queue[vi] = false;
                        self.live -= 1;
                        return Some((v, self.prio[vi]));
                    }
                    // Stale entry (raised since insertion, or already popped).
                }
                None => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.in_queue[v as usize]
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

/// The original deque-backed **BQueue** (FIFO buckets, lazy deletion).
pub struct LegacyBQueuePq {
    buckets: Vec<VecDeque<u32>>,
    prio: Vec<u64>,
    in_queue: Vec<bool>,
    live: usize,
    top: usize,
    max_priority: u64,
}

impl LegacyBQueuePq {
    #[inline]
    fn bucket_of(&self, prio: u64) -> usize {
        debug_assert!(
            prio <= self.max_priority,
            "priority {prio} exceeds bucket range {}",
            self.max_priority
        );
        prio as usize
    }
}

impl MaxPq for LegacyBQueuePq {
    fn new() -> Self {
        LegacyBQueuePq {
            buckets: Vec::new(),
            prio: Vec::new(),
            in_queue: Vec::new(),
            live: 0,
            top: 0,
            max_priority: 0,
        }
    }

    fn reset(&mut self, n: usize, max_priority: u64) {
        let nbuckets = (max_priority as usize).saturating_add(1);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, VecDeque::new);
        }
        self.prio.clear();
        self.prio.resize(n, 0);
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.live = 0;
        self.top = 0;
        self.max_priority = max_priority;
    }

    #[inline]
    fn push(&mut self, v: u32, prio: u64) {
        debug_assert!(!self.in_queue[v as usize], "push of vertex already queued");
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.in_queue[v as usize] = true;
        self.buckets[b].push_back(v);
        self.live += 1;
        if b > self.top {
            self.top = b;
        }
    }

    #[inline]
    fn raise(&mut self, v: u32, prio: u64) {
        debug_assert!(self.in_queue[v as usize], "raise of vertex not in queue");
        let old = self.prio[v as usize];
        debug_assert!(prio >= old, "raise must be monotone ({prio} < {old})");
        if prio == old {
            return;
        }
        let b = self.bucket_of(prio);
        self.prio[v as usize] = prio;
        self.buckets[b].push_back(v); // old entry becomes stale
        if b > self.top {
            self.top = b;
        }
    }

    fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            match self.buckets[self.top].pop_front() {
                Some(v) => {
                    let vi = v as usize;
                    if self.in_queue[vi] && self.prio[vi] as usize == self.top {
                        self.in_queue[vi] = false;
                        self.live -= 1;
                        return Some((v, self.prio[vi]));
                    }
                }
                None => {
                    debug_assert!(self.top > 0, "live count says non-empty");
                    self.top -= 1;
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.in_queue[v as usize]
    }

    #[inline]
    fn priority(&self, v: u32) -> u64 {
        self.prio[v as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}
