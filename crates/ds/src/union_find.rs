//! Sequential and wait-free concurrent union-find.
//!
//! CAPFOREST does not contract edges eagerly; it *marks* them by uniting
//! their endpoints in a union-find structure, and a postprocessing step
//! collapses each block into one vertex (§3.2: "this does not modify the
//! graph, it just remembers which nodes to collapse"). The parallel
//! CAPFOREST (Algorithm 1) shares one union-find instance between all
//! workers, which is sound because `union` is commutative — the paper's
//! Lemma 3.2(1). The concurrent variant follows the wait-free construction
//! of Anderson and Woll (STOC'91): CAS-linked roots with path halving.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Sequential union-find with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    count: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            count: n,
        }
    }

    /// Re-initialises to `n` singleton sets, reusing the existing
    /// allocations (the CAPFOREST scan scratch resets one instance per
    /// pass instead of allocating a fresh structure).
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.count = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Representative of the set containing `x` (path halving).
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            if gp == p {
                return p;
            }
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no halving); useful when `&mut self` is unavailable.
    #[inline]
    pub fn find_const(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Unites the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return false;
        }
        if self.rank[ra as usize] < self.rank[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Builds a dense relabelling `vertex -> block id in [0, count)`.
    ///
    /// Returns `(mapping, number_of_blocks)`. Block ids are assigned in order
    /// of first appearance, so vertex 0's block is always 0.
    pub fn dense_labels(&mut self) -> (Vec<u32>, usize) {
        let mut labels = Vec::new();
        let blocks = self.dense_labels_into(&mut labels);
        (labels, blocks)
    }

    /// [`UnionFind::dense_labels`] into a caller-owned buffer (cleared,
    /// refilled, no other allocation), so round loops reuse one buffer
    /// across contractions; returns the number of distinct blocks.
    ///
    /// The buffer doubles as the root → label table: a root's output slot
    /// *is* its block label, so it can be assigned the moment any member
    /// appears — no second scratch array needed.
    pub fn dense_labels_into(&mut self, labels: &mut Vec<u32>) -> usize {
        let n = self.parent.len();
        const UNSET: u32 = u32::MAX;
        labels.clear();
        labels.resize(n, UNSET);
        let mut next = 0u32;
        for v in 0..n as u32 {
            let r = self.find(v);
            if labels[r as usize] == UNSET {
                labels[r as usize] = next;
                next += 1;
            }
            labels[v as usize] = labels[r as usize];
        }
        next as usize
    }
}

/// Wait-free concurrent union-find (Anderson–Woll) shared by the parallel
/// CAPFOREST workers.
///
/// * `find` uses path halving with benign-racy CAS shortcuts;
/// * `union` links the root with smaller rank under the larger, tie-broken
///   by id so concurrent links cannot form a cycle;
/// * ranks are updated with relaxed atomics — a lost rank update only
///   affects balance, never correctness.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
    rank: Vec<AtomicU32>,
    count: AtomicUsize,
}

impl ConcurrentUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            rank: (0..n).map(|_| AtomicU32::new(0)).collect(),
            count: AtomicUsize::new(n),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets (exact once all workers have quiesced).
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Representative of the set containing `x` at some point during the
    /// call (linearizable per Anderson–Woll).
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path halving; failure is benign (someone else compressed).
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Unites the sets of `a` and `b`; returns `true` if this call performed
    /// the link.
    pub fn union(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return false;
            }
            let rank_a = self.rank[ra as usize].load(Ordering::Relaxed);
            let rank_b = self.rank[rb as usize].load(Ordering::Relaxed);
            // Total order on (rank, id): link the smaller under the larger.
            let (child, parent, parent_rank, child_rank) = if (rank_a, ra) < (rank_b, rb) {
                (ra, rb, rank_b, rank_a)
            } else {
                (rb, ra, rank_a, rank_b)
            };
            if self.parent[child as usize]
                .compare_exchange(child, parent, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                if parent_rank == child_rank {
                    // Benign race: a lost increment only worsens balance.
                    let _ = self.rank[parent as usize].compare_exchange(
                        parent_rank,
                        parent_rank + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                self.count.fetch_sub(1, Ordering::AcqRel);
                return true;
            }
            // Someone linked `child` elsewhere in the meantime; retry.
        }
    }

    /// Whether `a` and `b` are in the same set (stable only once writers
    /// have quiesced, which is how the algorithm uses it).
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // `ra` might have been linked away between the two finds.
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Snapshots into a sequential [`UnionFind`]-style dense relabelling.
    ///
    /// Must only be called after all concurrent writers have finished.
    pub fn dense_labels(&self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        const UNSET: u32 = u32::MAX;
        let mut root_label = vec![UNSET; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            let r = self.find(v);
            if root_label[r as usize] == UNSET {
                root_label[r as usize] = next;
                next += 1;
            }
            labels[v as usize] = root_label[r as usize];
        }
        (labels, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 3));
        assert!(uf.union(1, 4));
        assert!(uf.same(0, 3));
        assert_eq!(uf.count(), 2);
    }

    #[test]
    fn sequential_dense_labels() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(4, 5);
        let (labels, k) = uf.dense_labels();
        assert_eq!(k, 4);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_eq!(labels[0], 0); // first-appearance order
        assert!(labels.iter().all(|&l| (l as usize) < k));
    }

    #[test]
    fn concurrent_matches_sequential_single_thread() {
        let cuf = ConcurrentUnionFind::new(8);
        let mut suf = UnionFind::new(8);
        let pairs = [(0, 1), (2, 3), (1, 2), (5, 6), (6, 7), (0, 3)];
        for &(a, b) in &pairs {
            assert_eq!(cuf.union(a, b), suf.union(a, b));
        }
        assert_eq!(cuf.count(), suf.count());
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(cuf.same(a, b), suf.same(a, b), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn concurrent_parallel_unions_form_correct_partition() {
        // 4 threads union disjoint chains that interlock; the final partition
        // must be exactly {0..n} mod 4 chains joined into one big block.
        let n = 4000u32;
        let cuf = ConcurrentUnionFind::new(n as usize);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cuf = &cuf;
                s.spawn(move || {
                    // Each thread unions i with i+4 over its residue class...
                    let mut i = t;
                    while i + 4 < n {
                        cuf.union(i, i + 4);
                        i += 4;
                    }
                    // ...and stitches the classes together at the start.
                    cuf.union(t, (t + 1) % 4);
                });
            }
        });
        assert_eq!(cuf.count(), 1);
        let (labels, k) = cuf.dense_labels();
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn concurrent_counts_under_contention() {
        // All threads union the same pairs; each union must be counted once.
        let n = 512u32;
        let cuf = ConcurrentUnionFind::new(n as usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cuf = &cuf;
                s.spawn(move || {
                    for i in 0..n - 1 {
                        cuf.union(i, i + 1);
                    }
                });
            }
        });
        assert_eq!(cuf.count(), 1);
    }
}
