//! A fast, non-cryptographic hasher (the "Fx" multiply-rotate hash used by
//! rustc and Firefox), implemented locally so the workspace does not need an
//! extra dependency for its hot hash-table loops.
//!
//! HashDoS resistance is irrelevant here: keys are graph-internal vertex and
//! edge identifiers, never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher; very fast for small integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// FNV-1a offset basis: the canonical start value for [`fnv1a_bytes`].
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a state. Stable across runs,
/// platforms and processes — unlike [`FxHasher`] whose sole contract is
/// in-process table distribution — so this is the hash for persistent
/// identities (graph fingerprints, cache keys). Start from
/// [`FNV1A_OFFSET`] and chain calls to hash multi-part keys.
#[inline]
pub fn fnv1a_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = (state ^ b as u64).wrapping_mul(FNV1A_PRIME);
    }
    state
}

/// [`fnv1a_bytes`] over one little-endian `u64` word.
#[inline]
pub fn fnv1a_u64(state: u64, word: u64) -> u64 {
    fnv1a_bytes(state, &word.to_le_bytes())
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `std::collections::HashMap` pre-configured with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `std::collections::HashSet` pre-configured with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((3u32, 4u32)), hash_one((3u32, 4u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that the mixer is live.
        let h: Vec<u64> = (0u64..64).map(hash_one).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "64 distinct small keys must not collide");
    }

    #[test]
    fn byte_stream_matches_padding_behaviour() {
        // write() must consume trailing partial words.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths zero-padded differently is fine; we only require
        // that identical byte strings hash identically.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
        let _ = b.finish();
    }

    #[test]
    fn fx_hashmap_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }
}
