//! Shared warn-once parsing for the `SMC_*` environment knobs.
//!
//! Three knobs steer the stack from the environment — `SMC_SCALE`
//! (bench instance sizes), `SMC_SIMD` (kernel tier pinning) and
//! `SMC_TRACE` (span collection) — and all of them follow the same
//! contract:
//!
//! * the variable is read once per call site (callers cache the result
//!   in a `OnceLock` when process-wide stability matters);
//! * matching is ASCII case-insensitive;
//! * an unset or empty variable silently selects the default;
//! * an unrecognized value warns to stderr **once per knob per
//!   process** — `warning: unrecognized <NAME> value <v> (expected
//!   <choices>); using <fallback>` — and then selects the default, so a
//!   typo'd knob cannot silently burn a full-scale bench session *and*
//!   cannot spam a per-solve loop.
//!
//! Before this module each knob hand-rolled the contract (one
//! `std::sync::Once` in `mincut-bench`, one `OnceLock` in `simd`), and
//! the copies had already drifted on case sensitivity and empty-value
//! handling. Every knob now routes through [`env_knob`].

use std::sync::{Mutex, OnceLock};

/// Knob names that have already warned about an unrecognized value.
fn warned() -> &'static Mutex<Vec<String>> {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Reads the environment knob `name` and parses it with `parse`, which
/// receives the value lowercased and returns `None` for unrecognized
/// spellings. Unset, empty, or non-UTF-8 values yield `default`
/// silently; unrecognized values warn once per knob (naming `expected`,
/// the accepted spellings, and `fallback`, the human name of the
/// default) and yield `default`.
pub fn env_knob<T>(
    name: &str,
    expected: &str,
    fallback: &str,
    default: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    if raw.is_empty() {
        return default;
    }
    match parse(&raw.to_ascii_lowercase()) {
        Some(v) => v,
        None => {
            let mut seen = warned().lock().unwrap_or_else(|p| p.into_inner());
            if !seen.iter().any(|n| n == name) {
                seen.push(name.to_string());
                eprintln!(
                    "warning: unrecognized {name} value {raw:?} (expected {expected}); \
                     using {fallback}"
                );
            }
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; keep the knob tests in one #[test]
    // so the harness cannot interleave them.
    #[test]
    fn knob_contract() {
        // Unset → default, parse not consulted.
        std::env::remove_var("SMC_TEST_KNOB");
        assert_eq!(
            env_knob("SMC_TEST_KNOB", "a|b", "a", 0, |_| panic!("consulted")),
            0
        );

        // Empty → default, silently.
        std::env::set_var("SMC_TEST_KNOB", "");
        assert_eq!(
            env_knob("SMC_TEST_KNOB", "a|b", "a", 0, |_| panic!("consulted")),
            0
        );

        // Recognized values arrive lowercased.
        std::env::set_var("SMC_TEST_KNOB", "B");
        let got = env_knob("SMC_TEST_KNOB", "a|b", "a", 0, |v| {
            assert_eq!(v, "b");
            Some(2)
        });
        assert_eq!(got, 2);

        // Unrecognized → default (the warning is once-per-knob and goes
        // to stderr; repeated calls stay silent and still default).
        std::env::set_var("SMC_TEST_KNOB", "bogus");
        for _ in 0..3 {
            assert_eq!(env_knob("SMC_TEST_KNOB", "a|b", "a", 7, |_| None), 7);
        }

        std::env::remove_var("SMC_TEST_KNOB");
    }
}
