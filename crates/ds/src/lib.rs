//! # mincut-ds — data structures for shared-memory minimum cut
//!
//! This crate provides the data-structure substrate used by the exact
//! minimum-cut algorithms of the companion crate `mincut-core`, reproducing
//! the components described in *"Shared-memory Exact Minimum Cuts"*
//! (Henzinger, Noe, Schulz; IPDPS 2019):
//!
//! * three addressable max-priority queues whose choice drives the scan order
//!   of the CAPFOREST routine (§3.1.3 of the paper):
//!   [`pq::BStackPq`] (bucket array, LIFO within bucket),
//!   [`pq::BQueuePq`] (bucket array, FIFO within bucket) and
//!   [`pq::BinaryHeapPq`] (addressable bottom-up binary heap);
//! * a sequential [`UnionFind`] and a wait-free [`ConcurrentUnionFind`]
//!   (Anderson & Woll style) used by the parallel CAPFOREST (Algorithm 1)
//!   to mark contractible edges from many threads;
//! * a sharded concurrent hash map [`ShardedMap`] used by parallel graph
//!   contraction (§3.2) to aggregate the weights of parallel edges;
//! * a fast non-cryptographic hasher ([`hash::FxHasher`]) so the hot
//!   contraction loops do not pay SipHash costs.
//!
//! All structures are allocation-conscious: the bucket queues live on flat
//! intrusive arrays with epoch-stamped O(1) [`pq::MaxPq::reset`], so one
//! queue instance serves every CAPFOREST pass of a solve without clearing
//! or reallocating (see the `pq` module docs for the layout).

pub mod env_knob;
pub mod hash;
pub mod pq;
mod sharded_map;
pub mod simd;
mod union_find;

pub use env_knob::env_knob;
pub use sharded_map::{pack_edge, unpack_edge, ShardedMap};
pub use union_find::{ConcurrentUnionFind, UnionFind};

/// Convenience re-export of the priority-queue trait and implementations.
pub use pq::{BQueuePq, BStackPq, BinaryHeapPq, CountingPq, MaxPq, PqCounters, PqKind};
