//! Sharded concurrent hash map for parallel graph contraction.
//!
//! Section 3.2 of the paper builds the contracted graph with a concurrent
//! hash table (they use the folklore growing table of Maier, Sanders and
//! Dementiev): every edge of the old graph is hashed by the pair of block
//! ids of its endpoints and its weight is added to the accumulated weight of
//! the corresponding contracted edge. We implement the same functionality
//! with a fixed set of lock-striped shards — simpler, dependency-free and
//! adequate because the key universe (contracted edges) is known to be no
//! larger than the old edge set.

use std::hash::{BuildHasher, Hash};

use parking_lot::Mutex;

use crate::hash::{FxBuildHasher, FxHashMap};

/// A concurrent hash map split into `2^shard_bits` independently locked
/// shards. Writers touching different shards never contend.
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<FxHashMap<K, V>>]>,
    hasher: FxBuildHasher,
    mask: u64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with `2^shard_bits` shards (clamped to `[1, 16]` bits).
    pub fn new(shard_bits: u32) -> Self {
        let bits = shard_bits.clamp(0, 16);
        let n = 1usize << bits;
        let shards = (0..n)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedMap {
            shards,
            hasher: FxBuildHasher::default(),
            mask: (n - 1) as u64,
        }
    }

    /// Creates a map sized for roughly `expected` entries: enough shards
    /// that a default of 8 threads rarely collide.
    pub fn with_expected_len(expected: usize) -> Self {
        let bits = match expected {
            0..=1024 => 3,
            1025..=65536 => 6,
            _ => 8,
        };
        Self::new(bits)
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) & self.mask) as usize
    }

    /// Number of entries across all shards (takes all locks; O(#shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Inserts `value` or combines it into an existing entry with `merge`.
    pub fn merge_insert(&self, key: K, value: V, merge: impl FnOnce(&mut V, V)) {
        let shard = self.shard_of(&key);
        let mut guard = self.shards[shard].lock();
        match guard.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), value),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }

    /// Returns a clone of the value stored for `key`.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let shard = self.shard_of(key);
        self.shards[shard].lock().get(key).cloned()
    }

    /// Removes and returns the entry stored for `key` (the service's
    /// cut cache reclaims epoch-orphaned dynamic-graph results this way).
    pub fn remove(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        self.shards[shard].lock().remove(key)
    }

    /// Drains the map into a vector of entries (single-threaded epilogue).
    pub fn drain_into_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains the map into a caller-owned vector, appending entries. The
    /// shards keep their allocated capacity, so a map that is drained and
    /// refilled repeatedly (the contraction engine's round loop) stops
    /// allocating once warm.
    pub fn drain_into(&self, out: &mut Vec<(K, V)>) {
        for s in self.shards.iter() {
            let mut guard = s.lock();
            out.reserve(guard.len());
            out.extend(guard.drain());
        }
    }

    /// Removes every entry, keeping shard capacity for reuse.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }

    /// Visits every entry (shard by shard, holding one lock at a time).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            let guard = s.lock();
            for (k, v) in guard.iter() {
                f(k, v);
            }
        }
    }

    /// Number of shards (for tests and tuning).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl ShardedMap<u64, u64> {
    /// Specialised accumulate for the contraction use case: adds `w` to the
    /// weight stored under the packed edge key.
    #[inline]
    pub fn add_weight(&self, key: u64, w: u64) {
        self.merge_insert(key, w, |acc, w| *acc += w);
    }
}

/// Packs an unordered vertex pair into a single `u64` key (smaller id in the
/// high half so keys sort like `(min, max)` pairs).
#[inline]
pub fn pack_edge(u: u32, v: u32) -> u64 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    ((lo as u64) << 32) | hi as u64
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_insert_accumulates() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(2);
        m.add_weight(7, 3);
        m.add_weight(7, 4);
        m.add_weight(8, 1);
        assert_eq!(m.get_cloned(&7), Some(7));
        assert_eq!(m.get_cloned(&8), Some(1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (u, v) in [(0u32, 0u32), (1, 2), (2, 1), (u32::MAX, 5)] {
            let key = pack_edge(u, v);
            let (lo, hi) = unpack_edge(key);
            assert_eq!((lo, hi), (u.min(v), u.max(v)));
        }
    }

    #[test]
    fn concurrent_accumulation_is_exact() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(4);
        let keys = 97u64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        m.add_weight(i % keys, 1);
                    }
                });
            }
        });
        let mut total = 0;
        m.for_each(|_, &v| total += v);
        assert_eq!(total, 4 * 10_000);
        // Every key gets either floor or ceil of its share.
        m.for_each(|&k, &v| {
            let expected = (0..10_000u64).filter(|i| i % keys == k).count() as u64 * 4;
            assert_eq!(v, expected);
        });
    }

    #[test]
    fn drain_empties_map() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(1);
        m.add_weight(1, 1);
        m.add_weight(2, 2);
        let mut v = m.drain_into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![(1, 1), (2, 2)]);
        assert!(m.is_empty());
    }
}
