//! SIMD micro-kernels for the scan/tally/contract hot loops.
//!
//! # Why a kernel layer
//!
//! The cache-conscious rewrite (see the `hotpath` bench) left the per-arc
//! inner loops scalar and latency-bound: weighted-degree accumulation
//! over the CSR weight stream, label-propagation tallies gathering
//! labels through an index indirection, and the LSD radix histogram of
//! the sort-based contraction path. Those loops vectorize — but the
//! surrounding algorithms pin *bit-identical* results (λ identity and
//! PQ-op-stream identity are hard-asserted by the `hotpath` bench), so
//! every kernel here is written as a pure data-layout transformation of
//! its scalar twin: integer sums reassociate losslessly, gathers are
//! load hoists, and histogram counts are commutative. The scalar
//! reference implementation of every kernel ships alongside the vector
//! paths and the property tests in `tests/simd_kernels.rs` pin
//! bit-identity across tiers for every length class (empty, single
//! element, sub-lane, and non-multiple-of-lane-width tails).
//!
//! # Runtime detection strategy
//!
//! Kernels are compiled for three tiers and selected **at runtime** — the
//! build stays portable (`cargo build` with no `-C target-cpu`), one
//! binary serves every x86_64, and non-x86 targets fall back to scalar
//! at zero cost:
//!
//! | tier     | requirement                         | used for                    |
//! |----------|-------------------------------------|-----------------------------|
//! | `Scalar` | none (portable reference)           | always available            |
//! | `Sse2`   | x86_64 (SSE2 is baseline)           | 2×u64 sums, 4×u32 gathers (batched bounds check, lane-peeled loads), 4×u64 digit extraction |
//! | `Avx2`   | `is_x86_feature_detected!("avx2")`  | 4×u64 sums, 8×u32 gathers, 4×u64 digit extraction |
//!
//! Detection runs once and is cached in a [`OnceLock`]; the per-call
//! dispatch is one relaxed atomic load (the [`force_tier`] override) plus
//! a cached enum compare — nanoseconds against kernels that run over
//! whole arc streams. `#[target_feature(enable = ...)]`-annotated
//! functions are only ever called behind the matching detection check,
//! which is what makes the `unsafe` blocks sound.
//!
//! # The `SMC_SIMD` knob
//!
//! `SMC_SIMD=off|scalar|native` (default `native`) pins the tier from the
//! environment so CI can A/B both paths with the same binary: `off` and
//! `scalar` both select the scalar reference kernels (they are synonyms —
//! the kernels are bit-identical by contract, so there is nothing weaker
//! than `scalar` to fall back to), `native` selects the best detected
//! tier. Unrecognized values warn to stderr once and fall back to
//! `native`. The environment is read once (process-wide); tests that need
//! to A/B tiers in-process use [`force_tier`] instead, which takes
//! precedence over the environment and is clamped to the detected
//! capability (forcing `Avx2` on a non-AVX2 machine silently degrades to
//! the best available tier rather than faulting).
//!
//! Which tier actually ran is reported per-solve in
//! `SolverStats::simd_tier` (see `mincut-core`).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Kernel implementation tiers, ordered weakest to strongest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar reference — the semantics every other tier must
    /// reproduce bit for bit.
    Scalar,
    /// x86_64 SSE2 (baseline on every x86_64, so detection never fails).
    Sse2,
    /// x86_64 AVX2 (runtime-detected).
    Avx2,
}

impl SimdTier {
    /// Stable lowercase name (`scalar` / `sse2` / `avx2`) for reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// All tiers this build knows about (property tests iterate this).
    pub const ALL: [SimdTier; 3] = [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2];
}

/// The best tier the running CPU supports (ignoring `SMC_SIMD`).
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        SimdTier::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Tier selected by the `SMC_SIMD` environment knob (cached on first
/// use; unrecognized values warn to stderr once — via the shared
/// [`crate::env_knob`] contract — and mean `native`).
fn env_tier() -> SimdTier {
    static ENV: OnceLock<SimdTier> = OnceLock::new();
    *ENV.get_or_init(|| {
        crate::env_knob(
            "SMC_SIMD",
            "off|scalar|native",
            "native",
            detected_tier(),
            |v| match v {
                "off" | "scalar" => Some(SimdTier::Scalar),
                "native" => Some(detected_tier()),
                _ => None,
            },
        )
    })
}

/// In-process tier override: 0 = none (use `SMC_SIMD`/detection), else
/// `tier as u8 + 1`. Takes precedence over the environment because the
/// environment is cached process-wide — `set_var`-based A/B would
/// silently test one tier twice.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces the kernel tier for this process (pass `None` to restore the
/// `SMC_SIMD`/detection default). The request is clamped to
/// [`detected_tier`], so forcing a tier the CPU lacks degrades instead
/// of faulting. Intended for tests and benches that A/B tiers
/// in-process; not thread-scoped, so don't race it from parallel tests
/// that assert on [`active_tier`].
pub fn force_tier(tier: Option<SimdTier>) {
    let v = match tier {
        None => 0,
        Some(t) => t.min(detected_tier()) as u8 + 1,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The tier every dispatching kernel in this module currently runs at:
/// the [`force_tier`] override if set, else the `SMC_SIMD` selection.
#[inline]
pub fn active_tier() -> SimdTier {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdTier::Scalar,
        2 => SimdTier::Sse2,
        3 => SimdTier::Avx2,
        _ => env_tier(),
    }
}

// ---------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------

/// Software-prefetches the cache line holding `slice[i]` into all cache
/// levels (`prefetcht0`). Out-of-range indices are ignored — prefetch is
/// a hint, never a fault. No-op on non-x86_64.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < slice.len() {
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(i) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, i);
    }
}

// ---------------------------------------------------------------------
// sum_u64 — weighted-degree accumulation over the CSR weight stream
// ---------------------------------------------------------------------

/// Wrapping sum of a `u64` slice. Integer addition is associative and
/// commutative, so every tier returns the bit-identical result of the
/// scalar reference regardless of lane order.
#[inline]
pub fn sum_u64(xs: &[u64]) -> u64 {
    sum_u64_with_tier(active_tier(), xs)
}

/// [`sum_u64`] at an explicit tier (property tests drive all tiers).
#[inline]
pub fn sum_u64_with_tier(tier: SimdTier, xs: &[u64]) -> u64 {
    // Below two full vector widths the scalar loop wins: no lane setup,
    // no horizontal reduction.
    #[cfg(target_arch = "x86_64")]
    if xs.len() >= 8 {
        match tier {
            SimdTier::Avx2 => return unsafe { x86::sum_u64_avx2(xs) },
            SimdTier::Sse2 => return unsafe { x86::sum_u64_sse2(xs) },
            SimdTier::Scalar => {}
        }
    }
    let _ = tier;
    sum_u64_scalar(xs)
}

/// The scalar reference.
#[inline]
pub fn sum_u64_scalar(xs: &[u64]) -> u64 {
    xs.iter().fold(0u64, |a, &x| a.wrapping_add(x))
}

// ---------------------------------------------------------------------
// gather_u32 — label gather through an index indirection (LP tallies)
// ---------------------------------------------------------------------

/// `out[i] = table[idx[i] as usize]` for every `i`. Panics if any index
/// is out of range (the vector path validates the whole batch up front
/// with a lane-wise max, so unlike the scalar loop no partial output is
/// written before the panic — callers treat `out` as garbage on panic).
///
/// `out.len()` must equal `idx.len()`.
#[inline]
pub fn gather_u32(table: &[u32], idx: &[u32], out: &mut [u32]) {
    gather_u32_with_tier(active_tier(), table, idx, out)
}

/// [`gather_u32`] at an explicit tier.
#[inline]
pub fn gather_u32_with_tier(tier: SimdTier, table: &[u32], idx: &[u32], out: &mut [u32]) {
    assert_eq!(idx.len(), out.len(), "gather_u32: idx/out length mismatch");
    #[cfg(target_arch = "x86_64")]
    if tier >= SimdTier::Sse2 && idx.len() >= 16 {
        // Bounds: one vectorized max over the batch, then the gathers
        // run unchecked. This is what makes the SSE2 tier worthwhile
        // even without a gather instruction: the batch is validated
        // once instead of bounds-checking every table access.
        let max = unsafe {
            match tier {
                SimdTier::Avx2 => x86::max_u32_avx2(idx),
                _ => x86::max_u32_sse2(idx),
            }
        };
        assert!(
            (max as usize) < table.len(),
            "gather_u32: index {max} out of range for table of {}",
            table.len()
        );
        unsafe {
            match tier {
                SimdTier::Avx2 => x86::gather_u32_avx2(table, idx, out),
                _ => x86::gather_u32_sse2(table, idx, out),
            }
        }
        return;
    }
    let _ = tier;
    gather_u32_scalar(table, idx, out);
}

/// The scalar reference.
#[inline]
pub fn gather_u32_scalar(table: &[u32], idx: &[u32], out: &mut [u32]) {
    for (o, &i) in out.iter_mut().zip(idx) {
        *o = table[i as usize];
    }
}

// ---------------------------------------------------------------------
// radix_histogram16 — counting pass of the LSD radix sort (contraction)
// ---------------------------------------------------------------------

/// Number of buckets of one 16-bit radix digit.
pub const RADIX16: usize = 1 << 16;

/// Adds the histogram of the 16-bit digit `(key >> shift) & 0xFFFF` of
/// every `(key, weight)` pair into `hist` (length [`RADIX16`], not
/// cleared here — callers zero it between passes). Counts are sums, so
/// every tier produces bit-identical totals; the vector tiers extract
/// digits four keys at a time into a small buffer and the increments
/// stay scalar (x86 has no conflict-free scatter-increment below
/// AVX-512).
#[inline]
pub fn radix_histogram16(pairs: &[(u64, u64)], shift: u32, hist: &mut [u32]) {
    radix_histogram16_with_tier(active_tier(), pairs, shift, hist)
}

/// [`radix_histogram16`] at an explicit tier.
#[inline]
pub fn radix_histogram16_with_tier(
    tier: SimdTier,
    pairs: &[(u64, u64)],
    shift: u32,
    hist: &mut [u32],
) {
    assert_eq!(hist.len(), RADIX16, "radix_histogram16: bad histogram size");
    assert!(shift <= 48, "radix_histogram16: shift must leave a digit");
    #[cfg(target_arch = "x86_64")]
    if tier >= SimdTier::Sse2 && pairs.len() >= 32 {
        unsafe {
            match tier {
                SimdTier::Avx2 => x86::radix_histogram16_avx2(pairs, shift, hist),
                _ => x86::radix_histogram16_sse2(pairs, shift, hist),
            }
        }
        return;
    }
    let _ = tier;
    radix_histogram16_scalar(pairs, shift, hist);
}

/// The scalar reference.
#[inline]
pub fn radix_histogram16_scalar(pairs: &[(u64, u64)], shift: u32, hist: &mut [u32]) {
    for &(key, _) in pairs {
        hist[((key >> shift) as usize) & (RADIX16 - 1)] += 1;
    }
}

// ---------------------------------------------------------------------
// x86_64 tiers
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use super::RADIX16;

    /// # Safety
    /// SSE2 is baseline on x86_64; always safe to call there.
    #[target_feature(enable = "sse2")]
    pub unsafe fn sum_u64_sse2(xs: &[u64]) -> u64 {
        let mut acc = _mm_setzero_si128();
        let chunks = xs.len() / 2;
        let p = xs.as_ptr() as *const __m128i;
        for i in 0..chunks {
            acc = _mm_add_epi64(acc, _mm_loadu_si128(p.add(i)));
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
        let mut total = lanes[0].wrapping_add(lanes[1]);
        for &x in &xs[chunks * 2..] {
            total = total.wrapping_add(x);
        }
        total
    }

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_u64_avx2(xs: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = xs.len() / 4;
        let p = xs.as_ptr() as *const __m256i;
        for i in 0..chunks {
            acc = _mm256_add_epi64(acc, _mm256_loadu_si256(p.add(i)));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total = lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3]);
        for &x in &xs[chunks * 4..] {
            total = total.wrapping_add(x);
        }
        total
    }

    /// Lane-wise maximum of a `u32` slice (`0` when empty).
    ///
    /// # Safety
    /// Caller must have verified AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn max_u32_avx2(xs: &[u32]) -> u32 {
        let mut acc = _mm256_setzero_si256();
        let chunks = xs.len() / 8;
        let p = xs.as_ptr() as *const __m256i;
        for i in 0..chunks {
            acc = _mm256_max_epu32(acc, _mm256_loadu_si256(p.add(i)));
        }
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut max = lanes.iter().copied().max().unwrap_or(0);
        for &x in &xs[chunks * 8..] {
            max = max.max(x);
        }
        max
    }

    /// Lane-wise maximum of a `u32` slice (`0` when empty) on bare
    /// SSE2: `_mm_max_epu32` is SSE4.1, so the accumulator lives in the
    /// sign-biased domain where `x ^ 0x8000_0000` preserves unsigned
    /// order under the signed `_mm_cmpgt_epi32`, blended with and/andnot.
    ///
    /// # Safety
    /// SSE2 is baseline on x86_64; always safe to call there.
    #[target_feature(enable = "sse2")]
    pub unsafe fn max_u32_sse2(xs: &[u32]) -> u32 {
        let bias = _mm_set1_epi32(i32::MIN);
        // Biased representation of unsigned 0 — same seed as the AVX2
        // twin's zero accumulator.
        let mut accb = bias;
        let chunks = xs.len() / 4;
        let p = xs.as_ptr() as *const __m128i;
        for i in 0..chunks {
            let vb = _mm_xor_si128(_mm_loadu_si128(p.add(i)), bias);
            let gt = _mm_cmpgt_epi32(vb, accb);
            accb = _mm_or_si128(_mm_and_si128(gt, vb), _mm_andnot_si128(gt, accb));
        }
        let mut lanes = [0u32; 4];
        _mm_storeu_si128(
            lanes.as_mut_ptr() as *mut __m128i,
            _mm_xor_si128(accb, bias),
        );
        let mut max = lanes.iter().copied().max().unwrap_or(0);
        for &x in &xs[chunks * 4..] {
            max = max.max(x);
        }
        max
    }

    /// 4-wide gather for bare SSE2 (which has no gather instruction and
    /// no `_mm_extract_epi32` — that is SSE4.1): vector index loads,
    /// lanes peeled with shift+`_mm_cvtsi128_si32`, unchecked scalar
    /// table loads, vector stores. The win over the safe scalar loop is
    /// the absence of per-element bounds checks — the dispatching
    /// wrapper validated the whole batch with one max.
    ///
    /// # Safety
    /// SSE2 baseline **and** every index must be in range for `table`
    /// (the dispatching wrapper max-checks the batch).
    #[target_feature(enable = "sse2")]
    pub unsafe fn gather_u32_sse2(table: &[u32], idx: &[u32], out: &mut [u32]) {
        debug_assert_eq!(idx.len(), out.len());
        let chunks = idx.len() / 4;
        for c in 0..chunks {
            let iv = _mm_loadu_si128(idx.as_ptr().add(c * 4) as *const __m128i);
            let i0 = _mm_cvtsi128_si32(iv) as u32 as usize;
            let i1 = _mm_cvtsi128_si32(_mm_srli_si128::<4>(iv)) as u32 as usize;
            let i2 = _mm_cvtsi128_si32(_mm_srli_si128::<8>(iv)) as u32 as usize;
            let i3 = _mm_cvtsi128_si32(_mm_srli_si128::<12>(iv)) as u32 as usize;
            let g = _mm_set_epi32(
                *table.get_unchecked(i3) as i32,
                *table.get_unchecked(i2) as i32,
                *table.get_unchecked(i1) as i32,
                *table.get_unchecked(i0) as i32,
            );
            _mm_storeu_si128(out.as_mut_ptr().add(c * 4) as *mut __m128i, g);
        }
        for i in chunks * 4..idx.len() {
            *out.get_unchecked_mut(i) = *table.get_unchecked(*idx.get_unchecked(i) as usize);
        }
    }

    /// 8-wide gather: `out[i] = table[idx[i]]`.
    ///
    /// # Safety
    /// Caller must have verified AVX2 **and** that every index is in
    /// range for `table` (the dispatching wrapper max-checks the batch).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_u32_avx2(table: &[u32], idx: &[u32], out: &mut [u32]) {
        debug_assert_eq!(idx.len(), out.len());
        let chunks = idx.len() / 8;
        let base = table.as_ptr() as *const i32;
        for c in 0..chunks {
            let iv = _mm256_loadu_si256(idx.as_ptr().add(c * 8) as *const __m256i);
            let g = _mm256_i32gather_epi32::<4>(base, iv);
            _mm256_storeu_si256(out.as_mut_ptr().add(c * 8) as *mut __m256i, g);
        }
        for i in chunks * 8..idx.len() {
            *out.get_unchecked_mut(i) = *table.get_unchecked(*idx.get_unchecked(i) as usize);
        }
    }

    /// Shared digit-buffer histogram body: extract 16-bit digits of a
    /// block of keys with `extract`, then count them with unrolled
    /// scalar increments (conflict-safe).
    macro_rules! histogram_body {
        ($pairs:expr, $shift:expr, $hist:expr, $block:expr, $extract:expr) => {{
            let pairs: &[(u64, u64)] = $pairs;
            let hist: &mut [u32] = $hist;
            const BLOCK: usize = $block;
            let mut digits = [0u16; BLOCK];
            let mut i = 0;
            while i + BLOCK <= pairs.len() {
                $extract(&pairs[i..i + BLOCK], $shift, &mut digits);
                for &d in &digits {
                    *hist.get_unchecked_mut(d as usize) += 1;
                }
                i += BLOCK;
            }
            for &(key, _) in &pairs[i..] {
                *hist.get_unchecked_mut(((key >> $shift) as usize) & (RADIX16 - 1)) += 1;
            }
        }};
    }

    /// # Safety
    /// SSE2 is baseline on x86_64; `hist.len() == RADIX16` (asserted by
    /// the dispatching wrapper) keeps the unchecked increments in range
    /// (a 16-bit digit cannot exceed it).
    #[target_feature(enable = "sse2")]
    pub unsafe fn radix_histogram16_sse2(pairs: &[(u64, u64)], shift: u32, hist: &mut [u32]) {
        histogram_body!(
            pairs,
            shift,
            hist,
            16,
            |block: &[(u64, u64)], shift: u32, digits: &mut [u16; 16]| {
                // (key, weight) pairs stride 16 bytes; lane 0 of each 128-bit
                // load is the key. Two pairs per load, shift+mask, pack.
                let p = block.as_ptr() as *const __m128i;
                let shift_v = _mm_cvtsi32_si128(shift as i32);
                let mask = _mm_set1_epi64x(0xFFFF);
                for c in 0..8 {
                    // Loads: pair 2c (key in lane0) and pair 2c+1.
                    let a = _mm_loadu_si128(p.add(c * 2)); // [key0, w0]
                    let b = _mm_loadu_si128(p.add(c * 2 + 1)); // [key1, w1]
                    let keys = _mm_unpacklo_epi64(a, b); // [key0, key1]
                    let d = _mm_and_si128(_mm_srl_epi64(keys, shift_v), mask);
                    digits[c * 2] = _mm_cvtsi128_si32(d) as u16;
                    digits[c * 2 + 1] = _mm_cvtsi128_si32(_mm_srli_si128::<8>(d)) as u16;
                }
            }
        );
    }

    /// # Safety
    /// Caller must have verified AVX2; same bounds argument as the SSE2
    /// tier for the unchecked increments.
    #[target_feature(enable = "avx2")]
    pub unsafe fn radix_histogram16_avx2(pairs: &[(u64, u64)], shift: u32, hist: &mut [u32]) {
        histogram_body!(
            pairs,
            shift,
            hist,
            16,
            |block: &[(u64, u64)], shift: u32, digits: &mut [u16; 16]| {
                // Gather the 4 keys of 4 consecutive pairs (stride 2 in u64
                // units), shift+mask, store 4 digits at a time.
                let base = block.as_ptr() as *const i64;
                let stride = _mm_setr_epi32(0, 2, 4, 6);
                let shift_v = _mm_cvtsi32_si128(shift as i32);
                let mask = _mm256_set1_epi64x(0xFFFF);
                for c in 0..4 {
                    let keys = _mm256_i32gather_epi64::<8>(base.add(c * 8), stride);
                    let d = _mm256_and_si256(_mm256_srl_epi64(keys, shift_v), mask);
                    let mut lanes = [0u64; 4];
                    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, d);
                    digits[c * 4] = lanes[0] as u16;
                    digits[c * 4 + 1] = lanes[1] as u16;
                    digits[c * 4 + 2] = lanes[2] as u16;
                    digits[c * 4 + 3] = lanes[3] as u16;
                }
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Sse2.name(), "sse2");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
    }

    #[test]
    fn force_tier_clamps_to_detected() {
        force_tier(Some(SimdTier::Avx2));
        assert!(active_tier() <= detected_tier());
        force_tier(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        force_tier(None);
    }

    #[test]
    fn kernels_agree_on_fixed_vectors() {
        let xs: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let expect = sum_u64_scalar(&xs);
        for tier in SimdTier::ALL {
            assert_eq!(sum_u64_with_tier(tier, &xs), expect, "{tier:?}");
        }

        let table: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let idx: Vec<u32> = (0..777u32).map(|i| (i * 97) % 512).collect();
        let mut expect = vec![0u32; idx.len()];
        gather_u32_scalar(&table, &idx, &mut expect);
        for tier in SimdTier::ALL {
            let mut out = vec![0u32; idx.len()];
            gather_u32_with_tier(tier, &table, &idx, &mut out);
            assert_eq!(out, expect, "{tier:?}");
        }

        let pairs: Vec<(u64, u64)> = (0..4097u64)
            .map(|i| (i.wrapping_mul(0xD1B54A32D192ED03), i))
            .collect();
        for shift in [0u32, 16, 32, 48] {
            let mut expect = vec![0u32; RADIX16];
            radix_histogram16_scalar(&pairs, shift, &mut expect);
            for tier in SimdTier::ALL {
                let mut hist = vec![0u32; RADIX16];
                radix_histogram16_with_tier(tier, &pairs, shift, &mut hist);
                assert_eq!(hist, expect, "{tier:?} shift {shift}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_out_of_range_indices() {
        let table = vec![0u32; 8];
        let idx = vec![9u32; 32];
        let mut out = vec![0u32; 32];
        gather_u32(&table, &idx, &mut out);
    }

    #[test]
    fn prefetch_is_safe_everywhere() {
        let xs = [1u64, 2, 3];
        prefetch_read(&xs, 0);
        prefetch_read(&xs, 2);
        prefetch_read(&xs, 1000); // out of range: ignored
        prefetch_read::<u64>(&[], 0);
    }
}
