//! Property tests for the SIMD micro-kernels: every tier must be
//! bit-identical to the scalar reference on random inputs of every
//! length class — empty, single element, below one vector width, and
//! non-multiple-of-lane-width tails. The algorithms above these kernels
//! hard-assert λ and PQ-op-stream identity; these tests pin the layer
//! that claim rests on.

use mincut_ds::simd::{
    gather_u32_scalar, gather_u32_with_tier, radix_histogram16_scalar, radix_histogram16_with_tier,
    sum_u64_scalar, sum_u64_with_tier, SimdTier, RADIX16,
};

/// Deterministic xorshift64* stream (the ds crate carries no rand dep).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Every length class the kernels dispatch over: empty, single, sub-lane,
/// exact vector widths, and ragged tails around each width and the
/// kernel block sizes.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 257, 1000,
];

#[test]
fn sum_u64_all_tiers_match_scalar() {
    let mut rng = Rng(0x5EED_0001);
    for &len in LENGTHS {
        for rep in 0..4 {
            // Huge values exercise wrapping behaviour on later reps.
            let xs: Vec<u64> = (0..len)
                .map(|_| {
                    let v = rng.next();
                    if rep % 2 == 0 {
                        v >> 32
                    } else {
                        v
                    }
                })
                .collect();
            let expect = sum_u64_scalar(&xs);
            for tier in SimdTier::ALL {
                assert_eq!(
                    sum_u64_with_tier(tier, &xs),
                    expect,
                    "{tier:?} len {len} rep {rep}"
                );
            }
        }
    }
}

#[test]
fn gather_u32_all_tiers_match_scalar() {
    let mut rng = Rng(0x5EED_0002);
    for &len in LENGTHS {
        for table_len in [1usize, 2, 5, 64, 1 << 12] {
            let table: Vec<u32> = (0..table_len).map(|_| rng.next() as u32).collect();
            let idx: Vec<u32> = (0..len)
                .map(|_| (rng.next() as usize % table_len) as u32)
                .collect();
            let mut expect = vec![0u32; len];
            gather_u32_scalar(&table, &idx, &mut expect);
            for tier in SimdTier::ALL {
                let mut out = vec![0u32; len];
                gather_u32_with_tier(tier, &table, &idx, &mut out);
                assert_eq!(out, expect, "{tier:?} len {len} table {table_len}");
            }
        }
    }
}

#[test]
fn gather_u32_bounds_check_covers_vector_batches() {
    // One out-of-range index anywhere in an AVX2-sized batch must panic
    // at every tier (the vector path max-checks the whole batch before
    // gathering; the scalar path indexes directly).
    for bad_pos in [0usize, 7, 8, 15, 16, 31] {
        for tier in SimdTier::ALL {
            let table = vec![1u32; 16];
            let mut idx = vec![3u32; 32];
            idx[bad_pos] = 16; // == table.len(), out of range
            let mut out = vec![0u32; 32];
            let r = std::panic::catch_unwind(move || {
                gather_u32_with_tier(tier, &table, &idx, &mut out);
            });
            assert!(r.is_err(), "{tier:?} must reject index at {bad_pos}");
        }
    }
}

#[test]
fn radix_histogram16_all_tiers_match_scalar() {
    let mut rng = Rng(0x5EED_0003);
    for &len in LENGTHS {
        let pairs: Vec<(u64, u64)> = (0..len).map(|_| (rng.next(), rng.next())).collect();
        for shift in [0u32, 16, 32, 48] {
            let mut expect = vec![0u32; RADIX16];
            radix_histogram16_scalar(&pairs, shift, &mut expect);
            for tier in SimdTier::ALL {
                let mut hist = vec![0u32; RADIX16];
                radix_histogram16_with_tier(tier, &pairs, shift, &mut hist);
                assert_eq!(hist, expect, "{tier:?} len {len} shift {shift}");
            }
        }
    }
}

#[test]
fn radix_histogram16_accumulates_without_clearing() {
    // The kernel contract is "add into hist", so two calls must equal
    // one call over the concatenation — at every tier.
    let mut rng = Rng(0x5EED_0004);
    let a: Vec<(u64, u64)> = (0..97).map(|_| (rng.next(), 0)).collect();
    let b: Vec<(u64, u64)> = (0..41).map(|_| (rng.next(), 0)).collect();
    let both: Vec<(u64, u64)> = a.iter().chain(&b).copied().collect();
    for tier in SimdTier::ALL {
        let mut two_calls = vec![0u32; RADIX16];
        radix_histogram16_with_tier(tier, &a, 16, &mut two_calls);
        radix_histogram16_with_tier(tier, &b, 16, &mut two_calls);
        let mut one_call = vec![0u32; RADIX16];
        radix_histogram16_with_tier(tier, &both, 16, &mut one_call);
        assert_eq!(two_calls, one_call, "{tier:?}");
    }
}
