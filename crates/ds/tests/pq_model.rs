//! Property tests: every priority queue implementation must agree with a
//! reference model on the *multiset* of (vertex, priority) pops and must pop
//! priorities in non-increasing order... within the λ̂-cap semantics, pops
//! are only guaranteed max-priority among live entries, which the model
//! checks exactly. Sequences include epoch resets (reuse is the intrusive
//! queues' whole point), and the new intrusive bucket queues are
//! additionally pinned *pop-for-pop* against the frozen lazy-deletion
//! legacy queues — same ops in, byte-identical pop sequence out — so the
//! rewrite provably changed the memory layout and nothing else.

use mincut_ds::pq::legacy::{LegacyBQueuePq, LegacyBStackPq};
use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, MaxPq};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push or raise vertex `v` by `delta` (emulating CAPFOREST's r += c(e)).
    Bump { v: u8, delta: u16 },
    /// Pop the maximum.
    Pop,
    /// Reset the queue (reuse across CAPFOREST passes): everything
    /// queued vanishes, the priority range may change.
    Reset { cap: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        12 => (any::<u8>(), 1u16..500).prop_map(|(v, delta)| Op::Bump { v, delta }),
        4 => Just(Op::Pop),
        1 => (1u16..5000).prop_map(|cap| Op::Reset { cap: cap.max(1) }),
    ]
}

/// Reference model: linear scan over live entries.
struct Model {
    prio: Vec<u64>,
    state: Vec<u8>, // 0 = never seen, 1 = queued, 2 = popped
}

impl Model {
    fn new(n: usize) -> Self {
        Model {
            prio: vec![0; n],
            state: vec![0; n],
        }
    }

    fn max_priority(&self) -> Option<u64> {
        self.state
            .iter()
            .zip(&self.prio)
            .filter(|(s, _)| **s == 1)
            .map(|(_, p)| *p)
            .max()
    }
}

fn run_against_model<P: MaxPq>(ops: &[Op], initial_cap: u64) {
    const N: usize = 256;
    let mut cap = initial_cap;
    let mut q = P::new();
    q.reset(N, cap);
    let mut model = Model::new(N);

    for op in ops {
        match *op {
            Op::Bump { v, delta } => {
                let vi = v as usize;
                match model.state[vi] {
                    0 => {
                        let p = (delta as u64).min(cap);
                        model.prio[vi] = p;
                        model.state[vi] = 1;
                        q.push(v as u32, p);
                    }
                    1 => {
                        let p = (model.prio[vi] + delta as u64).min(cap);
                        model.prio[vi] = p;
                        q.raise(v as u32, p);
                    }
                    _ => {} // popped vertices are never re-pushed (CAPFOREST contract)
                }
            }
            Op::Pop => {
                let got = q.pop_max();
                match model.max_priority() {
                    None => assert_eq!(got, None),
                    Some(maxp) => {
                        let (v, p) = got.expect("model says non-empty");
                        assert_eq!(p, maxp, "popped priority must be the maximum");
                        assert_eq!(model.prio[v as usize], p, "priority table consistent");
                        assert_eq!(model.state[v as usize], 1, "popped vertex was live");
                        model.state[v as usize] = 2;
                    }
                }
            }
            Op::Reset { cap: new_cap } => {
                cap = new_cap as u64;
                q.reset(N, cap);
                model = Model::new(N);
            }
        }
        // Invariants that hold continuously.
        let live = model.state.iter().filter(|&&s| s == 1).count();
        assert_eq!(q.len(), live);
    }

    // Drain: all remaining elements in non-increasing priority order.
    let mut last = u64::MAX;
    while let Some((v, p)) = q.pop_max() {
        assert!(p <= last);
        last = p;
        assert_eq!(model.state[v as usize], 1);
        model.state[v as usize] = 2;
    }
    assert!(model.state.iter().all(|&s| s != 1));
}

/// Replays one op sequence on two implementations; every observable —
/// pop results, lengths, membership — must be byte-identical. Pops are
/// driven on both sides unconditionally, so tie-breaking (LIFO/FIFO
/// within a bucket) is pinned, not just the multiset.
fn run_differential<A: MaxPq, B: MaxPq>(ops: &[Op], initial_cap: u64) {
    const N: usize = 256;
    let mut cap = initial_cap;
    let mut a = A::new();
    let mut b = B::new();
    a.reset(N, cap);
    b.reset(N, cap);
    // Track prio/state like the model so bumps stay monotone and within
    // the cap.
    let mut model = Model::new(N);
    for op in ops {
        match *op {
            Op::Bump { v, delta } => {
                let vi = v as usize;
                match model.state[vi] {
                    0 => {
                        let p = (delta as u64).min(cap);
                        model.prio[vi] = p;
                        model.state[vi] = 1;
                        a.push(v as u32, p);
                        b.push(v as u32, p);
                    }
                    1 => {
                        let p = (model.prio[vi] + delta as u64).min(cap);
                        model.prio[vi] = p;
                        a.raise(v as u32, p);
                        b.raise(v as u32, p);
                    }
                    _ => {}
                }
            }
            Op::Pop => {
                let pa = a.pop_max();
                let pb = b.pop_max();
                assert_eq!(pa, pb, "pop order diverged");
                if let Some((v, _)) = pa {
                    model.state[v as usize] = 2;
                }
            }
            Op::Reset { cap: new_cap } => {
                cap = new_cap as u64;
                a.reset(N, cap);
                b.reset(N, cap);
                model = Model::new(N);
            }
        }
        assert_eq!(a.len(), b.len());
    }
    loop {
        let pa = a.pop_max();
        let pb = b.pop_max();
        assert_eq!(pa, pb, "drain order diverged");
        if pa.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bstack_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BStackPq>(&ops, cap);
    }

    #[test]
    fn bqueue_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BQueuePq>(&ops, cap);
    }

    #[test]
    fn heap_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BinaryHeapPq>(&ops, cap);
    }

    #[test]
    fn heap_matches_model_uncapped(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model::<BinaryHeapPq>(&ops, u64::MAX);
    }

    #[test]
    fn legacy_bstack_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<LegacyBStackPq>(&ops, cap);
    }

    #[test]
    fn legacy_bqueue_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<LegacyBQueuePq>(&ops, cap);
    }

    #[test]
    fn intrusive_bstack_pops_identically_to_legacy(ops in prop::collection::vec(op_strategy(), 1..500), cap in 1u64..5000) {
        run_differential::<BStackPq, LegacyBStackPq>(&ops, cap);
    }

    #[test]
    fn intrusive_bqueue_pops_identically_to_legacy(ops in prop::collection::vec(op_strategy(), 1..500), cap in 1u64..5000) {
        run_differential::<BQueuePq, LegacyBQueuePq>(&ops, cap);
    }
}
