//! Property tests: every priority queue implementation must agree with a
//! reference model on the *multiset* of (vertex, priority) pops and must pop
//! priorities in non-increasing order... within the λ̂-cap semantics, pops
//! are only guaranteed max-priority among live entries, which the model
//! checks exactly.

use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, MaxPq};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push or raise vertex `v` by `delta` (emulating CAPFOREST's r += c(e)).
    Bump { v: u8, delta: u16 },
    /// Pop the maximum.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), 1u16..500).prop_map(|(v, delta)| Op::Bump { v, delta }),
        1 => Just(Op::Pop),
    ]
}

/// Reference model: linear scan over live entries.
struct Model {
    prio: Vec<u64>,
    state: Vec<u8>, // 0 = never seen, 1 = queued, 2 = popped
}

impl Model {
    fn new(n: usize) -> Self {
        Model {
            prio: vec![0; n],
            state: vec![0; n],
        }
    }

    fn max_priority(&self) -> Option<u64> {
        self.state
            .iter()
            .zip(&self.prio)
            .filter(|(s, _)| **s == 1)
            .map(|(_, p)| *p)
            .max()
    }
}

fn run_against_model<P: MaxPq>(ops: &[Op], cap: u64) {
    const N: usize = 256;
    let mut q = P::new();
    q.reset(N, cap);
    let mut model = Model::new(N);

    for op in ops {
        match *op {
            Op::Bump { v, delta } => {
                let vi = v as usize;
                match model.state[vi] {
                    0 => {
                        let p = (delta as u64).min(cap);
                        model.prio[vi] = p;
                        model.state[vi] = 1;
                        q.push(v as u32, p);
                    }
                    1 => {
                        let p = (model.prio[vi] + delta as u64).min(cap);
                        model.prio[vi] = p;
                        q.raise(v as u32, p);
                    }
                    _ => {} // popped vertices are never re-pushed (CAPFOREST contract)
                }
            }
            Op::Pop => {
                let got = q.pop_max();
                match model.max_priority() {
                    None => assert_eq!(got, None),
                    Some(maxp) => {
                        let (v, p) = got.expect("model says non-empty");
                        assert_eq!(p, maxp, "popped priority must be the maximum");
                        assert_eq!(model.prio[v as usize], p, "priority table consistent");
                        assert_eq!(model.state[v as usize], 1, "popped vertex was live");
                        model.state[v as usize] = 2;
                    }
                }
            }
        }
        // Invariants that hold continuously.
        let live = model.state.iter().filter(|&&s| s == 1).count();
        assert_eq!(q.len(), live);
    }

    // Drain: all remaining elements in non-increasing priority order.
    let mut last = u64::MAX;
    while let Some((v, p)) = q.pop_max() {
        assert!(p <= last);
        last = p;
        assert_eq!(model.state[v as usize], 1);
        model.state[v as usize] = 2;
    }
    assert!(model.state.iter().all(|&s| s != 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bstack_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BStackPq>(&ops, cap);
    }

    #[test]
    fn bqueue_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BQueuePq>(&ops, cap);
    }

    #[test]
    fn heap_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), cap in 1u64..5000) {
        run_against_model::<BinaryHeapPq>(&ops, cap);
    }

    #[test]
    fn heap_matches_model_uncapped(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model::<BinaryHeapPq>(&ops, u64::MAX);
    }
}
