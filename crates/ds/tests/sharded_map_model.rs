//! Model test: the sharded concurrent map must behave exactly like a
//! plain `HashMap` under any sequential operation interleaving, and
//! accumulate exactly under concurrent writers (the §3.2 contraction
//! use case: summing parallel-edge weights).

use mincut_ds::{pack_edge, unpack_edge, ShardedMap};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Add { key: u64, w: u64 },
    Get { key: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..64, 1u64..100).prop_map(|(key, w)| Op::Add { key, w }),
            1 => (0u64..64).prop_map(|key| Op::Get { key }),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_hashmap_model(ops in ops(), shard_bits in 0u32..6) {
        let map: ShardedMap<u64, u64> = ShardedMap::new(shard_bits);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Add { key, w } => {
                    map.add_weight(key, w);
                    *model.entry(key).or_insert(0) += w;
                }
                Op::Get { key } => {
                    prop_assert_eq!(map.get_cloned(&key), model.get(&key).copied());
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
        let mut drained = map.drain_into_vec();
        drained.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn pack_edge_is_injective_on_unordered_pairs(
        a in 0u32..10_000, b in 0u32..10_000, c in 0u32..10_000, d in 0u32..10_000
    ) {
        prop_assume!(a != b && c != d);
        let k1 = pack_edge(a, b);
        let k2 = pack_edge(c, d);
        let same_pair = (a.min(b), a.max(b)) == (c.min(d), c.max(d));
        prop_assert_eq!(k1 == k2, same_pair);
        let (lo, hi) = unpack_edge(k1);
        prop_assert_eq!((lo, hi), (a.min(b), a.max(b)));
    }
}

#[test]
fn concurrent_writers_accumulate_exactly() {
    let map: ShardedMap<u64, u64> = ShardedMap::with_expected_len(1 << 14);
    let per_thread = 50_000u64;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                for i in 0..per_thread {
                    // Overlapping key ranges across threads.
                    map.add_weight((i + t * 17) % 1000, 1);
                }
            });
        }
    });
    let mut total = 0;
    map.for_each(|_, &v| total += v);
    assert_eq!(total, 4 * per_thread);
}
