//! The perf acceptance bar of the SIMD/prefetch PR, kept alive as a
//! regression test: the committed `results/BENCH_pr8.json` must show a
//! ≥ 1.15× geometric-mean wall-time speedup over `results/BENCH_pr5.json`
//! on the clustered `noi-viecut` end-to-end rows, with λ identical on
//! every joined row. Both baselines are generated on the same machine
//! (the pr5 file is regenerated from its commit on the measuring box
//! first — see ROADMAP "Performance" for the protocol), so the committed
//! pair is internally consistent even though absolute times differ
//! across machines.

use mincut_bench::report::LoadedReport;
use std::path::PathBuf;

fn results_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join(name)
}

#[test]
fn pr8_baseline_beats_pr5_on_clustered_noi_viecut_rows() {
    let old = LoadedReport::load(results_path("BENCH_pr5.json")).expect("committed pr5 baseline");
    let new = LoadedReport::load(results_path("BENCH_pr8.json")).expect("committed pr8 baseline");
    assert_eq!(
        old.hardware_threads, new.hardware_threads,
        "baselines must come from the same machine (regenerate pr5 locally first)"
    );

    let mut speedups = Vec::new();
    for oe in old.entries.iter().filter(|e| e.solver == "noi-viecut") {
        let ne = new
            .entries
            .iter()
            .find(|ne| ne.key() == oe.key())
            .unwrap_or_else(|| {
                panic!(
                    "pr8 baseline lost the row {}/{}/{}t",
                    oe.instance, oe.solver, oe.threads
                )
            });
        assert_eq!(
            oe.lambda, ne.lambda,
            "λ drifted on {} — correctness, not perf",
            oe.instance
        );
        speedups.push(oe.wall_s.max(1e-9) / ne.wall_s.max(1e-9));
    }
    assert!(
        speedups.len() >= 3,
        "expected the three clustered instances, found {}",
        speedups.len()
    );
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!(
        geomean >= 1.15,
        "geomean speedup {geomean:.3}x below the 1.15x acceptance bar ({speedups:?})"
    );
}
