//! Differential harness for the batch serving layer: over the full
//! 64-instance tiny corpus, `MinCutService` must return bit-identical
//! cut values to a serial `Session` loop, and a repeat submission must
//! be served entirely from the fingerprint cut cache.

use std::sync::Arc;

use mincut_bench::instances::{batch_corpus, Scale};
use mincut_core::{BatchJob, MinCutService, ServiceConfig, Session, SolveOptions};

fn corpus_jobs(opts: &SolveOptions) -> Vec<BatchJob> {
    batch_corpus(Scale::Tiny)
        .into_iter()
        .map(|inst| {
            BatchJob::new(Arc::new(inst.graph), "noi-viecut")
                .options(opts.clone())
                .label(inst.name)
        })
        .collect()
}

#[test]
fn batch_values_are_bit_identical_to_a_serial_session_loop() {
    let opts = SolveOptions::new().seed(11);
    let jobs = corpus_jobs(&opts);
    assert_eq!(jobs.len(), 64);

    let serial: Vec<u64> = jobs
        .iter()
        .map(|job| {
            Session::new(&job.graph)
                .options(opts.clone())
                .run(&job.solver)
                .unwrap_or_else(|e| panic!("{}: {e}", job.label.as_deref().unwrap()))
                .cut
                .value
        })
        .collect();

    for workers in [1usize, 4] {
        let service = MinCutService::new(ServiceConfig::new().concurrency(workers));
        let report = service.run_batch(&jobs);
        assert!(report.all_ok());
        assert_eq!(report.stats.solved, 64, "{workers} workers: all fresh");
        for ((job, row), expected) in jobs.iter().zip(&report.jobs).zip(&serial) {
            let out = row.status.outcome().unwrap();
            assert_eq!(
                out.cut.value, *expected,
                "{}: batch diverged from serial",
                row.label
            );
            assert!(out.cut.verify(&job.graph), "{} witness", row.label);
        }
    }
}

#[test]
fn repeat_corpus_submissions_never_resolve() {
    let opts = SolveOptions::new().seed(11).witness(false);
    let jobs = corpus_jobs(&opts);
    let service = MinCutService::new(ServiceConfig::new().concurrency(4));

    let first = service.run_batch(&jobs);
    assert!(first.all_ok());
    assert_eq!(first.stats.solved, 64);
    assert_eq!(first.stats.cache_hits, 0, "distinct instances: no hits yet");

    let second = service.run_batch(&jobs);
    assert!(second.all_ok());
    assert_eq!(second.stats.solved, 0, "resubmission must not re-solve");
    assert_eq!(second.stats.cache_hits, 64);
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        assert_eq!(
            a.status.outcome().unwrap().cut.value,
            b.status.outcome().unwrap().cut.value
        );
    }
    let cs = service.cache_stats();
    assert_eq!((cs.hits, cs.insertions, cs.entries), (64, 64, 64));
}
