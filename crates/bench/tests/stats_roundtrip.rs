//! Round-trips the hand-rolled stats emitters through the hand-rolled
//! JSON reader: `SolverStats::to_json` and `DynamicStats::to_json` are
//! consumed by external tooling (the CLI's `--stats` rows, the stream
//! footer), so every documented field must parse back out of the text
//! with the value that went in. A field silently dropped or mangled by
//! either side fails here, not in a downstream dashboard.

use mincut_bench::report::json::{self, Value};
use mincut_core::dynamic::{DynamicMinCut, TraceOp};
use mincut_core::{Session, SolveOptions};
use mincut_graph::generators::known;

fn field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("field {key:?} missing from JSON"))
}

#[test]
fn solver_stats_json_round_trips() {
    let (g, lambda) = known::ring_of_cliques(4, 6, 2, 1);
    let outcome = Session::new(&g)
        .options(SolveOptions::new().seed(7))
        .run("noi-viecut")
        .expect("solve");
    assert_eq!(outcome.cut.value, lambda);
    let s = &outcome.stats;

    let text = s.to_json();
    let root = json::parse(&text).expect("emitted stats must be valid JSON");
    let obj = root.as_obj().expect("stats JSON is an object");

    assert_eq!(field(obj, "algorithm").as_str(), Some(s.algorithm.as_str()));
    assert_eq!(field(obj, "simd_tier").as_str(), Some(s.simd_tier));
    assert_eq!(field(obj, "n").as_u64(), s.n as u64);
    assert_eq!(field(obj, "m").as_u64(), s.m as u64);
    assert_eq!(field(obj, "rounds").as_u64(), s.rounds);
    assert_eq!(
        field(obj, "contracted_vertices").as_u64(),
        s.contracted_vertices
    );
    assert_eq!(field(obj, "sw_rescues").as_u64(), s.sw_rescues);

    let traj = field(obj, "lambda_trajectory").as_arr().expect("array");
    assert_eq!(traj.len(), s.lambda_trajectory.len());
    for (v, l) in traj.iter().zip(&s.lambda_trajectory) {
        assert_eq!(v.as_u64(), *l);
    }

    let pq = field(obj, "pq_ops").as_obj().expect("object");
    assert_eq!(field(pq, "pushes").as_u64(), s.pq_ops.pushes);
    assert_eq!(field(pq, "raises").as_u64(), s.pq_ops.raises);
    assert_eq!(field(pq, "pops").as_u64(), s.pq_ops.pops);
    assert_eq!(field(pq, "total").as_u64(), s.pq_ops.total());

    let phases = field(obj, "phases").as_arr().expect("array");
    assert_eq!(phases.len(), s.phases.len());
    for (v, p) in phases.iter().zip(&s.phases) {
        let po = v.as_obj().expect("phase object");
        assert_eq!(field(po, "name").as_str(), Some(p.name));
        assert!((field(po, "seconds").as_f64() - p.seconds).abs() < 1e-6);
    }

    let paths = field(obj, "contraction_paths").as_arr().expect("array");
    assert_eq!(paths.len(), s.contraction_paths.len());
    for (v, p) in paths.iter().zip(&s.contraction_paths) {
        assert_eq!(v.as_str(), Some(p.to_string().as_str()));
    }

    let dispatch = field(obj, "contraction_dispatch").as_obj().expect("object");
    assert!(field(dispatch, "sequential_fallback_threshold").as_u64() > 0);
    assert!(field(dispatch, "sort_min_estimated_pairs").as_u64() > 0);

    assert_eq!(field(obj, "kernel_n").as_u64(), s.kernel_n as u64);
    assert_eq!(field(obj, "kernel_m").as_u64(), s.kernel_m as u64);

    let reductions = field(obj, "reductions").as_arr().expect("array");
    assert_eq!(reductions.len(), s.reductions.len());
    assert!(!s.reductions.is_empty(), "default options kernelize");
    for (v, r) in reductions.iter().zip(&s.reductions) {
        let ro = v.as_obj().expect("reduction object");
        assert_eq!(field(ro, "name").as_str(), Some(r.name));
        assert_eq!(field(ro, "rounds").as_u64(), r.rounds);
        assert_eq!(field(ro, "vertices_removed").as_u64(), r.vertices_removed);
        assert_eq!(field(ro, "edges_removed").as_u64(), r.edges_removed);
        assert!((field(ro, "seconds").as_f64() - r.seconds).abs() < 1e-6);
    }

    assert!((field(obj, "total_seconds").as_f64() - s.total_seconds).abs() < 1e-6);
}

#[test]
fn dynamic_stats_json_round_trips() {
    let (g, _) = known::two_communities(6, 6, 2, 2, 1);
    let mut dm = DynamicMinCut::new(g, "noi", SolveOptions::new().seed(3)).expect("initial solve");
    dm.enable_cactus().expect("cactus maintenance");
    for op in [
        TraceOp::Query,
        TraceOp::Insert { u: 0, v: 7, w: 2 },
        TraceOp::Delete { u: 0, v: 7 },
        TraceOp::Query,
    ] {
        dm.apply(&op).expect("update");
    }
    let s = dm.stats().clone();

    let text = s.to_json();
    let root = json::parse(&text).expect("emitted stats must be valid JSON");
    let obj = root.as_obj().expect("stats JSON is an object");

    assert_eq!(field(obj, "insertions").as_u64(), s.insertions);
    assert_eq!(field(obj, "deletions").as_u64(), s.deletions);
    assert_eq!(field(obj, "queries").as_u64(), s.queries);
    assert_eq!(field(obj, "incremental").as_u64(), s.incremental);
    assert_eq!(field(obj, "resolves").as_u64(), s.resolves);
    assert!((field(obj, "resolve_seconds").as_f64() - s.resolve_seconds).abs() < 1e-6);
    assert_eq!(field(obj, "cactus_rebuilds").as_u64(), s.cactus_rebuilds);
    assert_eq!(field(obj, "cactus_absorbed").as_u64(), s.cactus_absorbed);
    assert_eq!(field(obj, "cactus_repairs").as_u64(), s.cactus_repairs);
    assert_eq!(field(obj, "repair_fallbacks").as_u64(), s.repair_fallbacks);
    assert!((field(obj, "cactus_seconds").as_f64() - s.cactus_seconds).abs() < 1e-6);

    // Exercised counters really are non-zero, so the equalities above
    // compared real values, not default zeros.
    assert_eq!(s.insertions, 1);
    assert_eq!(s.deletions, 1);
    assert_eq!(s.queries, 2);
}
