//! Criterion end-to-end solver benchmarks on fixed seeded instances:
//! every algorithm variant of the paper's evaluation on one RHG graph and
//! one social-network-proxy k-core. `cargo bench` output gives the same
//! sequential ranking as Figures 2–4 in miniature.

use criterion::{criterion_group, criterion_main, Criterion};
use mincut_bench::runner::{run_once, BenchSpec};
use mincut_core::PqKind;
use mincut_graph::generators::{barabasi_albert, random_hyperbolic_graph, RhgParams};
use mincut_graph::kcore::k_core_lcc;
use mincut_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn rhg_instance() -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(12);
    random_hyperbolic_graph(&RhgParams::paper(1 << 10, 16.0), &mut rng)
}

fn social_instance() -> CsrGraph {
    // BA with attach 8 has degeneracy exactly 8: the 8-core is the whole
    // hub-heavy graph, the deepest non-empty core.
    let mut rng = SmallRng::seed_from_u64(13);
    let ba = barabasi_albert(1 << 10, 8, &mut rng);
    let core = k_core_lcc(&ba, 8).0;
    assert!(core.n() > 2, "benchmark instance must be non-trivial");
    core
}

fn algos() -> Vec<BenchSpec> {
    let mut v: Vec<BenchSpec> = [
        "HO-CGKLS",
        "NOI-HNSS",
        "NOIλ̂-Heap",
        "NOIλ̂-BStack",
        "NOIλ̂-BQueue",
        "NOIλ̂-Heap-VieCut",
        "VieCut",
        "StoerWagner",
        // Karger–Stein is orders of magnitude slower (the point the paper's
        // §4.1 cites); it is measured once in the fig/showdown harnesses
        // rather than criterion-sampled here.
    ]
    .into_iter()
    .map(BenchSpec::named)
    .collect();
    v.push(BenchSpec::parcut(PqKind::BQueue, 2));
    v
}

fn bench_solvers(c: &mut Criterion) {
    for (label, g) in [
        ("rhg_2^10", rhg_instance()),
        ("ba_2^10_k8", social_instance()),
    ] {
        let mut group = c.benchmark_group(format!("solvers_{label}"));
        for algo in algos() {
            group.bench_function(algo.to_string(), |b| b.iter(|| run_once(&g, &algo, 3).0));
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_solvers
}
criterion_main!(benches);
