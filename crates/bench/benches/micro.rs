//! Criterion micro-benchmarks for the building blocks — the ablations
//! DESIGN.md calls out: priority-queue implementations head to head,
//! bounded vs unbounded scans, sequential vs concurrent union-find,
//! sequential vs parallel contraction, label propagation, push-relabel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mincut_core::capforest::capforest;
use mincut_core::viecut::label_propagation;
use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, ConcurrentUnionFind, MaxPq, UnionFind};
use mincut_graph::contract::{contract, contract_parallel, ContractionEngine};
use mincut_graph::generators::{connected_gnm, random_hyperbolic_graph, RhgParams};
use mincut_graph::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph() -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(2);
    random_hyperbolic_graph(&RhgParams::paper(1 << 12, 16.0), &mut rng)
}

fn bench_priority_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("pq_mixed_ops");
    let n = 1 << 12;
    let ops: Vec<(u32, u64)> = {
        let mut x = 88172645463325252u64;
        (0..4 * n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % n as u64) as u32, x % 1000)
            })
            .collect()
    };
    fn run<P: MaxPq>(n: usize, ops: &[(u32, u64)]) -> u64 {
        let mut q = P::new();
        q.reset(n, 1000);
        let mut acc = 0;
        let mut popped = vec![false; n];
        for &(v, delta) in ops {
            if popped[v as usize] {
                continue;
            }
            if q.contains(v) {
                let p = (q.priority(v) + delta).min(1000);
                q.raise(v, p);
            } else {
                q.push(v, delta.min(1000));
            }
            if delta % 7 == 0 {
                if let Some((w, p)) = q.pop_max() {
                    popped[w as usize] = true;
                    acc += p;
                }
            }
        }
        while let Some((_, p)) = q.pop_max() {
            acc += p;
        }
        acc
    }
    group.bench_function("BStack", |b| b.iter(|| run::<BStackPq>(n, &ops)));
    group.bench_function("BQueue", |b| b.iter(|| run::<BQueuePq>(n, &ops)));
    group.bench_function("Heap", |b| b.iter(|| run::<BinaryHeapPq>(n, &ops)));
    group.finish();
}

fn bench_capforest(c: &mut Criterion) {
    let g = test_graph();
    let lh = g.min_weighted_degree().unwrap().1;
    let mut group = c.benchmark_group("capforest_pass");
    group.bench_function("bounded_BStack", |b| {
        b.iter(|| capforest::<BStackPq>(&g, lh, 0, true).unions)
    });
    group.bench_function("bounded_BQueue", |b| {
        b.iter(|| capforest::<BQueuePq>(&g, lh, 0, true).unions)
    });
    group.bench_function("bounded_Heap", |b| {
        b.iter(|| capforest::<BinaryHeapPq>(&g, lh, 0, true).unions)
    });
    group.bench_function("unbounded_Heap", |b| {
        b.iter(|| capforest::<BinaryHeapPq>(&g, lh, 0, false).unions)
    });
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let n = 1 << 14;
    let pairs: Vec<(u32, u32)> = {
        let mut x = 123456789u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % n as u64) as u32, ((x >> 20) % n as u64) as u32)
            })
            .collect()
    };
    let mut group = c.benchmark_group("union_find");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n);
            for &(a, bb) in &pairs {
                uf.union(a, bb);
            }
            uf.count()
        })
    });
    group.bench_function("concurrent_1thread", |b| {
        b.iter(|| {
            let uf = ConcurrentUnionFind::new(n);
            for &(a, bb) in &pairs {
                uf.union(a, bb);
            }
            uf.count()
        })
    });
    group.finish();
}

fn bench_contraction(c: &mut Criterion) {
    let g = test_graph();
    let labels: Vec<NodeId> = (0..g.n() as NodeId).map(|v| v / 16).collect();
    let blocks = g.n().div_ceil(16);
    let mut group = c.benchmark_group("contraction");
    group.bench_function("sequential", |b| {
        b.iter(|| contract(&g, &labels, blocks).m())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| contract_parallel(&g, &labels, blocks).m())
    });
    // The solvers' actual hot path: one engine reused across rounds, so
    // accumulation tables and both CSR buffers stay warm.
    group.bench_function("engine_reused", |b| {
        let mut engine = ContractionEngine::new();
        b.iter(|| {
            let c = engine.contract(&g, &labels, blocks);
            let m = c.m();
            engine.recycle(c);
            m
        })
    });
    group.finish();
}

fn bench_label_propagation(c: &mut Criterion) {
    let g = test_graph();
    c.bench_function("label_propagation_2it", |b| {
        b.iter(|| label_propagation(&g, 2, 5).1)
    });
}

fn bench_push_relabel(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let g = connected_gnm(2000, 12_000, &mut rng);
    c.bench_function("push_relabel_st", |b| {
        b.iter(|| mincut_flow::max_flow(&g, 0, (g.n() - 1) as NodeId).value)
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for exp in [10u32, 12] {
        group.bench_with_input(BenchmarkId::new("rhg", exp), &exp, |b, &exp| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                random_hyperbolic_graph(&RhgParams::paper(1 << exp, 16.0), &mut rng).m()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_priority_queues, bench_capforest, bench_union_find, bench_contraction, bench_label_propagation, bench_push_relabel, bench_generators
}
criterion_main!(benches);
