//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md, "Per-experiment index").

pub mod instances;
pub mod report;
pub mod runner;
pub mod table;
