//! Benchmark instance families, mirroring the paper's evaluation set
//! (§4.1, Appendix A) at laptop scale.
//!
//! The paper uses random hyperbolic graphs with n = 2^20–2^25 and k-cores
//! of web/social graphs with up to 3.3 billion edges on a 24-thread
//! 1.5 TB machine. This harness regenerates the same *experiment shapes*
//! at sizes controlled by `SMC_SCALE`:
//!
//! * `SMC_SCALE=tiny`  — smoke-test sizes (CI);
//! * `SMC_SCALE=small` — default: minutes on a laptop core;
//! * `SMC_SCALE=full`  — the largest sizes this machine's memory allows.

use mincut_ds::hash::FxHashSet;
use mincut_graph::generators::{
    barabasi_albert, gnm, random_hyperbolic_graph, rmat, RhgParams, RmatParams,
};
use mincut_graph::kcore::k_core_lcc;
use mincut_graph::{CsrGraph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Social-network proxy (stands in for hollywood-2011 / com-orkut /
/// twitter-2010, DESIGN.md substitution table): preferential attachment
/// for the power-law hubs, overlaid with an Erdős–Rényi layer so the core
/// decomposition has the shallow-but-nonempty hierarchy of real social
/// graphs (BA alone has degeneracy exactly its attach parameter), plus
/// weakly-attached dense satellite cliques. The satellites are what makes
/// the paper's benchmark cores interesting: a k-core keeps every clique
/// larger than k while the handful of attachment edges caps λ far below
/// the minimum degree δ = k (compare Table 1, where λ ∈ {1, …, 77} while
/// δ = k up to 1000).
pub fn social_proxy(n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ba = barabasi_albert(n, 4, &mut rng);
    let overlay = gnm(n, 4 * n, &mut rng);
    // Satellites: (clique size, number of attachment edges). A clique of
    // size s survives exactly the k-cores with k ≤ s − 1, so deeper cores
    // retain fewer satellites and the minimum cut grows with k.
    let satellites: &[(usize, usize)] = &[(8, 2), (10, 3), (12, 4), (16, 5)];
    let extra: usize = satellites.iter().map(|&(s, _)| s).sum();
    let total = n + extra;
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut b = GraphBuilder::with_capacity(total, ba.m() + overlay.m() + 256);
    for (u, v, _) in ba.edges().chain(overlay.edges()) {
        if seen.insert((u, v)) {
            b.add_edge(u, v, 1);
        }
    }
    let mut base = n as u32;
    for &(s, attach) in satellites {
        for i in 0..s as u32 {
            for j in i + 1..s as u32 {
                b.add_edge(base + i, base + j, 1);
            }
        }
        for a in 0..attach as u32 {
            // Attach to early BA vertices — the high-degree hubs.
            b.add_edge(base + a, a, 1);
        }
        base += s as u32;
    }
    b.build()
}

/// Size preset read from `SMC_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        // Warn-once on typos (shared `env_knob` contract): a typo'd
        // SMC_SCALE silently running `small` wastes a bench session.
        mincut_ds::env_knob(
            "SMC_SCALE",
            "tiny|small|full",
            "small",
            Scale::Small,
            |v| match v {
                "tiny" => Some(Scale::Tiny),
                "small" => Some(Scale::Small),
                "full" => Some(Scale::Full),
                _ => None,
            },
        )
    }

    /// Repetitions per (instance, algorithm) measurement; the paper uses 5.
    pub fn repetitions(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 3,
            Scale::Full => 5,
        }
    }
}

/// A named benchmark instance.
pub struct Instance {
    pub name: String,
    pub graph: CsrGraph,
}

impl Instance {
    fn new(name: impl Into<String>, graph: CsrGraph) -> Self {
        Instance {
            name: name.into(),
            graph,
        }
    }
}

/// Web-graph proxy (stands in for uk-2002 / gsh-2015-host / uk-2007-05):
/// RMAT with Graph500 parameters — a deep core hierarchy, degeneracy in
/// the dozens — plus two large satellite cliques each attached by a
/// *single* edge. Every core that keeps a satellite has λ = 1, exactly
/// the pattern of the paper's web cores (Table 1: λ = 1 on all uk-* and
/// gsh-* cores).
pub fn web_proxy(scale_exp: u32, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 1usize << scale_exp;
    let g = rmat(scale_exp, n * 8, RmatParams::default(), &mut rng);
    let satellites: &[usize] = &[20, 34];
    let extra: usize = satellites.iter().sum();
    let mut b = GraphBuilder::with_capacity(n + extra, g.m() + 700);
    for (u, v, w) in g.edges() {
        b.add_edge(u, v, w);
    }
    let mut base = n as u32;
    for &s in satellites {
        for i in 0..s as u32 {
            for j in i + 1..s as u32 {
                b.add_edge(base + i, base + j, 1);
            }
        }
        // One attachment edge to a (likely high-core) low-id vertex.
        b.add_edge(base, 0, 1);
        base += s as u32;
    }
    b.build()
}

/// Figure 2 grid: RHG graphs over (log2 n, log2 avg-degree).
/// Paper: n = 2^20–2^25, degree 2^5–2^8.
pub fn fig2_grid(scale: Scale) -> Vec<(u32, u32, Instance)> {
    let (n_exps, d_exps): (Vec<u32>, Vec<u32>) = match scale {
        Scale::Tiny => (vec![10, 11], vec![4, 5]),
        Scale::Small => (vec![11, 12, 13], vec![5, 6, 7]),
        Scale::Full => (vec![12, 13, 14, 15], vec![5, 6, 7, 8]),
    };
    let mut out = Vec::new();
    for &ne in &n_exps {
        for &de in &d_exps {
            if de + 3 > ne {
                continue; // degree too close to n
            }
            let mut rng = SmallRng::seed_from_u64(1000 + (ne * 31 + de) as u64);
            let params = RhgParams::paper(1 << ne, (1u64 << de) as f64);
            let g = random_hyperbolic_graph(&params, &mut rng);
            out.push((ne, de, Instance::new(format!("rhg_2^{ne}_deg2^{de}"), g)));
        }
    }
    out
}

/// "Real-world" proxy instances: k-cores of skewed synthetic graphs
/// (substitution documented in DESIGN.md), prepared exactly like the
/// paper's Table 1 (k-core, then largest connected component).
pub fn realworld_proxies(scale: Scale) -> Vec<Instance> {
    let (ba_n, rmat_scale) = match scale {
        Scale::Tiny => (1 << 10, 10),
        Scale::Small => (1 << 13, 13),
        Scale::Full => (1 << 15, 15),
    };
    let mut out = Vec::new();

    // Social-network proxy, several cores (shallow hierarchy).
    let ba = social_proxy(ba_n, 42);
    for k in [6, 8, 10] {
        let (core, _) = k_core_lcc(&ba, k);
        if core.n() > 64 {
            out.push(Instance::new(format!("social_{ba_n}_k{k}"), core));
        }
    }

    // Web-graph proxy: RMAT with Graph500 parameters (deep hierarchy).
    let g = web_proxy(rmat_scale, 43);
    for k in [6, 10, 16] {
        let (core, _) = k_core_lcc(&g, k);
        if core.n() > 64 {
            out.push(Instance::new(format!("web_2^{rmat_scale}_k{k}"), core));
        }
    }
    out
}

/// The five scaling instances of Figure 5: two RHG graphs and three
/// proxy k-cores.
pub fn fig5_instances(scale: Scale) -> Vec<Instance> {
    let (rhg_exp, ba_n, rmat_scale) = match scale {
        Scale::Tiny => (10u32, 1 << 10, 10u32),
        Scale::Small => (13, 1 << 13, 13),
        Scale::Full => (15, 1 << 15, 15),
    };
    let mut out = Vec::new();
    for (i, de) in [5u32, 6].iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(777 + i as u64);
        let params = RhgParams::paper(1 << rhg_exp, (1u64 << *de) as f64);
        out.push(Instance::new(
            format!("rhg_2^{rhg_exp}_deg2^{de}_{}", i + 1),
            random_hyperbolic_graph(&params, &mut rng),
        ));
    }
    let ba = social_proxy(ba_n, 42);
    let (core, _) = k_core_lcc(&ba, 8);
    out.push(Instance::new(format!("social_{ba_n}_k8"), core));
    let g = web_proxy(rmat_scale, 43);
    for k in [8u32, 16] {
        let (core, _) = k_core_lcc(&g, k);
        out.push(Instance::new(format!("web_2^{rmat_scale}_k{k}"), core));
    }
    out.retain(|i| i.graph.n() > 64);
    out
}

/// The batch-serving corpus: 64 instances mixing every generator family
/// at sizes set by `SMC_SCALE`, the workload of the `batch_throughput`
/// bench and the service's differential tests (batch vs. serial Session
/// loop). Deterministic: instance `i` is always the same graph.
pub fn batch_corpus(scale: Scale) -> Vec<Instance> {
    use mincut_graph::generators::known;
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 4,
        Scale::Full => 16,
    };
    let mut out = Vec::with_capacity(64);
    for i in 0..64usize {
        let v = i / 4; // variant within the family, 0..16
        let (name, graph) = match i % 4 {
            0 => {
                let (a, b) = (6 + v * unit, 7 + v * unit);
                let (g, _) = known::two_communities(a, b, 2, (2 + v % 3) as u64, 1);
                (format!("two_communities_{a}_{b}"), g)
            }
            1 => {
                let (k, s) = (4 + v % 5, (4 + v) * unit.min(4));
                let (g, _) = known::ring_of_cliques(k.max(3), s.max(3), 2, 1);
                (format!("ring_of_cliques_{k}_{s}"), g)
            }
            2 => {
                let (r, c) = (3 + v, 4 + v * unit);
                let (g, _) = known::grid_graph(r, c, 1 + (v % 2) as u64);
                (format!("grid_{r}x{c}"), g)
            }
            _ => {
                let n = (24 + 8 * v) * unit;
                let mut rng = SmallRng::seed_from_u64(9000 + i as u64);
                (format!("gnm_{n}"), gnm(n, 3 * n, &mut rng))
            }
        };
        out.push(Instance::new(format!("{i:02}_{name}"), graph));
    }
    out
}

/// Thread counts exercised by the scaling figure. The paper uses
/// 1, 2, 4, 8, 12, 24 on a 12-core machine; we keep the list but cap it
/// at 2× the available parallelism (oversubscription column, like the
/// paper's 24-on-12).
pub fn fig5_thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    [1usize, 2, 4, 8, 12, 24]
        .into_iter()
        .filter(|&t| t <= (2 * hw).max(2))
        .collect()
}
