//! Minimal aligned-table and CSV output for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// Collects rows and renders them as an aligned text table (stdout) and a
/// CSV file under `results/`.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        print!("{}", self.render());
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = writeln!(f, "{}", self.header.join(","));
                for row in &self.rows {
                    let _ = writeln!(f, "{}", row.join(","));
                }
                eprintln!("[written {}]", path.display());
            }
        }
    }
}

/// Geometric mean of a slice of positive ratios.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("a  bee") || r.contains("  a  bee"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn geomean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
