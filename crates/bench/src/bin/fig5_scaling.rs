//! Regenerates **Figure 5** of the paper: strong-scaling of the parallel
//! algorithm. For five large instances and p ∈ {1, 2, 4, 8, 12, 24}
//! (capped by the machine), it reports, per queue variant:
//!
//! * top row of the paper — self-relative scalability
//!   `t(ParCut, 1 thread) / t(ParCut, p threads)`;
//! * bottom row — speedup against the best *sequential* algorithm
//!   (NOIλ̂-BStack or NOIλ̂-Heap, whichever is faster per instance), the
//!   ratio in which the paper reports its headline 12.9×.
//!
//! NOTE on this machine: with a single hardware core, the scalability
//! numbers necessarily hover around (or below) 1; the harness and its
//! output format are the deliverable, the absolute speedups are not
//! reproducible without cores (EXPERIMENTS.md discusses this).

use mincut_bench::instances::{fig5_instances, fig5_thread_counts, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::runner::{run_avg, BenchSpec};
use mincut_bench::table::Table;
use mincut_core::PqKind;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.repetitions();
    let threads = fig5_thread_counts();
    let mut report = BenchReport::new("fig5_scaling", scale);
    println!("== Figure 5: scaling of ParCutλ̂ (scale {scale:?}, threads {threads:?}) ==\n");

    let mut table = Table::new(&[
        "graph",
        "pq",
        "threads",
        "lambda",
        "seconds",
        "scalability",
        "speedup_vs_best_seq",
    ]);

    for inst in fig5_instances(scale) {
        let g = &inst.graph;
        eprintln!("[instance {} : n={} m={}]", inst.name, g.n(), g.m());

        // Best sequential baseline, as in the paper's bottom row.
        let (seq_value, t_heap) = run_avg(g, &BenchSpec::noi_bounded(PqKind::Heap), reps, 3);
        let (_, t_bstack) = run_avg(g, &BenchSpec::noi_bounded(PqKind::BStack), reps, 3);
        let best_seq = t_heap.min(t_bstack);
        for (spec, secs) in [
            (BenchSpec::noi_bounded(PqKind::Heap), t_heap),
            (BenchSpec::noi_bounded(PqKind::BStack), t_bstack),
        ] {
            let mut entry = BenchEntry::named(&inst.name, &spec.solver, spec.threads, g.n(), g.m());
            entry.lambda = seq_value;
            entry.wall_s = secs;
            entry.reps = reps;
            report.push(entry);
        }

        for pq in [PqKind::BStack, PqKind::BQueue, PqKind::Heap] {
            let mut t1 = None;
            for &p in &threads {
                let spec = BenchSpec::parcut(pq, p);
                let (value, secs) = run_avg(g, &spec, reps, 5);
                assert_eq!(value, seq_value, "parallel result must match sequential");
                let mut entry =
                    BenchEntry::named(&inst.name, &spec.solver, spec.threads, g.n(), g.m());
                entry.lambda = value;
                entry.wall_s = secs;
                entry.reps = reps;
                report.push(entry);
                let t1v = *t1.get_or_insert(secs);
                table.row(vec![
                    inst.name.clone(),
                    pq.to_string(),
                    p.to_string(),
                    value.to_string(),
                    format!("{secs:.4}"),
                    format!("{:.2}", t1v / secs),
                    format!("{:.2}", best_seq / secs),
                ]);
            }
        }
    }
    table.emit("fig5_scaling");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }
    println!("\nPaper reference points: ParCutλ̂-BQueue reaches speedup 12.9x at");
    println!("24 threads on twitter-2010 k=50; sequential-dominant instances");
    println!("(low minimum degree) only break even at several threads.");
}
