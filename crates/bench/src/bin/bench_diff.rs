//! Diffs two `BENCH_<name>.json` baselines: the regression detector of
//! the performance protocol (ROADMAP "Performance").
//!
//! ```text
//! bench-diff OLD.json NEW.json [--solver PREFIX] [--min-geomean X]
//! ```
//!
//! Rows are joined by `(instance, solver, threads)`; every joined pair
//! prints old/new wall seconds and the speedup, then the geometric mean
//! over the joined set (and per-solver sub-geomeans when more than one
//! solver matched). λ must agree on every joined pair — a mismatch is a
//! correctness regression, not a perf delta, and always fails the run.
//!
//! * `--solver PREFIX` restricts the join to solvers starting with
//!   `PREFIX` (e.g. `--solver noi-viecut` matches the solver and its
//!   `/legacy` control rows; use an exact name to exclude the controls).
//! * `--min-geomean X` turns the report into a gate: exit non-zero
//!   unless the geomean speedup over the joined rows is ≥ X. Without it
//!   the run is informational (CI uses that mode at tiny scale, where
//!   wall times are noise).
//!
//! Cross-machine baselines are meaningless: both files must come from
//! the same machine (the committed `results/` protocol regenerates the
//! old baseline from its tagged commit on the current machine first).
//! The tool warns when the recorded `hardware_threads` or `simd_tier`
//! differ.

use std::process::ExitCode;

use mincut_bench::report::{LoadedEntry, LoadedReport};
use mincut_bench::table::Table;

struct Args {
    old: String,
    new: String,
    solver_prefix: Option<String>,
    min_geomean: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut solver_prefix = None;
    let mut min_geomean = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--solver" => {
                solver_prefix = Some(it.next().ok_or("--solver needs a value")?);
            }
            "--min-geomean" => {
                let v = it.next().ok_or("--min-geomean needs a value")?;
                min_geomean = Some(
                    v.parse::<f64>()
                        .map_err(|e| format!("--min-geomean: {e}"))?,
                );
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ => positional.push(a),
        }
    }
    if positional.len() != 2 {
        return Err(
            "usage: bench-diff OLD.json NEW.json [--solver PREFIX] [--min-geomean X]".to_string(),
        );
    }
    Ok(Args {
        old: positional.remove(0),
        new: positional.remove(0),
        solver_prefix,
        min_geomean,
    })
}

fn geomean(speedups: &[f64]) -> f64 {
    (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (old, new) = match (LoadedReport::load(&args.old), LoadedReport::load(&args.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for r in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== bench-diff: {} ({}, scale {}) -> {} ({}, scale {}) ==\n",
        args.old, old.name, old.scale, args.new, new.name, new.scale
    );
    if old.hardware_threads != new.hardware_threads {
        eprintln!(
            "warning: baselines record different hardware_threads ({} vs {}) — \
             cross-machine wall times do not compare",
            old.hardware_threads, new.hardware_threads
        );
    }
    // Reports written before the field existed record no tier; only warn
    // when both sides carry one and they disagree.
    if !old.simd_tier.is_empty() && !new.simd_tier.is_empty() && old.simd_tier != new.simd_tier {
        eprintln!(
            "warning: baselines record different simd_tier ({} vs {}) — \
             cross-machine wall times do not compare",
            old.simd_tier, new.simd_tier
        );
    }

    let matches = |e: &LoadedEntry| {
        args.solver_prefix
            .as_deref()
            .is_none_or(|p| e.solver.starts_with(p))
    };
    let mut table = Table::new(&[
        "instance", "solver", "thr", "old_s", "new_s", "speedup", "lambda",
    ]);
    let mut joined: Vec<(String, f64)> = Vec::new();
    let mut lambda_mismatches = 0usize;
    for oe in old.entries.iter().filter(|e| matches(e)) {
        let Some(ne) = new.entries.iter().find(|ne| ne.key() == oe.key()) else {
            continue;
        };
        if oe.lambda != ne.lambda {
            eprintln!(
                "error: λ mismatch on {}/{}/{}t: {} -> {}",
                oe.instance, oe.solver, oe.threads, oe.lambda, ne.lambda
            );
            lambda_mismatches += 1;
        }
        // Degenerate timings (a zero from clock granularity) would poison
        // the geomean; clamp to a nanosecond.
        let speedup = oe.wall_s.max(1e-9) / ne.wall_s.max(1e-9);
        table.row(vec![
            oe.instance.clone(),
            oe.solver.clone(),
            oe.threads.to_string(),
            format!("{:.6}", oe.wall_s),
            format!("{:.6}", ne.wall_s),
            format!("{speedup:.3}"),
            ne.lambda.to_string(),
        ]);
        joined.push((oe.solver.clone(), speedup));
    }
    table.emit("diff");

    if joined.is_empty() {
        eprintln!("\nerror: no rows joined (check --solver and the two files)");
        return ExitCode::FAILURE;
    }
    let mut solvers: Vec<String> = joined.iter().map(|(s, _)| s.clone()).collect();
    solvers.sort();
    solvers.dedup();
    if solvers.len() > 1 {
        println!();
        for s in &solvers {
            let sub: Vec<f64> = joined
                .iter()
                .filter(|(sv, _)| sv == s)
                .map(|&(_, sp)| sp)
                .collect();
            println!(
                "geomean [{s}]: {:.3}x over {} rows",
                geomean(&sub),
                sub.len()
            );
        }
    }
    let all: Vec<f64> = joined.iter().map(|&(_, s)| s).collect();
    let g = geomean(&all);
    println!("\ngeomean speedup: {g:.3}x over {} joined rows", all.len());

    if lambda_mismatches > 0 {
        eprintln!("\nFAIL: {lambda_mismatches} λ mismatches — correctness regression");
        return ExitCode::FAILURE;
    }
    if let Some(bar) = args.min_geomean {
        if g < bar {
            eprintln!("\nFAIL: geomean {g:.3}x below the required {bar:.2}x");
            return ExitCode::FAILURE;
        }
        println!("PASS: geomean {g:.3}x >= {bar:.2}x");
    }
    ExitCode::SUCCESS
}
