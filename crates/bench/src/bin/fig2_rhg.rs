//! Regenerates **Figure 2** of the paper: running time in nanoseconds per
//! edge on random hyperbolic graphs, one series per algorithm, over a grid
//! of (number of vertices × average degree).
//!
//! Paper shape to check (§4.2): HO-CGKLS is slowest everywhere; the NOI
//! variants are within a small factor of each other on RHG (priorities
//! rarely exceed λ̂, so bounding saves little); the VieCut-seeded variants
//! win on the *denser* grids, losing only on very sparse ones where plain
//! NOI is already near-linear.

use mincut_bench::instances::{fig2_grid, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::runner::{fig2_algorithms, run_avg};
use mincut_bench::table::Table;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.repetitions();
    let mut report = BenchReport::new("fig2_rhg", scale);
    println!("== Figure 2: ns/edge on RHG graphs (scale {scale:?}, {reps} reps) ==\n");
    let mut table = Table::new(&[
        "log2_n",
        "log2_deg",
        "n",
        "m",
        "algorithm",
        "lambda",
        "ns_per_edge",
    ]);

    for (ne, de, inst) in fig2_grid(scale) {
        let g = &inst.graph;
        let m = g.m();
        eprintln!("[instance {} : n={} m={}]", inst.name, g.n(), m);
        let mut reference = None;
        for algo in fig2_algorithms() {
            let (value, secs) = run_avg(g, &algo, reps, 7);
            match reference {
                None => reference = Some(value),
                Some(r) => assert_eq!(r, value, "exact algorithms disagree on {}", inst.name),
            }
            let mut entry = BenchEntry::named(&inst.name, &algo.solver, algo.threads, g.n(), m);
            entry.lambda = value;
            entry.wall_s = secs;
            entry.reps = reps;
            report.push(entry);
            let ns_per_edge = secs * 1e9 / m as f64;
            table.row(vec![
                ne.to_string(),
                de.to_string(),
                g.n().to_string(),
                m.to_string(),
                algo.to_string(),
                value.to_string(),
                format!("{ns_per_edge:.1}"),
            ]);
        }
    }
    table.emit("fig2_rhg");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }
}
