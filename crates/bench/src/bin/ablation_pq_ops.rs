//! Ablation for §3.1.2 of the paper: how many priority-queue operations
//! does the λ̂ cap save?
//!
//! The paper: "In practice, many vertices reach priority values much
//! higher than λ̂ and perform many priority increases until they reach
//! their final value. We limit the values in the priority queue by λ̂ …
//! This allows us to considerably lower the amount of priority queue
//! operations per vertex", and §4.2 observes the savings are small on RHG
//! (few vertices exceed λ̂: "usually, less than 5% of edges do not incur
//! an update") and large on skewed real-world graphs ("NOI-HNSS often
//! reaches priority values of much higher than λ̂").
//!
//! This binary runs a *single CAPFOREST pass* over each instance with an
//! instrumented queue, bounded vs unbounded, and with the trivial bound
//! (min degree) vs the VieCut bound, printing the exact operation counts.

use mincut_bench::instances::{realworld_proxies, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::capforest::capforest;
use mincut_core::viecut::{viecut, VieCutConfig};
use mincut_ds::{BinaryHeapPq, CountingPq};
use mincut_graph::generators::{random_hyperbolic_graph, RhgParams};
use mincut_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

type Instrumented = CountingPq<BinaryHeapPq>;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("ablation_pq_ops", scale);
    println!("== Ablation (§3.1.2): priority-queue operations in one CAPFOREST pass ==\n");
    let mut table = Table::new(&[
        "graph",
        "m",
        "variant",
        "bound",
        "pushes",
        "raises",
        "pops",
        "total",
        "saved_vs_unbounded",
    ]);

    let mut instances: Vec<(String, CsrGraph)> = Vec::new();
    let rhg_n = match scale {
        Scale::Tiny => 1 << 10,
        Scale::Small => 1 << 13,
        Scale::Full => 1 << 15,
    };
    let mut rng = SmallRng::seed_from_u64(3);
    instances.push((
        "rhg_deg2^5".into(),
        random_hyperbolic_graph(&RhgParams::paper(rhg_n, 32.0), &mut rng),
    ));
    for inst in realworld_proxies(scale) {
        instances.push((inst.name, inst.graph));
    }

    for (name, g) in instances {
        let delta = g.min_weighted_degree().unwrap().1;
        let vc = viecut(
            &g,
            &VieCutConfig {
                compute_side: false,
                ..Default::default()
            },
        )
        .value;

        let mut baseline_total = None;
        for (variant, slug, bounded, bound) in [
            ("unbounded (NOI-HNSS)", "ablation/unbounded", false, delta),
            ("bounded δ (NOIλ̂)", "ablation/bounded-delta", true, delta),
            (
                "bounded VieCut (NOIλ̂-VieCut)",
                "ablation/bounded-viecut",
                true,
                vc,
            ),
        ] {
            let t0 = std::time::Instant::now();
            let out = capforest::<Instrumented>(&g, bound, 0, bounded);
            let scan_s = t0.elapsed().as_secs_f64();
            let c = out.pq_ops;
            let base = *baseline_total.get_or_insert(c.total());
            let mut entry = BenchEntry::named(&name, slug, 1, g.n(), g.m());
            entry.lambda = out.lambda_hat;
            entry.wall_s = scan_s;
            entry.pq_pushes = c.pushes;
            entry.pq_raises = c.raises;
            entry.pq_pops = c.pops;
            report.push(entry);
            table.row(vec![
                name.clone(),
                g.m().to_string(),
                variant.to_string(),
                bound.to_string(),
                c.pushes.to_string(),
                c.raises.to_string(),
                c.pops.to_string(),
                c.total().to_string(),
                format!("{:.1}%", 100.0 * (1.0 - c.total() as f64 / base as f64)),
            ]);
            let _ = out;
        }
    }
    table.emit("ablation_pq_ops");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }
    println!("\nShape check vs paper: savings near zero on RHG, substantial on");
    println!("the skewed (hub-heavy) proxies, larger still with the VieCut bound.");
}
