//! Regenerates **Figure 4** of the paper: the performance profile over
//! all instances. For each algorithm, the per-instance ratios
//! `t_best / t_algorithm` are sorted in increasing order; an algorithm
//! whose curve dominates another's outperforms it. A value of 1 means the
//! algorithm was the fastest on that instance.
//!
//! Paper shape to check: NOIλ̂-Heap-VieCut is at or near ratio 1 on all
//! but the sparsest instances; HO-CGKLS and NOI-CGKLS are dominated
//! everywhere.

use mincut_bench::instances::{fig2_grid, realworld_proxies, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::runner::{fig2_algorithms, run_avg};
use mincut_bench::table::Table;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.repetitions();
    println!("== Figure 4: performance profile t_best/t_algo (scale {scale:?}) ==\n");

    let algorithms = fig2_algorithms();
    // All instances: the RHG grid plus the real-world proxies.
    let mut instances = Vec::new();
    for (_, _, inst) in fig2_grid(scale) {
        instances.push(inst);
    }
    instances.extend(realworld_proxies(scale));

    let mut report = BenchReport::new("fig4_profile", scale);
    // times[a][i] = seconds of algorithm a on instance i.
    let mut times = vec![Vec::new(); algorithms.len()];
    for inst in &instances {
        eprintln!(
            "[instance {} : n={} m={}]",
            inst.name,
            inst.graph.n(),
            inst.graph.m()
        );
        let mut reference = None;
        for (ai, algo) in algorithms.iter().enumerate() {
            let (value, secs) = run_avg(&inst.graph, algo, reps, 13);
            match reference {
                None => reference = Some(value),
                Some(r) => assert_eq!(r, value, "exact algorithms disagree on {}", inst.name),
            }
            let g = &inst.graph;
            let mut entry = BenchEntry::named(&inst.name, &algo.solver, algo.threads, g.n(), g.m());
            entry.lambda = value;
            entry.wall_s = secs;
            entry.reps = reps;
            report.push(entry);
            times[ai].push(secs);
        }
    }

    let n_inst = instances.len();
    let best: Vec<f64> = (0..n_inst)
        .map(|i| times.iter().map(|t| t[i]).fold(f64::INFINITY, f64::min))
        .collect();

    let mut table = Table::new(&["algorithm", "instance_rank", "ratio_best_over_algo"]);
    for (ai, algo) in algorithms.iter().enumerate() {
        let mut ratios: Vec<f64> = (0..n_inst).map(|i| best[i] / times[ai][i]).collect();
        // The paper sorts each algorithm's ratios in increasing order.
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (rank, r) in ratios.iter().enumerate() {
            table.row(vec![
                algo.to_string(),
                (rank + 1).to_string(),
                format!("{r:.3}"),
            ]);
        }
        let fastest_on = ratios.iter().filter(|&&r| r > 0.999).count();
        println!(
            "{:<22} fastest on {fastest_on}/{n_inst} instances, median ratio {:.3}",
            algo.to_string(),
            ratios[n_inst / 2]
        );
    }
    println!();
    table.emit("fig4_profile");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }
}
