//! Ingestion A/B bench: METIS text parsing vs zero-copy `.smcpack` load.
//!
//! For each corpus instance the graph is materialised twice on disk — as
//! METIS text and as a binary pack — and both load paths are timed cold
//! (first touch after writing) and warm (best-of-reps). Before anything
//! is timed, the two loaded graphs must be *identical*: equal CSR
//! sections, equal [`CsrGraph::fingerprint`] (the pack path replays the
//! stored fingerprint without hashing), and equal λ under `noi-viecut` —
//! the pack changes how bytes reach memory, not what graph they denote.
//!
//! At `SMC_SCALE=small`/`full` the warm pack load must beat the warm
//! text parse by ≥ 10× (geometric mean over the corpus) — the PR's
//! acceptance bar; `tiny` (CI) runs the identity checks only, where a
//! mmap-vs-parse timing on an 8-vertex graph is pure noise.
//!
//! Results are persisted as `results/BENCH_<name>.json`
//! (`ingest <name>`, default `ingest`) and diff through `bench-diff`
//! like every other baseline — see ROADMAP.md "Performance".

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Instant;

use mincut_bench::instances::{social_proxy, web_proxy, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::{Session, SolveOptions};
use mincut_graph::generators::known;
use mincut_graph::io::{read_metis, write_metis};
use mincut_graph::pack::{load_pack, write_pack_file};
use mincut_graph::CsrGraph;

/// Acceptance bar: warm pack load vs warm text parse, geometric mean
/// over the corpus, at non-tiny scales.
const SPEEDUP_TARGET: f64 = 10.0;

struct Case {
    name: String,
    graph: CsrGraph,
}

/// Ingest-bound corpus: instances big enough that the text parser does
/// real per-token work (the regime the pack format exists for).
fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 10,
        Scale::Full => 28,
    };
    let mut out = Vec::new();
    let (g, _) = known::two_communities(60 * unit, 66 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::ring_of_cliques(6 + unit, 12 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
    });
    let g = social_proxy(900 * unit, 42);
    out.push(Case {
        name: format!("social_{}", g.n()),
        graph: g,
    });
    let g = web_proxy(
        match scale {
            Scale::Tiny => 9,
            Scale::Small => 13,
            Scale::Full => 15,
        },
        7,
    );
    out.push(Case {
        name: format!("web_{}", g.n()),
        graph: g,
    });
    out
}

fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    // Best-of-reps, not mean-of-reps (same protocol as `hotpath`): on a
    // throttled shared box one descheduling spike inside the batch would
    // otherwise poison the mean.
    let mut best = f64::INFINITY;
    let t0 = Instant::now();
    let mut out = f();
    let mut prev = t0.elapsed().as_secs_f64();
    best = best.min(prev);
    for _ in 1..reps {
        out = f();
        let now = t0.elapsed().as_secs_f64();
        best = best.min(now - prev);
        prev = now;
    }
    (out, best)
}

fn parse_text(path: &Path) -> CsrGraph {
    let f = File::open(path).expect("open metis text");
    read_metis(BufReader::new(f)).expect("parse metis text")
}

fn mmap_pack(path: &Path) -> CsrGraph {
    load_pack(path).expect("load pack")
}

fn lambda_of(g: &CsrGraph) -> u64 {
    Session::new(g)
        .options(SolveOptions::new().seed(0xadd))
        .run("noi-viecut")
        .expect("solve")
        .cut
        .value
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ingest".into());
    let scale = Scale::from_env();
    let reps = (scale.repetitions() * 3).max(3);
    let mut report = BenchReport::new(name, scale);
    println!("== Ingest A/B: METIS text parse vs zero-copy pack mmap (scale {scale:?}) ==\n");

    let dir = std::env::temp_dir().join(format!("smc-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let mut table = Table::new(&[
        "instance", "text_kb", "pack_kb", "text_s", "pack_s", "speedup", "lambda",
    ]);
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for case in cases(scale) {
        let g = &case.graph;
        let text_path = dir.join(format!("{}.metis", case.name));
        let pack_path = dir.join(format!("{}.smcpack", case.name));
        {
            let f = File::create(&text_path).expect("create metis text");
            write_metis(g, BufWriter::new(f)).expect("write metis text");
        }
        write_pack_file(g, &pack_path).expect("write pack");
        let text_kb = std::fs::metadata(&text_path).unwrap().len() / 1024;
        let pack_kb = std::fs::metadata(&pack_path).unwrap().len() / 1024;

        // ---- identity first, timing second: both paths must yield the
        // same graph, fingerprint and λ before a single row is recorded.
        let (tg, text_cold_s) = time_reps(1, || parse_text(&text_path));
        let (pg, pack_cold_s) = time_reps(1, || mmap_pack(&pack_path));
        assert_eq!(tg, pg, "{}: text and pack graphs differ", case.name);
        assert_eq!(
            tg.fingerprint(),
            pg.fingerprint(),
            "{}: fingerprint mismatch between load paths",
            case.name
        );
        assert_eq!(tg.fingerprint(), g.fingerprint());
        if cfg!(all(
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        )) {
            assert!(
                pg.is_mmap_backed(),
                "{}: pack load fell back to copying on a mmap-capable target",
                case.name
            );
        }
        let (tl, pl) = (lambda_of(&tg), lambda_of(&pg));
        assert_eq!(tl, pl, "{}: λ mismatch between load paths", case.name);

        // ---- warm timings, interleaved batches (min-of-batches).
        let (mut text_s, mut pack_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            let (_, t) = time_reps(reps, || parse_text(&text_path));
            text_s = text_s.min(t);
            let (_, p) = time_reps(reps, || mmap_pack(&pack_path));
            pack_s = pack_s.min(p);
        }

        let speedup = text_s.max(1e-9) / pack_s.max(1e-9);
        table.row(vec![
            case.name.clone(),
            text_kb.to_string(),
            pack_kb.to_string(),
            format!("{text_s:.6}"),
            format!("{pack_s:.6}"),
            format!("{speedup:.1}x"),
            tl.to_string(),
        ]);
        speedups.push((case.name.clone(), speedup));

        for (mode, wall_s, r) in [
            ("ingest/text-cold", text_cold_s, 1),
            ("ingest/text-warm", text_s, reps),
            ("ingest/pack-cold", pack_cold_s, 1),
            ("ingest/pack-warm", pack_s, reps),
        ] {
            let mut e = BenchEntry::named(&case.name, mode, 1, g.n(), g.m());
            e.lambda = tl;
            e.wall_s = wall_s;
            e.reps = r;
            report.push(e);
        }
    }

    println!("-- ingest: cold = first touch, warm = best of {reps} reps × 3 batches --");
    table.emit("ingest");

    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => println!("\ncould not write BENCH json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Acceptance bar: geometric mean of warm speedups across the corpus
    // (per-instance timings on a busy machine swing; the aggregate is
    // the claim the PR makes, and the tables above are emitted first so
    // a failed bar still leaves the data on disk).
    if scale != Scale::Tiny {
        let geomean = (speedups.iter().map(|(_, s)| s.ln()).sum::<f64>()
            / speedups.len().max(1) as f64)
            .exp();
        println!("\npack-mmap vs text-parse warm speedup, geometric mean: {geomean:.1}×");
        assert!(
            geomean >= SPEEDUP_TARGET,
            "pack ingest geomean speedup {geomean:.1} below the {SPEEDUP_TARGET}× acceptance \
             bar ({speedups:?})"
        );
    }
    println!("text/pack graphs, fingerprints and λ identical on every instance ✓");
}
