//! Regenerates **Table 1** of the paper: statistics of the benchmark
//! instances — original size, k, core size, minimum cut λ and minimum
//! degree δ. The web/social graphs are replaced by synthetic proxies
//! (DESIGN.md substitution table); the preparation pipeline (k-core →
//! largest connected component) and the reported columns are identical.

use mincut_bench::instances::{social_proxy, web_proxy, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::noi::{noi_minimum_cut, NoiConfig};
use mincut_graph::kcore::k_core_lcc;
use mincut_graph::{CsrGraph, NodeId};

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("table1_instances", scale);
    println!("== Table 1: instance statistics (scale {scale:?}) ==");
    println!("   paper columns: graph | n | m | k | core n | core m | λ | δ\n");
    let mut table = Table::new(&[
        "graph", "n", "m", "k", "core_n", "core_m", "lambda", "delta",
    ]);

    let (ba_n, rmat_scale) = match scale {
        Scale::Tiny => (1usize << 10, 10u32),
        Scale::Small => (1 << 13, 13),
        Scale::Full => (1 << 15, 15),
    };

    // Social-network proxy (stands in for hollywood-2011 / com-orkut /
    // twitter-2010) with four cores, like the paper's per-graph core sets.
    let ba = social_proxy(ba_n, 42);
    emit_cores(&mut table, &mut report, "social-proxy", &ba, &[5, 6, 8, 10]);

    // Web-graph proxy (stands in for uk-2002 / gsh-2015-host / uk-2007-05).
    let g = web_proxy(rmat_scale, 43);
    emit_cores(&mut table, &mut report, "web-proxy", &g, &[4, 8, 16, 30]);

    table.emit("table1_instances");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }
    println!("\nShape check vs paper: λ is far below δ on most cores (the");
    println!("cores are chosen so the minimum cut is not the trivial one).");
}

fn emit_cores(table: &mut Table, report: &mut BenchReport, name: &str, g: &CsrGraph, ks: &[u32]) {
    for &k in ks {
        let (core, _) = k_core_lcc(g, k);
        if core.n() < 8 {
            continue;
        }
        let t0 = std::time::Instant::now();
        let lambda = noi_minimum_cut(
            &core,
            &NoiConfig {
                compute_side: false,
                ..Default::default()
            },
        )
        .value;
        let mut entry = BenchEntry::named(
            &format!("{name}/k{k}"),
            "table1/noi-core-lambda",
            1,
            core.n(),
            core.m(),
        );
        entry.lambda = lambda;
        entry.wall_s = t0.elapsed().as_secs_f64();
        report.push(entry);
        let delta = (0..core.n() as NodeId)
            .map(|v| core.weighted_degree(v))
            .min()
            .unwrap();
        table.row(vec![
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            k.to_string(),
            core.n().to_string(),
            core.m().to_string(),
            lambda.to_string(),
            delta.to_string(),
        ]);
    }
}
