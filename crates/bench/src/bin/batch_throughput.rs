//! Batch-serving throughput: `MinCutService` vs. a serial `Session` loop.
//!
//! Runs the 64-instance batch corpus (`SMC_SCALE` sized) three ways and
//! reports wall-clock and relative throughput:
//!
//! 1. **serial** — one `Session::run` per instance, submission order;
//! 2. **batch p ∈ {1, 2, 4}** — the same jobs through [`MinCutService`]
//!    with 1/2/4 self-scheduling workers (cache off: every job solves);
//! 3. **resubmit** — the whole batch again with the cache on, which must
//!    be served entirely from the fingerprint cut cache.
//!
//! Values are asserted bit-identical between every mode — the bench
//! doubles as the differential harness for the serving layer. NOTE on a
//! single-core machine the batch/serial ratio hovers around 1 (no
//! parallelism to win); the ≤ 0.6× target of the roadmap applies to
//! multi-core hosts.

use std::sync::Arc;
use std::time::Instant;

use mincut_bench::instances::{batch_corpus, Scale};
use mincut_bench::table::Table;
use mincut_core::{BatchJob, MinCutService, ServiceConfig, Session, SolveOptions};

const SOLVER: &str = "noi-viecut";
const SEED: u64 = 7;

fn main() {
    let scale = Scale::from_env();
    let corpus = batch_corpus(scale);
    let opts = SolveOptions::new().seed(SEED).witness(false).threads(1);
    println!(
        "== Batch serving throughput: {} instances (scale {scale:?}, solver {SOLVER}) ==\n",
        corpus.len()
    );

    // Serial reference: one Session per instance, in order.
    let t0 = Instant::now();
    let serial: Vec<u64> = corpus
        .iter()
        .map(|inst| {
            Session::new(&inst.graph)
                .options(opts.clone())
                .run(SOLVER)
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name))
                .cut
                .value
        })
        .collect();
    let t_serial = t0.elapsed().as_secs_f64();

    let jobs: Vec<BatchJob> = corpus
        .iter()
        .map(|inst| {
            BatchJob::new(Arc::new(inst.graph.clone()), SOLVER)
                .options(opts.clone())
                .label(inst.name.clone())
        })
        .collect();

    let mut table = Table::new(&["mode", "workers", "seconds", "vs_serial", "cache_hits"]);
    table.row(vec![
        "serial".into(),
        "1".into(),
        format!("{t_serial:.4}"),
        "1.00".into(),
        "-".into(),
    ]);

    for workers in [1usize, 2, 4] {
        let service = MinCutService::new(ServiceConfig::new().concurrency(workers).cache(false));
        let t0 = Instant::now();
        let report = service.run_batch(&jobs);
        let secs = t0.elapsed().as_secs_f64();
        assert!(report.all_ok(), "batch run failed");
        for (inst, (row, &expected)) in corpus.iter().zip(report.jobs.iter().zip(&serial)) {
            assert_eq!(
                row.status.outcome().unwrap().cut.value,
                expected,
                "batch value diverged from serial on {}",
                inst.name
            );
        }
        table.row(vec![
            "batch".into(),
            workers.to_string(),
            format!("{secs:.4}"),
            format!("{:.2}", secs / t_serial),
            report.stats.cache_hits.to_string(),
        ]);
    }

    // Cache demonstration: submit twice through one caching service.
    let service = MinCutService::new(ServiceConfig::new().concurrency(4));
    let _ = service.run_batch(&jobs); // warm
    let t0 = Instant::now();
    let report = service.run_batch(&jobs); // served from cache
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.stats.cache_hits,
        jobs.len(),
        "a resubmitted batch must be served entirely from the cut cache"
    );
    for (row, &expected) in report.jobs.iter().zip(&serial) {
        assert_eq!(row.status.outcome().unwrap().cut.value, expected);
    }
    table.row(vec![
        "resubmit (cached)".into(),
        "4".into(),
        format!("{secs:.4}"),
        format!("{:.2}", secs / t_serial),
        report.stats.cache_hits.to_string(),
    ]);

    table.emit("batch_throughput");
    println!("\ncache: {:?}", service.cache_stats());
    println!("batch stats: {}", report.stats.to_json());
}
