//! Regenerates **Figure 3** of the paper: running time on "real-world"
//! graphs (here: the documented synthetic proxies), normalised by the
//! running time of NOIλ̂-Heap-VieCut, plotted against the number of edges
//! and the average degree. Also prints the §4.2 headline statistics:
//! geometric-mean speedups of NOIλ̂-Heap over NOI-HNSS, NOIλ̂-BStack over
//! NOIλ̂-Heap, and the VieCut variant over the non-VieCut variant.

use mincut_bench::instances::{realworld_proxies, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::runner::{run_avg, BenchSpec};
use mincut_bench::table::{geometric_mean, Table};

fn main() {
    let scale = Scale::from_env();
    let reps = scale.repetitions();
    let mut report = BenchReport::new("fig3_realworld", scale);
    println!("== Figure 3: slowdown vs NOIλ̂-Heap-VieCut on real-world proxies ==");
    println!("   (scale {scale:?}, {reps} reps)\n");

    // Registry spellings; the runner resolves them through SolverRegistry.
    let algorithms: Vec<BenchSpec> = [
        "HO-CGKLS",
        "NOI-CGKLS",
        "NOI-HNSS",
        "NOIλ̂-Heap",
        "NOIλ̂-BStack",
        "NOIλ̂-BQueue",
        "NOI-HNSS-VieCut",
        "NOIλ̂-Heap-VieCut",
    ]
    .into_iter()
    .map(BenchSpec::named)
    .collect();

    let mut table = Table::new(&[
        "graph",
        "m",
        "avg_deg",
        "algorithm",
        "lambda",
        "seconds",
        "slowdown",
    ]);
    let mut speedup_bounded = Vec::new(); // NOI-HNSS / NOIλ̂-Heap
    let mut speedup_bstack = Vec::new(); // NOIλ̂-Heap / NOIλ̂-BStack
    let mut speedup_viecut = Vec::new(); // NOIλ̂-Heap / NOIλ̂-Heap-VieCut

    for inst in realworld_proxies(scale) {
        let g = &inst.graph;
        eprintln!("[instance {} : n={} m={}]", inst.name, g.n(), g.m());
        let mut times = std::collections::HashMap::new();
        let mut reference = None;
        for algo in &algorithms {
            let (value, secs) = run_avg(g, algo, reps, 11);
            match reference {
                None => reference = Some(value),
                Some(r) => assert_eq!(r, value, "exact algorithms disagree on {}", inst.name),
            }
            times.insert(algo.to_string(), secs);
        }
        let base = times["NOIλ̂-Heap-VieCut"];
        for algo in &algorithms {
            let secs = times[&algo.to_string()];
            let mut entry = BenchEntry::named(&inst.name, &algo.solver, algo.threads, g.n(), g.m());
            entry.lambda = reference.unwrap();
            entry.wall_s = secs;
            entry.reps = reps;
            report.push(entry);
            table.row(vec![
                inst.name.clone(),
                g.m().to_string(),
                format!("{:.1}", g.avg_degree()),
                algo.to_string(),
                reference.unwrap().to_string(),
                format!("{secs:.4}"),
                format!("{:.2}", secs / base),
            ]);
        }
        speedup_bounded.push(times["NOI-HNSS"] / times["NOIλ̂-Heap"]);
        speedup_bstack.push(times["NOIλ̂-Heap"] / times["NOIλ̂-BStack"]);
        speedup_viecut.push(times["NOIλ̂-Heap"] / times["NOIλ̂-Heap-VieCut"]);
    }
    table.emit("fig3_realworld");
    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write report: {e}"),
    }

    println!("\n== §4.2 headline statistics (geometric means) ==");
    println!(
        "NOIλ̂-Heap vs NOI-HNSS speedup:        {:.2}x   (paper: 1.35x, up to 1.83x)",
        geometric_mean(&speedup_bounded)
    );
    println!(
        "NOIλ̂-BStack vs NOIλ̂-Heap speedup:     {:.2}x   (paper: 1.22x on real-world)",
        geometric_mean(&speedup_bstack)
    );
    println!(
        "NOIλ̂-Heap-VieCut vs NOIλ̂-Heap:        {:.2}x   (paper: 1.34x over all graphs)",
        geometric_mean(&speedup_viecut)
    );
}
