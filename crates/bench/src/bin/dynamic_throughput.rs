//! Dynamic-update throughput: `DynamicMinCut` maintenance vs. a full
//! cold re-solve after every update, at 1/2/4 threads.
//!
//! For every clustered instance the bin generates a deterministic mixed
//! insert/delete trace, replays it through (a) the incremental
//! maintainer and (b) a baseline that materialises the mutated graph and
//! runs a cold `Session` solve after each update, and checks the two λ
//! sequences are identical. The maintainer's amortized per-update cost
//! must beat one full cold solve per update on the clustered families —
//! that assertion makes this bin the CI smoke test of the dynamic
//! subsystem (`SMC_SCALE=tiny`), mirroring `reduction_impact`.
//!
//! Sizes follow `SMC_SCALE` (tiny/small/full) like every other bench bin.

use std::time::Instant;

use mincut_bench::instances::Scale;
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::dynamic::{materialize, DynamicMinCut, TraceOp};
use mincut_core::{Session, SolveOptions};
use mincut_graph::generators::known;
use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Case {
    name: String,
    graph: CsrGraph,
    /// Clustered instances must amortize below one cold solve/update.
    clustered: bool,
}

fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 3,
        Scale::Full => 8,
    };
    let mut out = Vec::new();
    let (g, _) = known::two_communities(24 * unit, 26 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
        clustered: true,
    });
    let (g, _) = known::ring_of_cliques(5 + unit, 6 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
        clustered: true,
    });
    // Control: grids re-solve often (witnesses are local), shrink little.
    let (g, _) = known::grid_graph(6 * unit, 7 * unit, 2);
    out.push(Case {
        name: format!("grid_{}", g.n()),
        graph: g,
        clustered: false,
    });
    out
}

/// Deterministic mixed trace: mostly inserts (weights 1..4), deletes of
/// live edges in between, across the whole vertex range.
fn make_trace(g: &CsrGraph, updates: usize, seed: u64) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shadow = DeltaGraph::new(g.clone());
    let n = g.n() as NodeId;
    let mut ops = Vec::with_capacity(updates);
    while ops.len() < updates {
        if shadow.m() == 0 || rng.gen_bool(0.7) {
            let (mut u, mut v) = (0, 0);
            while u == v {
                u = rng.gen_range(0..n);
                v = rng.gen_range(0..n);
            }
            let w: EdgeWeight = rng.gen_range(1..4);
            shadow.insert_edge(u, v, w);
            ops.push(TraceOp::Insert { u, v, w });
        } else {
            let live: Vec<_> = shadow.edges().collect();
            let (u, v, _) = live[rng.gen_range(0..live.len())];
            shadow.delete_edge(u, v).expect("live edge");
            ops.push(TraceOp::Delete { u, v });
        }
    }
    ops
}

fn main() {
    let scale = Scale::from_env();
    let updates = match scale {
        Scale::Tiny => 40usize,
        Scale::Small => 160,
        Scale::Full => 640,
    };
    println!("== Dynamic-update throughput (scale {scale:?}, {updates} updates) ==\n");

    let mut report = BenchReport::new("dynamic", scale);
    let mut table = Table::new(&[
        "instance",
        "threads",
        "updates",
        "resolves",
        "dyn_s",
        "full_s",
        "full/dyn",
        "dyn_upd/s",
    ]);

    for case in cases(scale) {
        let trace = make_trace(&case.graph, updates, 0xD11A);
        for threads in [1usize, 2, 4] {
            let opts = SolveOptions::new().seed(11).threads(threads);

            // Incremental path: one maintainer across the whole trace.
            let t0 = Instant::now();
            let mut dm = DynamicMinCut::new(case.graph.clone(), "parcut", opts.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let mut dyn_lambdas = Vec::with_capacity(trace.len());
            for op in &trace {
                dyn_lambdas.push(dm.apply(op).expect("valid trace").lambda);
            }
            let dyn_s = t0.elapsed().as_secs_f64();
            let resolves = dm.stats().resolves;

            // Baseline: cold solve on the materialised graph per update.
            let t0 = Instant::now();
            let mut shadow = DeltaGraph::new(case.graph.clone());
            let mut full_lambdas = Vec::with_capacity(trace.len());
            for op in &trace {
                match *op {
                    TraceOp::Insert { u, v, w } => shadow.insert_edge(u, v, w),
                    TraceOp::Delete { u, v } => {
                        shadow.delete_edge(u, v).expect("valid trace");
                    }
                    // Queries (plain or cactus) leave the graph alone.
                    TraceOp::Query | TraceOp::QueryCount | TraceOp::QuerySeparating { .. } => {}
                }
                let g = materialize(&shadow);
                let out = Session::new(&g)
                    .options(opts.clone())
                    .run("parcut")
                    .unwrap_or_else(|e| panic!("{}: baseline: {e}", case.name));
                full_lambdas.push(out.cut.value);
            }
            let full_s = t0.elapsed().as_secs_f64();

            assert_eq!(
                dyn_lambdas, full_lambdas,
                "{}: maintained λ diverged from cold re-solves (p={threads})",
                case.name
            );
            if case.clustered {
                assert!(
                    dyn_s < full_s,
                    "{}: amortized update cost ({:.6}s/{} updates) must beat one \
                     full cold solve per update ({:.6}s) (p={threads})",
                    case.name,
                    dyn_s,
                    trace.len(),
                    full_s
                );
            }
            table.row(vec![
                case.name.clone(),
                threads.to_string(),
                trace.len().to_string(),
                resolves.to_string(),
                format!("{dyn_s:.5}"),
                format!("{full_s:.5}"),
                format!("{:.2}", full_s / dyn_s.max(1e-9)),
                format!("{:.0}", trace.len() as f64 / dyn_s.max(1e-9)),
            ]);
            // Baseline rows: the maintainer (rounds = re-solves) and the
            // per-update cold-solve control.
            let (n, m) = (case.graph.n(), case.graph.m());
            let mut e = BenchEntry::named(&case.name, "dynamic-maintain", threads, n, m);
            e.lambda = *dyn_lambdas.last().expect("non-empty trace");
            e.wall_s = dyn_s;
            e.reps = trace.len();
            e.rounds = resolves;
            report.push(e);
            let mut e = BenchEntry::named(&case.name, "dynamic-cold-solve", threads, n, m);
            e.lambda = *full_lambdas.last().expect("non-empty trace");
            e.wall_s = full_s;
            e.reps = trace.len();
            report.push(e);
        }
    }

    table.emit("dynamic_throughput");
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write baseline: {e}"),
    }
    println!("\nmaintained λ identical to a cold re-solve after every update ✓");
}
