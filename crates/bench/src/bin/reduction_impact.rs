//! Kernelization impact: kernel size and wall time with the reduction
//! pipeline on vs. off, at 1/2/4 threads.
//!
//! For every instance the bin (1) runs the standalone
//! [`ReductionPipeline`] and reports the kernel, (2) times the solvers
//! with reductions on and off and checks the λ values agree exactly.
//! On the clustered generator families (`two_communities`,
//! `ring_of_cliques`, the social-proxy k-core) the kernel must be
//! *strictly* smaller — that assertion makes this bin double as the CI
//! smoke test of the whole kernelization path (`SMC_SCALE=tiny`).
//!
//! Sizes follow `SMC_SCALE` (tiny/small/full) like every other bench bin.

use std::time::Instant;

use mincut_bench::instances::{social_proxy, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::{ReductionPipeline, Session, SolveContext, SolveOptions, SolverStats};
use mincut_graph::generators::known;
use mincut_graph::kcore::k_core_lcc;
use mincut_graph::CsrGraph;

struct Case {
    name: String,
    graph: CsrGraph,
    /// Clustered instances must produce a strictly smaller kernel.
    clustered: bool,
}

fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 4,
        Scale::Full => 12,
    };
    let mut out = Vec::new();
    let (g, _) = known::two_communities(30 * unit, 34 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
        clustered: true,
    });
    let (g, _) = known::ring_of_cliques(6 + unit, 8 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
        clustered: true,
    });
    let ba = social_proxy(256 * unit, 42);
    let (core, _) = k_core_lcc(&ba, 5);
    if core.n() > 32 {
        out.push(Case {
            name: format!("social_k5_{}", core.n()),
            graph: core,
            clustered: true,
        });
    }
    // Control: grids have no community structure to exploit; reductions
    // must stay correct, shrinkage is not required.
    let (g, _) = known::grid_graph(8 * unit, 9 * unit, 2);
    out.push(Case {
        name: format!("grid_{}", g.n()),
        graph: g,
        clustered: false,
    });
    out
}

fn time_solver(g: &CsrGraph, solver: &str, opts: &SolveOptions, reps: usize) -> (u64, f64) {
    let mut value = 0;
    let t0 = Instant::now();
    for _ in 0..reps.max(1) {
        value = Session::new(g)
            .options(opts.clone())
            .run(solver)
            .unwrap_or_else(|e| panic!("{solver}: {e}"))
            .cut
            .value;
    }
    (value, t0.elapsed().as_secs_f64() / reps.max(1) as f64)
}

fn main() {
    let scale = Scale::from_env();
    let reps = scale.repetitions();
    println!("== Kernelization impact (scale {scale:?}) ==\n");

    let mut report = BenchReport::new("reduction", scale);
    let mut kernel_table =
        Table::new(&["instance", "n", "m", "kernel_n", "kernel_m", "lambda_hat"]);
    let mut time_table = Table::new(&[
        "instance", "solver", "threads", "on_s", "off_s", "off/on", "lambda",
    ]);

    for case in cases(scale) {
        let g = &case.graph;
        // Standalone pipeline run: the kernel itself.
        let mut scratch = SolverStats::new("reduce".into(), g.n(), g.m());
        let mut ctx = SolveContext::new(&mut scratch);
        let red = ReductionPipeline::standard()
            .run(g, None, &mut ctx)
            .expect("no budget");
        kernel_table.row(vec![
            case.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            red.kernel.n().to_string(),
            red.kernel.m().to_string(),
            red.lambda_hat.to_string(),
        ]);
        assert!(
            red.kernel.n() <= g.n(),
            "{}: kernel larger than the input?",
            case.name
        );
        if case.clustered {
            assert!(
                red.kernel.n() < g.n(),
                "{}: reductions must strictly shrink clustered instances",
                case.name
            );
        }

        // Wall time with reductions on vs. off; λ must agree exactly.
        for (solver, threads) in [
            ("noi-viecut", 1usize),
            ("parcut", 1),
            ("parcut", 2),
            ("parcut", 4),
        ] {
            let base = SolveOptions::new().seed(7).witness(false).threads(threads);
            let (v_on, t_on) = time_solver(g, solver, &base, reps);
            let (v_off, t_off) = time_solver(g, solver, &base.clone().no_reductions(), reps);
            assert_eq!(
                v_on, v_off,
                "{}: λ must be identical with reductions on and off ({solver}, p={threads})",
                case.name
            );
            time_table.row(vec![
                case.name.clone(),
                solver.into(),
                threads.to_string(),
                format!("{t_on:.5}"),
                format!("{t_off:.5}"),
                format!("{:.2}", t_off / t_on.max(1e-9)),
                v_on.to_string(),
            ]);
            // Baseline rows: the reductions-on run carries the kernel
            // size, its `/no-reduce` control the full-graph solve.
            let mut e = BenchEntry::named(&case.name, solver, threads, g.n(), g.m());
            e.lambda = v_on;
            e.wall_s = t_on;
            e.reps = reps;
            e.kernel_n = red.kernel.n();
            e.kernel_m = red.kernel.m();
            report.push(e);
            let solver_off = format!("{solver}/no-reduce");
            let mut e = BenchEntry::named(&case.name, &solver_off, threads, g.n(), g.m());
            e.lambda = v_off;
            e.wall_s = t_off;
            e.reps = reps;
            report.push(e);
        }
    }

    println!("-- kernel sizes (reductions on) --");
    kernel_table.emit("reduction_impact_kernels");
    println!("\n-- wall time, reductions on vs off --");
    time_table.emit("reduction_impact_times");
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write baseline: {e}"),
    }
    println!("\nall λ values identical with reductions on and off ✓");
}
