//! Hot-path A/B bench: the cache-conscious CAPFOREST scan + contraction
//! rewrite measured against the frozen pre-rewrite baseline.
//!
//! Three comparisons, every one exactness-checked before it is timed:
//!
//! 1. **Scan micro** — repeated sequential CAPFOREST passes: the legacy
//!    lazy-deletion `Vec<Vec>` bucket queues with per-pass allocation
//!    (the old hot path, preserved verbatim in `mincut_ds::pq::legacy`)
//!    vs. the intrusive epoch-stamped queues driven through a pooled
//!    [`ScanScratch`]. λ̂, unions, witness length and the exact
//!    PQ-operation tallies must be identical — the rewrite changes the
//!    memory layout, not the algorithm.
//! 2. **Contraction micro** — hash-path vs. radix-sort-path accumulation
//!    on dense labellings; the output graphs must be equal with equal
//!    fingerprints.
//! 3. **End-to-end** — `noi-viecut` (and ParCut at 1/2/4 workers)
//!    re-implemented as the pre-rewrite loop (legacy queues, fresh scan
//!    state per pass, hash-only contraction) vs. the shipped solvers.
//!    λ must agree everywhere; for the sequential solver the PQ-op
//!    totals must also be identical, pinning old/new path determinism.
//!    At `SMC_SCALE=small`/`full` the new `noi-viecut` must be ≥ 1.3×
//!    faster end-to-end (the PR's acceptance bar); `tiny` (CI) runs the
//!    determinism checks only, where timings are noise.
//!
//! Results are persisted as `results/BENCH_<name>.json`
//! (`hotpath <name>`, default `hotpath`) — see ROADMAP.md "Performance"
//! for the baseline protocol.

use std::time::Instant;

use mincut_bench::instances::{social_proxy, Scale};
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::capforest::{capforest, capforest_with, ScanScratch};
use mincut_core::stoer_wagner::stoer_wagner_phase;
use mincut_core::{Session, SolveOptions};
use mincut_ds::pq::legacy::{LegacyBQueuePq, LegacyBStackPq};
use mincut_ds::{BQueuePq, BStackPq, BinaryHeapPq, CountingPq, MaxPq, PqCounters};
use mincut_graph::generators::known;
use mincut_graph::kcore::k_core_lcc;
use mincut_graph::{ContractionEngine, CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Acceptance bar for the sequential end-to-end comparison at
/// non-tiny scales.
const SPEEDUP_TARGET: f64 = 1.3;

const SEED: u64 = 0xbeef;

struct Case {
    name: String,
    graph: CsrGraph,
}

/// Clustered instances (the families where bound-driven contraction does
/// many rounds, i.e. where the scan/contract loop dominates).
fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 6,
        Scale::Full => 16,
    };
    let mut out = Vec::new();
    let (g, _) = known::two_communities(40 * unit, 44 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::ring_of_cliques(8 + unit, 10 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
    });
    let ba = social_proxy(384 * unit, 42);
    let (core, _) = k_core_lcc(&ba, 5);
    if core.n() > 48 {
        out.push(Case {
            name: format!("social_k5_{}", core.n()),
            graph: core,
        });
    }
    out
}

// ---------------------------------------------------------------------
// The frozen pre-rewrite sequential NOI loop (value-only): legacy lazy-
// deletion queues, fresh scan state every pass, hash-only contraction.
// ---------------------------------------------------------------------

fn legacy_scan(g: &CsrGraph, lambda: u64, start: NodeId, bstack: bool) -> LegacyScanOut {
    const MAX_BUCKET_BOUND: u64 = 1 << 26;
    let out = if lambda > MAX_BUCKET_BOUND {
        capforest::<CountingPq<BinaryHeapPq>>(g, lambda, start, true)
    } else if bstack {
        capforest::<CountingPq<LegacyBStackPq>>(g, lambda, start, true)
    } else {
        capforest::<CountingPq<LegacyBQueuePq>>(g, lambda, start, true)
    };
    LegacyScanOut(out)
}

struct LegacyScanOut(mincut_core::capforest::CapforestOutcome);

struct LegacyRun {
    lambda: u64,
    ops: PqCounters,
}

/// The pre-rewrite VieCut seeding bound (value-only): the frozen
/// hash-tally label propagation, per-level `UnionFind` allocation, and a
/// fresh-state heap NOI on the collapsed remainder — mirroring
/// `viecut_connected` decision-for-decision. Because the flat-tally LP
/// is bit-identical to the hash tally, this returns the same bound the
/// shipped seeding computes.
fn viecut_bound(g: &CsrGraph, seed: u64) -> (u64, PqCounters) {
    use mincut_core::viecut::label_propagation::label_propagation_hash_tally;
    use mincut_core::viecut::padberg_rinaldi_pass;
    use mincut_ds::UnionFind;

    const LP_ITERATIONS: usize = 2;
    const EXACT_THRESHOLD: usize = 128;
    let mut ops = PqCounters::default();
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    let mut lambda = g.min_weighted_degree().expect("n >= 2").1;
    let mut level_seed = seed;
    while current.n() > EXACT_THRESHOLD {
        let n_before = current.n();
        let (labels, clusters) = label_propagation_hash_tally(&current, LP_ITERATIONS, level_seed);
        level_seed = level_seed.wrapping_add(0x9e37_79b9);
        if clusters == 1 {
            break;
        }
        if clusters < current.n() {
            let next = contract_legacy(&mut engine, &current, &labels, clusters);
            engine.recycle(std::mem::replace(&mut current, next));
            if let Some((_, d)) = current.min_weighted_degree() {
                if current.n() >= 2 && d < lambda {
                    lambda = d;
                }
            }
        }
        if current.n() > EXACT_THRESHOLD {
            let mut uf = UnionFind::new(current.n());
            let unions = padberg_rinaldi_pass(&current, lambda, &mut uf);
            if unions > 0 && uf.count() > 1 {
                let (labels, blocks) = uf.dense_labels();
                let next = contract_legacy(&mut engine, &current, &labels, blocks);
                engine.recycle(std::mem::replace(&mut current, next));
                if let Some((_, d)) = current.min_weighted_degree() {
                    if current.n() >= 2 && d < lambda {
                        lambda = d;
                    }
                }
            }
        }
        if current.n() <= 1 {
            break;
        }
        if current.n() * 20 > n_before * 19 {
            break;
        }
    }
    if current.n() >= 2 {
        let exact = legacy_noi_heap_loop(&current, seed, &mut ops);
        if exact < lambda {
            lambda = exact;
        }
    }
    (lambda, ops)
}

/// Pre-rewrite contraction dispatch: hash sequentially below the
/// threshold, sharded-parallel above — never the sort path.
fn contract_legacy(
    engine: &mut ContractionEngine,
    g: &CsrGraph,
    labels: &[NodeId],
    blocks: usize,
) -> CsrGraph {
    if g.n() < ContractionEngine::SEQUENTIAL_FALLBACK_THRESHOLD {
        engine.contract_sequential(g, labels, blocks)
    } else {
        engine.contract_parallel(g, labels, blocks)
    }
}

/// The exact heap-queue NOI loop VieCut runs on its collapsed remainder,
/// with fresh scan state per pass (the pre-rewrite behaviour). The
/// remainder has no VieCut bound: λ̂ starts from the minimum degree.
fn legacy_noi_heap_loop(g: &CsrGraph, seed: u64, ops: &mut PqCounters) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    let mut lambda = g.min_weighted_degree().expect("n >= 2").1;
    while current.n() > 2 {
        let start = rng.gen_range(0..current.n() as NodeId);
        let scan = capforest::<CountingPq<BinaryHeapPq>>(&current, lambda, start, true);
        ops.add(scan.pq_ops);
        if scan.lambda_hat < lambda {
            lambda = scan.lambda_hat;
        }
        let mut uf = scan.uf;
        if scan.unions == 0 {
            let phase = stoer_wagner_phase(&current, start);
            if phase.cut_of_phase < lambda {
                lambda = phase.cut_of_phase;
            }
            uf.union(phase.s, phase.t);
        }
        let (labels, blocks) = uf.dense_labels();
        let next = contract_legacy(&mut engine, &current, &labels, blocks);
        engine.recycle(std::mem::replace(&mut current, next));
        if let Some((_, d)) = current.min_weighted_degree() {
            if current.n() >= 2 && d < lambda {
                lambda = d;
            }
        }
    }
    lambda
}

/// The pre-rewrite NOIλ̂-BQueue(-VieCut) solve, value-only. Mirrors the
/// shipped driver decision-for-decision (same seeding, same rescue, same
/// contraction dispatch minus the sort path) so λ and the PQ-op totals
/// must come out identical.
fn legacy_noi(g: &CsrGraph, seed: u64, use_viecut: bool) -> LegacyRun {
    // The pre-rewrite `Solver::solve` preflight: a full component scan
    // before the algorithm body (reductions off).
    let (_, ncomp) = mincut_graph::components::connected_components(g);
    assert_eq!(ncomp, 1);
    let mut ops = PqCounters::default();
    let (_, ddeg) = g.min_weighted_degree().expect("n >= 2");
    let mut lambda = ddeg;
    if use_viecut {
        let (value, vc_ops) = viecut_bound(g, seed);
        ops.add(vc_ops);
        if value < lambda {
            lambda = value;
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    while current.n() > 2 {
        let start = rng.gen_range(0..current.n() as NodeId);
        let scan = legacy_scan(&current, lambda, start, false);
        ops.add(scan.0.pq_ops);
        if scan.0.lambda_hat < lambda {
            lambda = scan.0.lambda_hat;
        }
        let mut uf = scan.0.uf;
        if scan.0.unions == 0 {
            let phase = stoer_wagner_phase(&current, start);
            if phase.cut_of_phase < lambda {
                lambda = phase.cut_of_phase;
            }
            uf.union(phase.s, phase.t);
        }
        let (labels, blocks) = uf.dense_labels();
        // Pre-rewrite dispatch: hash sequentially below the threshold,
        // sharded-parallel above — never the sort path.
        let next = if current.n() < ContractionEngine::SEQUENTIAL_FALLBACK_THRESHOLD {
            engine.contract_sequential(&current, &labels, blocks)
        } else {
            engine.contract_parallel(&current, &labels, blocks)
        };
        engine.recycle(std::mem::replace(&mut current, next));
        if let Some((_, d)) = current.min_weighted_degree() {
            if current.n() >= 2 && d < lambda {
                lambda = d;
            }
        }
    }
    LegacyRun { lambda, ops }
}

/// The pre-rewrite ParCut loop (value-only): legacy-queue workers via the
/// generic unpooled entry point, sequential heap rescue, hash-only
/// contraction.
fn legacy_parcut(g: &CsrGraph, seed: u64, threads: usize) -> LegacyRun {
    use mincut_core::parallel::capforest::parallel_capforest;
    let (_, ncomp) = mincut_graph::components::connected_components(g);
    assert_eq!(ncomp, 1);
    let mut ops = PqCounters::default();
    let (_, ddeg) = g.min_weighted_degree().expect("n >= 2");
    let mut lambda = ddeg;
    {
        let (value, vc_ops) = viecut_bound(g, seed);
        ops.add(vc_ops);
        if value < lambda {
            lambda = value;
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut engine = ContractionEngine::new();
    let mut current = g.clone();
    while current.n() > 2 {
        let out = parallel_capforest::<CountingPq<LegacyBQueuePq>>(&current, lambda, threads, seed);
        ops.add(out.pq_ops);
        if out.lambda_hat < lambda {
            lambda = out.lambda_hat;
        }
        let cuf = out.cuf;
        let (labels, blocks) = if cuf.count() < current.n() {
            cuf.dense_labels()
        } else {
            let start = rng.gen_range(0..current.n() as NodeId);
            let seq = capforest::<CountingPq<BinaryHeapPq>>(&current, lambda, start, true);
            ops.add(seq.pq_ops);
            if seq.lambda_hat < lambda {
                lambda = seq.lambda_hat;
            }
            let mut uf = seq.uf;
            if seq.unions == 0 {
                let phase = stoer_wagner_phase(&current, start);
                if phase.cut_of_phase < lambda {
                    lambda = phase.cut_of_phase;
                }
                uf.union(phase.s, phase.t);
            }
            uf.dense_labels()
        };
        let next = if current.n() < ContractionEngine::SEQUENTIAL_FALLBACK_THRESHOLD {
            engine.contract_sequential(&current, &labels, blocks)
        } else {
            engine.contract_parallel(&current, &labels, blocks)
        };
        engine.recycle(std::mem::replace(&mut current, next));
        if let Some((_, d)) = current.min_weighted_degree() {
            if current.n() >= 2 && d < lambda {
                lambda = d;
            }
        }
    }
    LegacyRun { lambda, ops }
}

/// Effective rayon-shim worker cap (mirrors the shim's own logic).
fn rayon_workers() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    // Best-of-reps, not mean-of-reps: on a throttled shared box a single
    // descheduling spike inside the batch would otherwise poison it.
    let mut best = f64::INFINITY;
    let t0 = Instant::now();
    let mut out = f();
    let mut prev = t0.elapsed().as_secs_f64();
    best = best.min(prev);
    for _ in 1..reps {
        out = f();
        let now = t0.elapsed().as_secs_f64();
        best = best.min(now - prev);
        prev = now;
    }
    (out, best)
}

/// Interleaved A/B measurement, min-of-batches: alternating short batches
/// decorrelate the two sides from machine drift, and the per-batch
/// minimum discards additive noise spikes (the standard best-of-k
/// protocol). Returns (a_result, a_secs, b_result, b_secs).
fn ab_time<A, B>(
    batches: usize,
    reps: usize,
    mut fa: impl FnMut() -> A,
    mut fb: impl FnMut() -> B,
) -> (A, f64, B, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let (mut out_a, mut out_b) = (None, None);
    for _ in 0..batches.max(1) {
        let (a, ta) = time_reps(reps, &mut fa);
        let (b, tb) = time_reps(reps, &mut fb);
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
        out_a = Some(a);
        out_b = Some(b);
    }
    (out_a.unwrap(), best_a, out_b.unwrap(), best_b)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hotpath".into());
    let scale = Scale::from_env();
    let reps = (scale.repetitions() * 2).max(2);
    let mut report = BenchReport::new(name, scale);
    println!(
        "== Hot-path A/B: intrusive queues + sort contraction vs legacy (scale {scale:?}) ==\n"
    );

    let mut scan_table = Table::new(&[
        "instance", "queue", "legacy_s", "new_s", "speedup", "pq_total",
    ]);
    let mut contract_table = Table::new(&["instance", "blocks", "hash_s", "sort_s", "speedup"]);
    let mut e2e_table = Table::new(&[
        "instance", "solver", "threads", "legacy_s", "new_s", "speedup", "lambda",
    ]);
    let mut noi_speedups: Vec<(String, f64)> = Vec::new();

    for case in cases(scale) {
        let g = &case.graph;
        let delta = g.min_weighted_degree().unwrap().1;

        // ---- 1. scan micro: one λ̂-bounded pass, legacy vs pooled.
        // Only meaningful while the bound fits the bucket range: past
        // MAX_BUCKET_BOUND both shipped paths dispatch to the heap and
        // driving the bucket queues here would compare different
        // tie-breaking orders (and allocate Θ(bound) heads).
        assert!(
            delta <= 1 << 26,
            "{}: instance bound exceeds the bucket range; scan micro \
             would not be an apples-to-apples comparison",
            case.name
        );
        for (qname, bstack) in [("bqueue", false), ("bstack", true)] {
            let (legacy_out, legacy_s) = time_reps(reps, || legacy_scan(g, delta, 0, bstack).0);
            let mut scratch = ScanScratch::new();
            let mut qs: CountingPq<BStackPq> = MaxPq::new();
            let mut qq: CountingPq<BQueuePq> = MaxPq::new();
            // Warm-up pass, then timed passes on warm state.
            let _ = if bstack {
                capforest_with(g, delta, 0, true, &mut qs, &mut scratch)
            } else {
                capforest_with(g, delta, 0, true, &mut qq, &mut scratch)
            };
            let _ = if bstack { qs.take_ops() } else { qq.take_ops() };
            let (info, new_s) = time_reps(reps, || {
                if bstack {
                    capforest_with(g, delta, 0, true, &mut qs, &mut scratch)
                } else {
                    capforest_with(g, delta, 0, true, &mut qq, &mut scratch)
                }
            });
            let new_ops_total = if bstack { qs.take_ops() } else { qq.take_ops() };
            let per_pass = PqCounters {
                pushes: new_ops_total.pushes / reps as u64,
                raises: new_ops_total.raises / reps as u64,
                pops: new_ops_total.pops / reps as u64,
            };
            // Old and new paths must be operation-for-operation identical.
            assert_eq!(info.lambda_hat, legacy_out.lambda_hat, "{}", case.name);
            assert_eq!(info.unions, legacy_out.unions, "{}", case.name);
            assert_eq!(info.best_prefix_len, legacy_out.best_prefix_len);
            assert_eq!(scratch.order(), &legacy_out.scan_order[..]);
            assert_eq!(
                per_pass, legacy_out.pq_ops,
                "{}: PQ-op divergence",
                case.name
            );
            scan_table.row(vec![
                case.name.clone(),
                qname.into(),
                format!("{legacy_s:.6}"),
                format!("{new_s:.6}"),
                format!("{:.2}", legacy_s / new_s.max(1e-12)),
                per_pass.total().to_string(),
            ]);
            let mut entry =
                BenchEntry::named(&case.name, &format!("scan/{qname}"), 1, g.n(), g.m());
            entry.lambda = info.lambda_hat;
            entry.wall_s = new_s;
            entry.reps = reps;
            entry.pq_pushes = per_pass.pushes;
            entry.pq_raises = per_pass.raises;
            entry.pq_pops = per_pass.pops;
            report.push(entry);
        }

        // ---- 2. contraction micro: hash vs radix-sort accumulation,
        // both regimes of the density heuristic (coarse labellings keep
        // the table cache-resident → hash territory; fine labellings
        // blow it past cache → sort territory). ----
        let mut engine = ContractionEngine::new();
        for blocks in [(g.n() / 24).max(2), (g.n() / 2).max(2)] {
            let labels: Vec<NodeId> = (0..g.n() as NodeId).map(|v| v % blocks as NodeId).collect();
            let (hash_g, hash_s) =
                time_reps(reps, || engine.contract_sequential(g, &labels, blocks));
            let (sort_g, sort_s) = time_reps(reps, || engine.contract_sorted(g, &labels, blocks));
            assert_eq!(hash_g, sort_g, "{}: sort path diverged", case.name);
            assert_eq!(hash_g.fingerprint(), sort_g.fingerprint());
            contract_table.row(vec![
                case.name.clone(),
                blocks.to_string(),
                format!("{hash_s:.6}"),
                format!("{sort_s:.6}"),
                format!("{:.2}", hash_s / sort_s.max(1e-12)),
            ]);
            for (solver, wall) in [("contract/seq-hash", hash_s), ("contract/seq-sort", sort_s)] {
                let mut entry =
                    BenchEntry::named(&format!("{}/b{blocks}", case.name), solver, 1, g.n(), g.m());
                entry.wall_s = wall;
                entry.reps = reps;
                report.push(entry);
            }
        }

        // ---- 3. end-to-end: noi-viecut and parcut, legacy vs new. ----
        let opts = SolveOptions::new()
            .seed(SEED)
            .pq(mincut_ds::PqKind::BQueue)
            .witness(false)
            .no_reductions();
        for (solver, threads_list) in [("noi-viecut", vec![1usize]), ("parcut", vec![1, 2, 4])] {
            for &threads in &threads_list {
                let run_opts = opts.clone().threads(threads);
                let (legacy, legacy_s, outcome, new_s) = ab_time(
                    12,
                    reps,
                    || {
                        if solver == "noi-viecut" {
                            legacy_noi(g, SEED, true)
                        } else {
                            legacy_parcut(g, SEED, threads)
                        }
                    },
                    || {
                        Session::new(g)
                            .options(run_opts.clone())
                            .run(solver)
                            .unwrap_or_else(|e| panic!("{solver}: {e}"))
                    },
                );
                assert_eq!(
                    outcome.cut.value, legacy.lambda,
                    "{}: λ divergence between old and new paths ({solver})",
                    case.name
                );
                if solver == "noi-viecut" {
                    // Sequential runs are deterministic (parallel worker
                    // interleavings are not), except that the racy label
                    // propagation inside VieCut needs a deterministic
                    // rayon schedule: one worker, or a single LP chunk.
                    if rayon_workers() == 1 || g.n() <= 1024 {
                        assert_eq!(
                            outcome.stats.pq_ops, legacy.ops,
                            "{}: PQ-op determinism broke ({solver})",
                            case.name
                        );
                    }
                    noi_speedups.push((case.name.clone(), legacy_s / new_s.max(1e-12)));
                }
                e2e_table.row(vec![
                    case.name.clone(),
                    solver.into(),
                    threads.to_string(),
                    format!("{legacy_s:.5}"),
                    format!("{new_s:.5}"),
                    format!("{:.2}", legacy_s / new_s.max(1e-12)),
                    outcome.cut.value.to_string(),
                ]);
                let mut entry = BenchEntry::named(&case.name, solver, threads, g.n(), g.m());
                entry.absorb_outcome(&outcome);
                entry.wall_s = new_s;
                entry.reps = reps;
                report.push(entry);
                let mut entry = BenchEntry::named(
                    &case.name,
                    &format!("{solver}/legacy"),
                    threads,
                    g.n(),
                    g.m(),
                );
                entry.lambda = legacy.lambda;
                entry.wall_s = legacy_s;
                entry.reps = reps;
                entry.pq_pushes = legacy.ops.pushes;
                entry.pq_raises = legacy.ops.raises;
                entry.pq_pops = legacy.ops.pops;
                report.push(entry);
            }
        }
    }

    println!("-- CAPFOREST scan: one bounded pass (identical λ̂/unions/ops asserted) --");
    scan_table.emit("hotpath_scan");
    println!("\n-- contraction: hash vs radix-sort accumulation (equal graphs asserted) --");
    contract_table.emit("hotpath_contract");
    println!("\n-- end-to-end: frozen pre-rewrite loop vs shipped solvers --");
    e2e_table.emit("hotpath_e2e");

    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => println!("\ncould not write BENCH json: {e}"),
    }

    // Acceptance bar: geometric mean of the sequential end-to-end
    // speedups across the clustered instance set. Per-instance timings
    // on a busy machine swing ±15%; the aggregate over the set is the
    // claim the PR makes (individual rows are in the tables above, which
    // are emitted first so a failed bar still leaves the data on disk).
    if scale != Scale::Tiny {
        let geomean = (noi_speedups.iter().map(|(_, s)| s.ln()).sum::<f64>()
            / noi_speedups.len().max(1) as f64)
            .exp();
        println!("\nnoi-viecut end-to-end speedup, geometric mean: {geomean:.2}×");
        assert!(
            geomean >= SPEEDUP_TARGET,
            "noi-viecut geomean speedup {geomean:.2} below the {SPEEDUP_TARGET}× acceptance bar \
             ({noi_speedups:?})"
        );
    }
    println!("old/new λ identical, sequential PQ-op streams identical ✓");
}
