//! `trace-check` — structural validator for the Chrome trace-event JSON
//! files `mincut --trace-out` emits.
//!
//! Checks, per file: the top level is `{"traceEvents": [...]}`; every
//! event carries a string `name` and `ph`; every `X` (complete) event
//! carries numeric `ts`, `dur`, `tid`; and on each track the complete
//! events form a laminar family — two spans on one track either nest or
//! are disjoint, never partially overlap (RAII span guards guarantee
//! this, so a violation means exporter corruption). CI runs this on the
//! trace artifact of a tiny solve.
//!
//! Usage: `trace-check <trace.json>...` — exit 0 if every file is
//! well-formed, 1 otherwise.

use std::process::exit;

use mincut_bench::report::json::{self, Value};

fn check_file(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = json::parse(&text)?;
    let obj = root.as_obj().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_arr())
        .ok_or("missing traceEvents array")?;

    // (tid, start, end) of every complete event, for the laminar check.
    let mut spans: Vec<(u64, f64, f64)> = Vec::new();
    let mut names = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let fields = ev
            .as_obj()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no string name"))?;
        let ph = get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} ({name}) has no string ph"))?;
        names += 1;
        if ph == "X" {
            let num = |key: &str| -> Result<f64, String> {
                match get(key) {
                    Some(Value::Num(x)) => Ok(*x),
                    _ => Err(format!("event {i} ({name}) has no numeric {key}")),
                }
            };
            let (ts, dur, tid) = (num("ts")?, num("dur")?, num("tid")?);
            spans.push((tid as u64, ts, ts + dur));
        }
    }

    // Laminar check per track: with spans sorted by (start asc, end
    // desc) a parent precedes its children, so a stack of open end
    // times catches any partial overlap.
    spans.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.total_cmp(&b.1))
            .then(b.2.total_cmp(&a.2))
    });
    let mut open: Vec<f64> = Vec::new();
    let mut track = u64::MAX;
    for &(tid, start, end) in &spans {
        if tid != track {
            open.clear();
            track = tid;
        }
        while let Some(&top) = open.last() {
            if top <= start {
                open.pop();
            } else if top < end {
                return Err(format!(
                    "track {tid}: span [{start}, {end}] partially overlaps one ending at {top}"
                ));
            } else {
                break;
            }
        }
        open.push(end);
    }
    Ok((names, spans.len()))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <trace.json>...");
        exit(2)
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok((events, complete)) => {
                println!("{path}: ok ({events} event(s), {complete} span(s), nesting laminar)");
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    exit(if failed { 1 } else { 0 })
}
