//! Cactus subsystem cost model: from-scratch construction vs. dynamic
//! maintenance.
//!
//! Two measurements per instance family, sizes following `SMC_SCALE`:
//!
//! * **build** — wall time of `CactusBuilder::build` (λ solve +
//!   all-min-cuts enumeration + structure assembly), with the phase
//!   split reported from `CactusStats` and the min-cut count checked
//!   against the structural `count_min_cuts()`.
//! * **maintain vs rebuild** — a deterministic mixed insert/delete trace
//!   replayed through (a) a cactus-enabled `DynamicMinCut` and (b) a
//!   baseline that rebuilds the cactus from scratch on the materialised
//!   graph after every update. The two must agree on λ *and* on the
//!   min-cut count after every operation — that differential check makes
//!   this bin the CI smoke test of the cactus subsystem
//!   (`SMC_SCALE=tiny`), mirroring `dynamic_throughput`.
//!
//! Writes `results/BENCH_cactus.json` (build and maintenance rows share
//! the report; `solver` distinguishes them).

use std::time::Instant;

use mincut_bench::instances::Scale;
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::cactus::CactusBuilder;
use mincut_core::dynamic::{materialize, DynamicMinCut, TraceOp};
use mincut_core::SolveOptions;
use mincut_graph::generators::known;
use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Case {
    name: String,
    graph: CsrGraph,
}

fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 2,
        Scale::Full => 4,
    };
    let mut out = Vec::new();
    // Cycles are the enumeration stress case: n(n−1)/2 minimum cuts.
    let (g, _) = known::cycle_graph(16 * unit, 1);
    out.push(Case {
        name: format!("cycle_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::two_communities(10 * unit, 12 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::ring_of_cliques(4 + unit, 4 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
    });
    out
}

/// Deterministic mixed trace over the full vertex range; weights stay
/// small so updates keep crossing the maintained structure.
fn make_trace(g: &CsrGraph, updates: usize, seed: u64) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shadow = DeltaGraph::new(g.clone());
    let n = g.n() as NodeId;
    let mut ops = Vec::with_capacity(updates);
    while ops.len() < updates {
        if shadow.m() == 0 || rng.gen_bool(0.65) {
            let (mut u, mut v) = (0, 0);
            while u == v {
                u = rng.gen_range(0..n);
                v = rng.gen_range(0..n);
            }
            let w: EdgeWeight = rng.gen_range(1..4);
            shadow.insert_edge(u, v, w);
            ops.push(TraceOp::Insert { u, v, w });
        } else {
            let live: Vec<_> = shadow.edges().collect();
            let (u, v, _) = live[rng.gen_range(0..live.len())];
            shadow.delete_edge(u, v).expect("live edge");
            ops.push(TraceOp::Delete { u, v });
        }
    }
    ops
}

fn main() {
    let scale = Scale::from_env();
    let updates = match scale {
        Scale::Tiny => 24usize,
        Scale::Small => 96,
        Scale::Full => 384,
    };
    println!("== Cactus build + maintenance cost (scale {scale:?}, {updates} updates) ==\n");

    let mut report = BenchReport::new("cactus", scale);
    let mut table = Table::new(&[
        "instance",
        "lambda",
        "cuts",
        "build_s",
        "maint_s",
        "rebuild_s",
        "rebuild/maint",
    ]);

    for case in cases(scale) {
        let opts = SolveOptions::new().seed(5).threads(2);

        // From-scratch construction, phase split from CactusStats.
        let t0 = Instant::now();
        let cactus = CactusBuilder::new()
            .options(opts.clone())
            .build(&case.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let build_s = t0.elapsed().as_secs_f64();
        // All instance families are connected, so the structural count
        // must equal the number of cuts the builder enumerated.
        assert_eq!(
            cactus.count_min_cuts(),
            u128::from(cactus.stats().cuts),
            "{}: structural count must match the enumeration",
            case.name
        );
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-build",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = cactus.lambda();
        e.wall_s = build_s;
        // Reuse the PQ-op columns for the phase split: pushes = solve,
        // raises = enumerate, pops = assemble (all in microseconds).
        e.pq_pushes = (cactus.stats().solve_seconds * 1e6) as u64;
        e.pq_raises = (cactus.stats().enumerate_seconds * 1e6) as u64;
        e.pq_pops = (cactus.stats().build_seconds * 1e6) as u64;
        report.push(e);

        // Maintained path: one cactus-enabled maintainer over the trace.
        let trace = make_trace(&case.graph, updates, 0xCAC);
        let t0 = Instant::now();
        let mut dm = DynamicMinCut::new(case.graph.clone(), "parcut", opts.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        dm.enable_cactus()
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let mut maintained = Vec::with_capacity(trace.len());
        for op in &trace {
            let lambda = dm.apply(op).expect("valid trace").lambda;
            let cactus = dm.cactus().expect("maintenance enabled");
            maintained.push((lambda, cactus.count_min_cuts()));
        }
        let maint_s = t0.elapsed().as_secs_f64();
        let rebuilds = dm.stats().cactus_rebuilds;

        // Baseline: from-scratch cactus on the materialised graph per op.
        let t0 = Instant::now();
        let mut shadow = DeltaGraph::new(case.graph.clone());
        let mut rebuilt = Vec::with_capacity(trace.len());
        for op in &trace {
            match *op {
                TraceOp::Insert { u, v, w } => shadow.insert_edge(u, v, w),
                TraceOp::Delete { u, v } => {
                    shadow.delete_edge(u, v).expect("valid trace");
                }
                TraceOp::Query | TraceOp::QueryCount | TraceOp::QuerySeparating { .. } => {}
            }
            let g = materialize(&shadow);
            let cactus = CactusBuilder::new()
                .options(opts.clone())
                .build(&g)
                .unwrap_or_else(|e| panic!("{}: baseline: {e}", case.name));
            rebuilt.push((cactus.lambda(), cactus.count_min_cuts()));
        }
        let rebuild_s = t0.elapsed().as_secs_f64();

        assert_eq!(
            maintained, rebuilt,
            "{}: maintained (λ, #cuts) diverged from from-scratch rebuilds",
            case.name
        );

        let mut e = BenchEntry::named(
            &case.name,
            "cactus-maintain",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = maintained.last().expect("non-empty trace").0;
        e.wall_s = maint_s;
        e.reps = trace.len();
        e.rounds = rebuilds;
        report.push(e);
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-rebuild",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = rebuilt.last().expect("non-empty trace").0;
        e.wall_s = rebuild_s;
        e.reps = trace.len();
        report.push(e);

        table.row(vec![
            case.name.clone(),
            cactus.lambda().to_string(),
            cactus.count_min_cuts().to_string(),
            format!("{build_s:.5}"),
            format!("{maint_s:.5}"),
            format!("{rebuild_s:.5}"),
            format!("{:.2}", rebuild_s / maint_s.max(1e-9)),
        ]);
    }

    table.emit("cactus");
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write baseline: {e}"),
    }
    println!("maintained (λ, #cuts) identical to a from-scratch rebuild after every update ✓");
}
