//! Cactus subsystem cost model: from-scratch construction vs. dynamic
//! maintenance.
//!
//! Two measurements per instance family, sizes following `SMC_SCALE`:
//!
//! * **build** — wall time of `CactusBuilder::build` (λ solve +
//!   all-min-cuts enumeration + structure assembly), with the phase
//!   split reported from `CactusStats` and the min-cut count checked
//!   against the structural `count_min_cuts()`.
//! * **maintain vs rebuild** — a deterministic mixed insert/delete trace
//!   replayed through (a) a cactus-enabled `DynamicMinCut` with
//!   incremental repair on (the default), (b) the same maintainer with
//!   repair disabled (`set_cactus_repair(false)` — every
//!   structure-crossing update rebuilds), and (c) a baseline that
//!   rebuilds the cactus from scratch on the materialised graph after
//!   every update. All three must agree on λ *and* on the min-cut count
//!   after every operation — that differential check makes this bin the
//!   CI smoke test of the cactus subsystem (`SMC_SCALE=tiny`),
//!   mirroring `dynamic_throughput`.
//!
//! Writes `results/BENCH_cactus.json` (build, maintenance, and repair
//! rows share the report; `solver` distinguishes them — the
//! `cactus-repair` row reuses the PQ columns for the repair counters:
//! pushes = repairs, raises = fallbacks, rounds = rebuilds). An
//! optional argv[1] overrides the report name (e.g. `cactus_bench pr7`
//! → `results/BENCH_pr7.json`).

use std::time::Instant;

use mincut_bench::instances::Scale;
use mincut_bench::report::{BenchEntry, BenchReport};
use mincut_bench::table::Table;
use mincut_core::cactus::CactusBuilder;
use mincut_core::dynamic::{materialize, DynamicMinCut, TraceOp};
use mincut_core::SolveOptions;
use mincut_graph::generators::known;
use mincut_graph::{CsrGraph, DeltaGraph, EdgeWeight, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Case {
    name: String,
    graph: CsrGraph,
}

fn cases(scale: Scale) -> Vec<Case> {
    let unit = match scale {
        Scale::Tiny => 1usize,
        Scale::Small => 2,
        Scale::Full => 4,
    };
    let mut out = Vec::new();
    // Cycles are the enumeration stress case: n(n−1)/2 minimum cuts.
    let (g, _) = known::cycle_graph(16 * unit, 1);
    out.push(Case {
        name: format!("cycle_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::two_communities(10 * unit, 12 * unit, 2, 3, 1);
    out.push(Case {
        name: format!("two_communities_{}", g.n()),
        graph: g,
    });
    let (g, _) = known::ring_of_cliques(4 + unit, 4 * unit, 2, 1);
    out.push(Case {
        name: format!("ring_of_cliques_{}", g.n()),
        graph: g,
    });
    out
}

/// Deterministic mixed trace over the full vertex range; weights stay
/// small so updates keep crossing the maintained structure.
fn make_trace(g: &CsrGraph, updates: usize, seed: u64) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shadow = DeltaGraph::new(g.clone());
    let n = g.n() as NodeId;
    let mut ops = Vec::with_capacity(updates);
    while ops.len() < updates {
        if shadow.m() == 0 || rng.gen_bool(0.65) {
            let (mut u, mut v) = (0, 0);
            while u == v {
                u = rng.gen_range(0..n);
                v = rng.gen_range(0..n);
            }
            let w: EdgeWeight = rng.gen_range(1..4);
            shadow.insert_edge(u, v, w);
            ops.push(TraceOp::Insert { u, v, w });
        } else {
            let live: Vec<_> = shadow.edges().collect();
            let (u, v, _) = live[rng.gen_range(0..live.len())];
            shadow.delete_edge(u, v).expect("live edge");
            ops.push(TraceOp::Delete { u, v });
        }
    }
    ops
}

fn main() {
    let scale = Scale::from_env();
    let updates = match scale {
        Scale::Tiny => 24usize,
        Scale::Small => 96,
        Scale::Full => 384,
    };
    let report_name = std::env::args().nth(1).unwrap_or_else(|| "cactus".into());
    println!("== Cactus build + maintenance cost (scale {scale:?}, {updates} updates) ==\n");

    let mut report = BenchReport::new(&report_name, scale);
    let mut table = Table::new(&[
        "instance",
        "lambda",
        "cuts",
        "build_s",
        "maint_s",
        "noRepair_s",
        "rebuild_s",
        "repair%",
        "noRepair/maint",
    ]);
    let (mut total_repairs, mut total_rebuilds) = (0u64, 0u64);

    for case in cases(scale) {
        let opts = SolveOptions::new().seed(5).threads(2);

        // From-scratch construction, phase split from CactusStats.
        let t0 = Instant::now();
        let cactus = CactusBuilder::new()
            .options(opts.clone())
            .build(&case.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let build_s = t0.elapsed().as_secs_f64();
        // All instance families are connected, so the structural count
        // must equal the number of cuts the builder enumerated.
        assert_eq!(
            cactus.count_min_cuts(),
            u128::from(cactus.stats().cuts),
            "{}: structural count must match the enumeration",
            case.name
        );
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-build",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = cactus.lambda();
        e.wall_s = build_s;
        // Reuse the PQ-op columns for the phase split: pushes = solve,
        // raises = enumerate, pops = assemble (all in microseconds).
        e.pq_pushes = (cactus.stats().solve_seconds * 1e6) as u64;
        e.pq_raises = (cactus.stats().enumerate_seconds * 1e6) as u64;
        e.pq_pops = (cactus.stats().build_seconds * 1e6) as u64;
        report.push(e);

        // Maintained path A/B: repair-on (the default policy) vs
        // rebuild-only (`set_cactus_repair(false)`), same trace.
        let trace = make_trace(&case.graph, updates, 0xCAC);
        let run_maintained = |repair: bool| {
            let t0 = Instant::now();
            let mut dm = DynamicMinCut::new(case.graph.clone(), "parcut", opts.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            dm.enable_cactus()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            dm.set_cactus_repair(repair);
            let mut seq = Vec::with_capacity(trace.len());
            for op in &trace {
                let lambda = dm.apply(op).expect("valid trace").lambda;
                let cactus = dm.cactus().expect("maintenance enabled");
                seq.push((lambda, cactus.count_min_cuts()));
            }
            let stats = dm.stats().clone();
            (t0.elapsed().as_secs_f64(), seq, stats)
        };
        let (maint_s, maintained, stats) = run_maintained(true);
        let (no_repair_s, no_repair, off_stats) = run_maintained(false);
        assert_eq!(
            maintained, no_repair,
            "{}: repair-on and rebuild-only modes diverged on (λ, #cuts)",
            case.name
        );
        assert_eq!(off_stats.cactus_repairs, 0, "{}", case.name);
        let rebuilds = stats.cactus_rebuilds;
        total_repairs += stats.cactus_repairs;
        total_rebuilds += rebuilds;

        // Baseline: from-scratch cactus on the materialised graph per op.
        let t0 = Instant::now();
        let mut shadow = DeltaGraph::new(case.graph.clone());
        let mut rebuilt = Vec::with_capacity(trace.len());
        for op in &trace {
            match *op {
                TraceOp::Insert { u, v, w } => shadow.insert_edge(u, v, w),
                TraceOp::Delete { u, v } => {
                    shadow.delete_edge(u, v).expect("valid trace");
                }
                TraceOp::Query | TraceOp::QueryCount | TraceOp::QuerySeparating { .. } => {}
            }
            let g = materialize(&shadow);
            let cactus = CactusBuilder::new()
                .options(opts.clone())
                .build(&g)
                .unwrap_or_else(|e| panic!("{}: baseline: {e}", case.name));
            rebuilt.push((cactus.lambda(), cactus.count_min_cuts()));
        }
        let rebuild_s = t0.elapsed().as_secs_f64();

        assert_eq!(
            maintained, rebuilt,
            "{}: maintained (λ, #cuts) diverged from from-scratch rebuilds",
            case.name
        );

        let mut e = BenchEntry::named(
            &case.name,
            "cactus-maintain",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = maintained.last().expect("non-empty trace").0;
        e.wall_s = maint_s;
        e.reps = trace.len();
        e.rounds = rebuilds;
        report.push(e);
        // Repair row: the same run's repair counters (pushes = repairs,
        // raises = fallbacks, rounds = rebuilds).
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-repair",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = maintained.last().expect("non-empty trace").0;
        e.wall_s = maint_s;
        e.reps = trace.len();
        e.pq_pushes = stats.cactus_repairs;
        e.pq_raises = stats.repair_fallbacks;
        e.rounds = rebuilds;
        report.push(e);
        // Rebuild-only maintainer (the A/B control).
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-rebuild-only",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = no_repair.last().expect("non-empty trace").0;
        e.wall_s = no_repair_s;
        e.reps = trace.len();
        e.rounds = off_stats.cactus_rebuilds;
        report.push(e);
        let mut e = BenchEntry::named(
            &case.name,
            "cactus-rebuild",
            opts.threads,
            case.graph.n(),
            case.graph.m(),
        );
        e.lambda = rebuilt.last().expect("non-empty trace").0;
        e.wall_s = rebuild_s;
        e.reps = trace.len();
        report.push(e);

        let repair_share =
            stats.cactus_repairs as f64 / (stats.cactus_repairs + rebuilds).max(1) as f64;
        table.row(vec![
            case.name.clone(),
            cactus.lambda().to_string(),
            cactus.count_min_cuts().to_string(),
            format!("{build_s:.5}"),
            format!("{maint_s:.5}"),
            format!("{no_repair_s:.5}"),
            format!("{rebuild_s:.5}"),
            format!("{:.0}%", repair_share * 100.0),
            format!("{:.2}", no_repair_s / maint_s.max(1e-9)),
        ]);

        // On the clustered families at small+ scale, repair must be the
        // winning policy by a clear margin — this is the PR's headline
        // acceptance bar (tiny traces are too short to amortise).
        if scale != Scale::Tiny && case.name.starts_with("two_communities") {
            assert!(
                no_repair_s / maint_s.max(1e-9) >= 1.5,
                "{}: repair-on must beat rebuild-only by ≥1.5× ({:.3}s vs {:.3}s)",
                case.name,
                maint_s,
                no_repair_s
            );
        }
    }

    // Across the whole workload, the majority of structure-crossing
    // updates must resolve via local repair, not rebuild.
    let ratio = total_repairs as f64 / (total_repairs + total_rebuilds).max(1) as f64;
    println!(
        "\nrepair ratio: {total_repairs} repairs / {total_rebuilds} rebuilds = {:.0}%",
        ratio * 100.0
    );
    assert!(
        ratio >= 0.5,
        "repair ratio {ratio:.2} below the 50% acceptance bar"
    );

    table.emit("cactus");
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write baseline: {e}"),
    }
    println!("maintained (λ, #cuts) identical to a from-scratch rebuild after every update ✓");
}
